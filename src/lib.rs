//! # TiFL — a Tier-based Federated Learning System
//!
//! A from-scratch Rust reproduction of *TiFL: A Tier-based Federated
//! Learning System* (Chai et al., HPDC 2020). This facade crate
//! re-exports the whole workspace so downstream users and the examples
//! depend on a single crate:
//!
//! * [`tensor`] — dense `f32` tensor primitives and deterministic RNG;
//! * [`nn`] — layers, losses, optimisers, sequential models;
//! * [`data`] — synthetic federated datasets and non-IID partitioners;
//! * [`sim`] — the discrete-event testbed simulator (virtual clock,
//!   CPU-share resource model, latency model);
//! * [`comm`] — the communication subsystem: per-client link models,
//!   transfer-cost accounting and update codecs (int8 quantization,
//!   top-k sparsification);
//! * [`fl`] — the FL substrate: clients, FedAvg aggregator, round engine;
//! * [`obs`] — observability: virtual-time tracing (ring-buffer
//!   recorder, Chrome trace-event export), a fixed-bucket metrics
//!   registry whose snapshots ride in run artifacts, and a host-time
//!   phase profiler behind a pluggable [`prelude::HostClock`];
//! * [`core`] — the paper's contribution: profiler, tiering, static and
//!   adaptive tier schedulers, training-time estimator, privacy
//!   accounting, and the composable `RunSpec`/`Runner` execution API;
//! * [`sweep`] — multi-run orchestration: declarative sweep manifests,
//!   a worker-pool scheduler with a shared profile cache, a resumable
//!   keyed artifact store, store-backed pivot reporting (`tifl
//!   report`), store auditing (`tifl audit`), and verified shard-store
//!   merging (`tifl merge` / `tifl sweep --shard`);
//! * [`leaf`] — the LEAF-like FEMNIST benchmark harness.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete run; the short version:
//!
//! ```no_run
//! use tifl::prelude::*;
//!
//! let exp = ExperimentConfig::cifar10_resource_het(42);
//! let report = exp.runner().policy(&Policy::uniform(5)).run();
//! println!("final accuracy {:.3}", report.final_accuracy());
//! ```
//!
//! Runs compose: every cell of the paper's §5 evaluation matrix
//! (selection × aggregation × local objective × re-profiling cadence)
//! is one fluent chain — or one serializable [`prelude::RunSpec`]:
//!
//! ```no_run
//! use tifl::prelude::*;
//!
//! let exp = ExperimentConfig::cifar10_resource_het(42);
//! // FedProx under adaptive tiering with periodic re-profiling — a
//! // combination the legacy `run_*` methods could not express.
//! let report = exp
//!     .runner()
//!     .adaptive(None)
//!     .fedprox(0.01)
//!     .reprofile_every(50)
//!     .run();
//! println!("{}: {:.3}", report.policy, report.final_accuracy());
//! ```
//!
//! ## Static analysis
//!
//! The workspace ships its own determinism linter, [`lint`]
//! (`tifl lint --deny`): seven token-level rules guarding the
//! bit-for-bit invariants (no `HashMap` iteration in critical crates,
//! no wall-clock or OS entropy in simulated code, no unannotated
//! panics/`unsafe`/float reductions, no bare prints in library code).
//! See `crates/lint/RULES.md`.

#![forbid(unsafe_code)]

pub use tifl_comm as comm;
pub use tifl_core as core;
pub use tifl_data as data;
pub use tifl_fl as fl;
pub use tifl_leaf as leaf;
pub use tifl_lint as lint;
pub use tifl_nn as nn;
pub use tifl_obs as obs;
pub use tifl_sim as sim;
pub use tifl_sweep as sweep;
pub use tifl_tensor as tensor;

/// Convenience re-exports for examples and quick experiments.
pub mod prelude {
    pub use tifl_comm::{CodecSpec, CommSpec, EncodedUpdate, HierarchySpec, LinkModel};
    pub use tifl_core::baselines::DeadlineSelector;
    pub use tifl_core::exec::{ClientExecutor, EventEngine, ExecBackend, OrderedMerge};
    pub use tifl_core::experiment::{DataScenario, ExperimentConfig};
    pub use tifl_core::policy::Policy;
    pub use tifl_core::profiler::{Profiler, ProfilerConfig};
    pub use tifl_core::runner::{
        Experiment, LocalTraining, ObservedRun, RunRequest, RunSpec, Runner, SelectionStrategy,
    };
    pub use tifl_core::scheduler::{AdaptiveConfig, AdaptiveTierSelector, StaticTierSelector};
    pub use tifl_core::tiering::{TierAssignment, TieringConfig};
    pub use tifl_data::synth::{Generator, SynthFamily, SynthSpec};
    pub use tifl_data::{Dataset, FederatedDataset};
    pub use tifl_fl::aggregator::{ClientUpdate, StreamingFold};
    pub use tifl_fl::checkpoint::{Checkpoint, SelectorState};
    pub use tifl_fl::client::{ClientConfig, DpNoiseConfig};
    pub use tifl_fl::hierarchy::AggregationTree;
    pub use tifl_fl::report::{ReportSummary, RoundReport, TrainingReport};
    pub use tifl_fl::selector::{ClientSelector, RandomSelector};
    pub use tifl_fl::session::{
        AggregationMode, RoundPlan, Session, SessionConfig, SessionOverrides,
    };
    pub use tifl_fl::timeline::{RoundTimeline, TimelineEvent};
    pub use tifl_leaf::{LeafDataConfig, LeafExperiment};
    pub use tifl_nn::models::ModelSpec;
    pub use tifl_obs::{
        chrome_trace, host_chrome_trace, DiffReport, DiffSide, Digest128, DigestChain, Divergence,
        FieldDelta, FrozenClock, HostClock, HostProfiler, HostSpan, MetricsRegistry,
        MetricsSnapshot, Phase, PhaseTotals, RealClock, RingRecorder, RunObserver, TraceEvent,
        TraceRecord, TraceSink,
    };
    pub use tifl_sim::cluster::{Cluster, ClusterConfig};
    pub use tifl_sim::drift::DriftModel;
    pub use tifl_sim::latency::{LatencyModel, LatencyModelConfig};
    pub use tifl_sim::resource::LinkQuality;
    pub use tifl_sweep::{
        audit_store, merge_stores, shard_runs, AuditFinding, AuditReport, KeyedRun, MergeConflict,
        MergeReport, ProgressEvent, ProgressLog, RunArtifact, RunKey, RunOutcome, RunStore,
        StoreError, StoreErrorKind, SweepAxes, SweepBuilder, SweepManifest, SweepReport,
        SweepScheduler, SweepSummary, WorkerLane,
    };
}
