//! `tifl` — command-line front end for the TiFL reproduction.
//!
//! ```sh
//! tifl init experiment.json            # write a template config
//! tifl init --spec run.json            # write a template run request
//! tifl profile experiment.json         # profile + print tiers
//! tifl estimate experiment.json        # Eq. 6 time estimates per policy
//! tifl run experiment.json uniform     # train under a policy
//! tifl run experiment.json adaptive    # train under Algorithm 2
//! tifl run --spec run.json             # train a declarative RunSpec
//! tifl run --spec run.json --threads 4 # … on 4 worker threads
//! ```
//!
//! Configs are JSON-serialised `ExperimentConfig`s; run requests are
//! JSON-serialised `RunRequest`s (an experiment + scalar overrides + a
//! `RunSpec`), so the full §5 evaluation matrix — selection strategy ×
//! aggregation mode × local objective × re-profiling cadence — is
//! scriptable without recompiling: `cargo run --release --bin tifl --
//! init --spec my.json`, edit, `run --spec my.json`.

use std::process::ExitCode;
use tifl::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tifl init <config.json>\n  tifl init --spec <run.json>\n  \
         tifl profile <config.json>\n  \
         tifl estimate <config.json>\n  tifl run <config.json> \
         <vanilla|slow|uniform|random|fast|fast1|fast2|fast3|adaptive>\n  \
         tifl run --spec <run.json> [--threads N]"
    );
    ExitCode::FAILURE
}

fn policy_by_name(name: &str, m: usize) -> Option<Policy> {
    Some(match name {
        "vanilla" => Policy::vanilla(),
        "slow" => Policy::slow(m),
        "uniform" => Policy::uniform(m),
        "random" => Policy::random5(m),
        "fast" => Policy::fast(m),
        "fast1" => Policy::fast_level(m, 1),
        "fast2" => Policy::fast_level(m, 2),
        "fast3" => Policy::fast_level(m, 3),
        _ => return None,
    })
}

fn print_report(report: &TrainingReport) {
    println!(
        "{}: {} rounds, {:.0} virtual s, final accuracy {:.3} (best {:.3})",
        report.policy,
        report.rounds.len(),
        report.total_time(),
        report.final_accuracy(),
        report.best_accuracy()
    );
    println!(
        "wire: {:.2} MB up, {:.2} MB down",
        report.total_bytes_up() as f64 / 1e6,
        report.total_bytes_down() as f64 / 1e6
    );
    for (r, a) in report.accuracy_over_rounds().iter().step_by(10) {
        println!("round {r:>6}: {a:.3}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "init" => {
            let cfg = ExperimentConfig::cifar10_resource_het(42);
            write_json(path, &cfg);
            println!("wrote template config to {path}");
            ExitCode::SUCCESS
        }
        [cmd, flag, path] if cmd == "init" && flag == "--spec" => {
            // A template showing the composable axes: adaptive tiering,
            // FedProx local training, paper-default aggregation.
            let request = RunRequest {
                experiment: ExperimentConfig::cifar10_resource_het(42),
                rounds: Some(100),
                seed: None,
                clients_per_round: None,
                spec: RunSpec {
                    selection: SelectionStrategy::Adaptive { config: None },
                    local: LocalTraining::FedProx { mu: 0.01 },
                    ..RunSpec::default()
                },
            };
            write_json(path, &request);
            println!("wrote template run request to {path}");
            ExitCode::SUCCESS
        }
        [cmd, path] if cmd == "profile" => {
            let cfg: ExperimentConfig = read_json(path);
            let (tiers, profile) = cfg.profile_and_tier();
            println!(
                "profiled {} clients in {:.0} virtual s ({} dropouts)",
                cfg.num_clients,
                profile.profiling_time,
                profile.dropouts().len()
            );
            for (t, tier) in tiers.tiers.iter().enumerate() {
                println!(
                    "tier {t}: {:>3} clients, mean latency {:>9.2}s",
                    tier.clients.len(),
                    tier.avg_latency
                );
            }
            ExitCode::SUCCESS
        }
        [cmd, path] if cmd == "estimate" => {
            let cfg: ExperimentConfig = read_json(path);
            let mut runner = cfg.runner();
            println!("{:<10} {:>16}", "policy", "estimate [s]");
            let num_tiers = runner.tiers().num_tiers();
            for p in Policy::cifar_set(num_tiers).iter().skip(1) {
                let est = runner.estimate(p);
                println!("{:<10} {est:>16.0}", p.name);
            }
            ExitCode::SUCCESS
        }
        [cmd, flag, path, rest @ ..] if cmd == "run" && flag == "--spec" => {
            let threads = match rest {
                [] => None,
                [tflag, n] if tflag == "--threads" => {
                    Some(n.parse::<usize>().unwrap_or_else(|e| {
                        panic!("--threads must be a thread count: {e}");
                    }))
                }
                _ => return usage(),
            };
            let mut request: RunRequest = read_json(path);
            if let Some(threads) = threads {
                // Force the worker count: event-driven specs get their
                // thread knob overridden; lockstep specs run with the
                // parallel iterators capped at the same width.
                if request.spec.backend != ExecBackend::Lockstep {
                    request.spec.backend = ExecBackend::EventDriven { threads };
                }
            }
            eprintln!(
                "[tifl] {} / {} on {} ...",
                request.experiment.name,
                request.spec.display_label(),
                request.spec.backend.label()
            );
            let report = match threads {
                Some(n) if request.spec.backend == ExecBackend::Lockstep => {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build()
                        .expect("thread pool builds");
                    pool.install(|| request.run())
                }
                _ => request.run(),
            };
            print_report(&report);
            ExitCode::SUCCESS
        }
        [cmd, path, policy] if cmd == "run" => {
            let cfg: ExperimentConfig = read_json(path);
            let mut runner = cfg.runner();
            let report = if policy == "adaptive" {
                runner.adaptive(None).run()
            } else {
                match policy_by_name(policy, cfg.tiering.num_tiers) {
                    Some(p) => runner.policy(&p).run(),
                    None => return usage(),
                }
            };
            print_report(&report);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn read_json<T: serde::Deserialize>(path: &str) -> T {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialisable");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}
