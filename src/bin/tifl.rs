//! `tifl` — command-line front end for the TiFL reproduction.
//!
//! ```sh
//! tifl init experiment.json            # write a template config
//! tifl profile experiment.json         # profile + print tiers
//! tifl estimate experiment.json        # Eq. 6 time estimates per policy
//! tifl run experiment.json uniform     # train under a policy
//! tifl run experiment.json adaptive    # train under Algorithm 2
//! ```
//!
//! Configs are JSON-serialised `ExperimentConfig`s, so everything the
//! library can express is scriptable: `cargo run --release --bin tifl --
//! init my.json`, edit, `run`.

use std::process::ExitCode;
use tifl::core::estimator;
use tifl::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tifl init <config.json>\n  tifl profile <config.json>\n  \
         tifl estimate <config.json>\n  tifl run <config.json> \
         <vanilla|slow|uniform|random|fast|fast1|fast2|fast3|adaptive>"
    );
    ExitCode::FAILURE
}

fn load(path: &str) -> ExperimentConfig {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn policy_by_name(name: &str, m: usize) -> Option<Policy> {
    Some(match name {
        "vanilla" => Policy::vanilla(),
        "slow" => Policy::slow(m),
        "uniform" => Policy::uniform(m),
        "random" => Policy::random5(m),
        "fast" => Policy::fast(m),
        "fast1" => Policy::fast_level(m, 1),
        "fast2" => Policy::fast_level(m, 2),
        "fast3" => Policy::fast_level(m, 3),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "init" => {
            let cfg = ExperimentConfig::cifar10_resource_het(42);
            let json = serde_json::to_string_pretty(&cfg).expect("serialisable");
            std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote template config to {path}");
            ExitCode::SUCCESS
        }
        [cmd, path] if cmd == "profile" => {
            let cfg = load(path);
            let (tiers, profile) = cfg.profile_and_tier();
            println!(
                "profiled {} clients in {:.0} virtual s ({} dropouts)",
                cfg.num_clients,
                profile.profiling_time,
                profile.dropouts().len()
            );
            for (t, tier) in tiers.tiers.iter().enumerate() {
                println!(
                    "tier {t}: {:>3} clients, mean latency {:>9.2}s",
                    tier.clients.len(),
                    tier.avg_latency
                );
            }
            ExitCode::SUCCESS
        }
        [cmd, path] if cmd == "estimate" => {
            let cfg = load(path);
            let (tiers, _) = cfg.profile_and_tier();
            println!("{:<10} {:>16}", "policy", "estimate [s]");
            for p in Policy::cifar_set(tiers.num_tiers()).iter().skip(1) {
                let est = estimator::estimate_for_policy(&tiers, p, cfg.rounds);
                println!("{:<10} {est:>16.0}", p.name);
            }
            ExitCode::SUCCESS
        }
        [cmd, path, policy] if cmd == "run" => {
            let cfg = load(path);
            let report = if policy == "adaptive" {
                cfg.run_adaptive(None)
            } else {
                match policy_by_name(policy, cfg.tiering.num_tiers) {
                    Some(p) => cfg.run_policy(&p),
                    None => return usage(),
                }
            };
            println!(
                "{}: {} rounds, {:.0} virtual s, final accuracy {:.3} (best {:.3})",
                report.policy,
                report.rounds.len(),
                report.total_time(),
                report.final_accuracy(),
                report.best_accuracy()
            );
            for (r, a) in report.accuracy_over_rounds().iter().step_by(10) {
                println!("round {r:>6}: {a:.3}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
