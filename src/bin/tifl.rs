//! `tifl` — command-line front end for the TiFL reproduction.
//!
//! ```sh
//! tifl init experiment.json            # write a template config
//! tifl init --spec run.json            # write a template run request
//! tifl init --sweep sweep.json         # write a template sweep manifest
//! tifl profile experiment.json         # profile + print tiers
//! tifl estimate experiment.json        # Eq. 6 time estimates per policy
//! tifl run experiment.json uniform     # train under a policy
//! tifl run experiment.json adaptive    # train under Algorithm 2
//! tifl run --spec run.json             # train a declarative RunSpec
//! tifl run --spec run.json --threads 4 # … on 4 worker threads
//! tifl run --spec run.json --out r.json# … writing the full report JSON
//! tifl sweep sweep.json --workers 4    # execute a whole run matrix
//! tifl sweep sweep.json --resume       # … skipping completed run keys
//! tifl sweep sweep.json --progress p.jsonl # … streaming a JSONL event log
//! tifl sweep sweep.json --shard 0/2    # … this host's half of the matrix
//! tifl trace run.json --out trace.json # re-run traced, export Chrome JSON
//! tifl trace run.json --out t.json --host # … with the host-time lane too
//! tifl diff a.json b.json              # first divergent round of two runs
//! tifl audit artifacts/ --deny         # re-verify every artifact in a store
//! tifl merge half-a half-b --out all   # union shard stores, byte-compared
//! tifl report artifacts/ --target 0.5  # pivot a store into a table
//! tifl lint --deny                     # determinism static analysis
//! ```
//!
//! Configs are JSON-serialised `ExperimentConfig`s; run requests are
//! JSON-serialised `RunRequest`s (an experiment + scalar overrides + a
//! `RunSpec`); sweep manifests are JSON-serialised `SweepManifest`s
//! (an experiment + per-axis value lists). The full §5 evaluation
//! matrix — selection strategy × aggregation mode × local objective ×
//! communication model × seeds × scale — is scriptable without
//! recompiling: `cargo run --release --bin tifl -- init --sweep
//! my.json`, edit, `sweep my.json --workers 4 --out artifacts`.

use std::process::ExitCode;
use tifl::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tifl init <config.json>\n  tifl init --spec <run.json>\n  \
         tifl init --sweep <sweep.json>\n  tifl profile <config.json>\n  \
         tifl estimate <config.json>\n  tifl run <config.json> \
         <vanilla|slow|uniform|random|fast|fast1|fast2|fast3|adaptive>\n  \
         tifl run --spec <run.json> [--threads N] [--out <report.json>]\n  \
         tifl sweep <sweep.json> [--workers N] [--out DIR] [--resume] [--progress <log.jsonl>] \
         [--shard I/N]\n  \
         tifl trace <run.json|artifact.json> [--out <trace.json>] [--host]\n  \
         tifl diff <a.json> <b.json> [--format human|json]\n  \
         tifl audit <store-dir> [--deny] [--format human|json] [--out <audit.json>]\n  \
         tifl merge <store-dir>... --out <dir> [--deny]\n  \
         tifl report <store-dir> [--format human|json] [--target ACC]\n  \
         tifl lint [--deny] [--format human|json] [path]"
    );
    ExitCode::FAILURE
}

fn policy_by_name(name: &str, m: usize) -> Option<Policy> {
    Some(match name {
        "vanilla" => Policy::vanilla(),
        "slow" => Policy::slow(m),
        "uniform" => Policy::uniform(m),
        "random" => Policy::random5(m),
        "fast" => Policy::fast(m),
        "fast1" => Policy::fast_level(m, 1),
        "fast2" => Policy::fast_level(m, 2),
        "fast3" => Policy::fast_level(m, 3),
        _ => return None,
    })
}

fn print_report(report: &TrainingReport) {
    println!(
        "{}: {} rounds, {:.0} virtual s, final accuracy {:.3} (best {:.3})",
        report.policy,
        report.rounds.len(),
        report.total_time(),
        report.final_accuracy(),
        report.best_accuracy()
    );
    println!(
        "wire: {:.2} MB up, {:.2} MB down",
        report.total_bytes_up() as f64 / 1e6,
        report.total_bytes_down() as f64 / 1e6
    );
    for (r, a) in report.accuracy_over_rounds().iter().step_by(10) {
        println!("round {r:>6}: {a:.3}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "init" => {
            let cfg = ExperimentConfig::cifar10_resource_het(42);
            write_json(path, &cfg);
            println!("wrote template config to {path}");
            ExitCode::SUCCESS
        }
        [cmd, flag, path] if cmd == "init" && flag == "--sweep" => {
            // A 6-run template: 3 selection strategies × 2 seeds over
            // the §5.1 resource-heterogeneity topology (the CI smoke
            // manifest). The tiered cells share one profiling pass per
            // seed through the scheduler's cache.
            let manifest = SweepManifest {
                name: Some("selection-x-seeds".into()),
                experiment: ExperimentConfig::cifar10_resource_het(42),
                rounds: Some(10),
                axes: SweepAxes {
                    seeds: vec![42, 43],
                    selection: vec![
                        SelectionStrategy::Vanilla,
                        SelectionStrategy::TierPolicy {
                            policy: Policy::uniform(5),
                        },
                        SelectionStrategy::Adaptive { config: None },
                    ],
                    ..SweepAxes::default()
                },
            };
            write_json(path, &manifest);
            println!(
                "wrote template sweep manifest ({} runs) to {path}",
                manifest.expand().len()
            );
            ExitCode::SUCCESS
        }
        [cmd, flag, path] if cmd == "init" && flag == "--spec" => {
            // A template showing the composable axes: adaptive tiering,
            // FedProx local training, paper-default aggregation.
            let request = RunRequest {
                experiment: ExperimentConfig::cifar10_resource_het(42),
                rounds: Some(100),
                seed: None,
                clients_per_round: None,
                spec: RunSpec {
                    selection: SelectionStrategy::Adaptive { config: None },
                    local: LocalTraining::FedProx { mu: 0.01 },
                    ..RunSpec::default()
                },
            };
            write_json(path, &request);
            println!("wrote template run request to {path}");
            ExitCode::SUCCESS
        }
        [cmd, path] if cmd == "profile" => {
            let cfg: ExperimentConfig = read_json(path);
            let (tiers, profile) = cfg.profile_and_tier();
            println!(
                "profiled {} clients in {:.0} virtual s ({} dropouts)",
                cfg.num_clients,
                profile.profiling_time,
                profile.dropouts().len()
            );
            for (t, tier) in tiers.tiers.iter().enumerate() {
                println!(
                    "tier {t}: {:>3} clients, mean latency {:>9.2}s",
                    tier.clients.len(),
                    tier.avg_latency
                );
            }
            ExitCode::SUCCESS
        }
        [cmd, path] if cmd == "estimate" => {
            let cfg: ExperimentConfig = read_json(path);
            let mut runner = cfg.runner();
            println!("{:<10} {:>16}", "policy", "estimate [s]");
            let num_tiers = runner.tiers().num_tiers();
            for p in Policy::cifar_set(num_tiers).iter().skip(1) {
                let est = runner.estimate(p);
                println!("{:<10} {est:>16.0}", p.name);
            }
            ExitCode::SUCCESS
        }
        [cmd, flag, path, rest @ ..] if cmd == "run" && flag == "--spec" => {
            let mut threads = None;
            let mut out = None;
            let mut args = rest.iter();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--threads" => {
                        let n = args.next().map(|n| n.parse::<usize>());
                        let Some(Ok(n)) = n else { return usage() };
                        threads = Some(n);
                    }
                    "--out" => {
                        let Some(p) = args.next() else { return usage() };
                        out = Some(p.clone());
                    }
                    _ => return usage(),
                }
            }
            let mut request: RunRequest = read_json(path);
            if let Some(threads) = threads {
                // Force the worker count: event-driven specs get their
                // thread knob overridden; lockstep specs run with the
                // parallel iterators capped at the same width.
                if request.spec.backend != ExecBackend::Lockstep {
                    request.spec.backend = ExecBackend::EventDriven { threads };
                }
            }
            eprintln!(
                "[tifl] {} / {} on {} ...",
                request.experiment.name,
                request.spec.display_label(),
                request.spec.backend.label()
            );
            let report = match threads {
                Some(n) if request.spec.backend == ExecBackend::Lockstep => {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build()
                        .expect("thread pool builds");
                    pool.install(|| request.run())
                }
                _ => request.run(),
            };
            print_report(&report);
            if let Some(out) = out {
                // The sweep store's serializer, so a single run's
                // report and a sweep artifact's `report` field are the
                // same JSON.
                tifl::sweep::store::write_json(std::path::Path::new(&out), &report)
                    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
                println!("wrote full report to {out}");
            }
            ExitCode::SUCCESS
        }
        [cmd, path, rest @ ..] if cmd == "sweep" => {
            let mut workers = 0usize;
            let mut out = "sweep-artifacts".to_string();
            let mut resume = false;
            let mut progress_path = None;
            let mut shard: Option<(usize, usize)> = None;
            let mut args = rest.iter();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--workers" => {
                        let n = args.next().map(|n| n.parse::<usize>());
                        let Some(Ok(n)) = n else { return usage() };
                        workers = n;
                    }
                    "--out" => {
                        let Some(p) = args.next() else { return usage() };
                        out = p.clone();
                    }
                    "--resume" => resume = true,
                    "--progress" => {
                        let Some(p) = args.next() else { return usage() };
                        progress_path = Some(p.clone());
                    }
                    "--shard" => {
                        // "--shard I/N": this invocation runs slice I of
                        // N (disjoint, covering, stable across hosts —
                        // see `shard_runs`).
                        let parsed = args.next().and_then(|s| {
                            let (i, n) = s.split_once('/')?;
                            Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?))
                        });
                        let Some((i, n)) = parsed else { return usage() };
                        if n == 0 || i >= n {
                            eprintln!("[tifl] bad --shard {i}/{n}: index must be < count");
                            return ExitCode::FAILURE;
                        }
                        shard = Some((i, n));
                    }
                    _ => return usage(),
                }
            }
            let manifest: SweepManifest = read_json(path);
            let store = RunStore::open(&out).unwrap_or_else(|e| panic!("opening {out}: {e}"));
            let scheduler = SweepScheduler::new(workers);
            let expanded = manifest.expand();
            let total = expanded.len();
            let runs = match shard {
                Some((i, n)) => tifl::sweep::shard_runs(&expanded, i, n),
                None => expanded,
            };
            let shard_note =
                shard.map_or_else(String::new, |(i, n)| format!(" (shard {i}/{n} of {total})"));
            eprintln!(
                "[tifl] sweep `{}`: {} runs{shard_note} on {} workers -> {}",
                manifest.name.as_deref().unwrap_or("unnamed"),
                runs.len(),
                scheduler.workers(),
                store.dir().display()
            );
            let progress = progress_path.as_ref().map(|p| {
                tifl::sweep::ProgressLog::create(std::path::Path::new(p))
                    .unwrap_or_else(|e| panic!("opening progress log {p}: {e}"))
            });
            let sweep = scheduler.execute_logged(&runs, Some(&store), resume, progress.as_ref());
            if let Err(e) = store.write_summary(&sweep.summary(manifest.name.clone())) {
                eprintln!("[tifl] warning: writing sweep summary failed: {e}");
            }
            println!(
                "{:<12} {:<34} {:>10} {:>11} {:>9}",
                "status", "run", "rounds", "time [s]", "final acc"
            );
            for outcome in &sweep.outcomes {
                let (status, summary) = match outcome {
                    RunOutcome::Completed { artifact, .. } => {
                        ("completed", Some(artifact.report.summary()))
                    }
                    RunOutcome::Skipped { artifact } => {
                        ("skipped", Some(artifact.report.summary()))
                    }
                    RunOutcome::Failed { .. } => ("FAILED", None),
                };
                match summary {
                    Some(s) => println!(
                        "{status:<12} {:<34} {:>10} {:>11.0} {:>9.3}",
                        outcome.label(),
                        s.rounds,
                        s.total_time,
                        s.final_accuracy
                    ),
                    None => println!("{status:<12} {:<34}", outcome.label()),
                }
            }
            println!(
                "sweep: {} completed, {} skipped, {} failed; {} profiling pass(es); {:.1}s",
                sweep.completed(),
                sweep.skipped(),
                sweep.failed(),
                sweep.profiles_computed,
                sweep.wall_clock_sec
            );
            let phases = sweep.host_phase_sec();
            if phases.total() > 0.0 {
                let breakdown = tifl::obs::Phase::ALL
                    .iter()
                    .map(|p| format!("{} {:.2}s", p.name(), phases.get(*p)))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("host phases: {breakdown}");
            }
            for (key, label, message) in sweep.failures() {
                eprintln!("[tifl] FAILED {label} ({key}): {message}");
            }
            if sweep.failed() > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        [cmd, path, rest @ ..] if cmd == "trace" => {
            let mut out = None;
            let mut host = false;
            let mut args = rest.iter();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--out" => {
                        let Some(p) = args.next() else { return usage() };
                        out = Some(p.clone());
                    }
                    "--host" => host = true,
                    _ => return usage(),
                }
            }
            // Accept either a run request or a stored artifact — an
            // artifact carries its request, and re-running it is
            // deterministic, so the trace it never stored can be
            // regenerated bit-for-bit. An artifact's stored metrics
            // double as a determinism check against the regenerated
            // run.
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
            let (request, stored_metrics) = match serde_json::from_str::<RunArtifact>(&text) {
                Ok(artifact) => {
                    let Some(metrics) = artifact.metrics else {
                        eprintln!(
                            "[tifl] artifact has no metrics; re-run with run_observed \
                             (re-execute the cell with `tifl sweep --out` to rewrite the \
                             artifact with a metrics section, or trace the request file)"
                        );
                        return ExitCode::FAILURE;
                    };
                    (artifact.request, Some(metrics))
                }
                Err(artifact_err) => match serde_json::from_str::<RunRequest>(&text) {
                    Ok(request) => (request, None),
                    Err(e) => {
                        if serde_json::from_str::<TrainingReport>(&text).is_ok() {
                            eprintln!(
                                "[tifl] {path} is a bare training report: it records results, \
                                 not a request, so there is nothing to re-run; trace a run \
                                 request or a store artifact"
                            );
                            return ExitCode::FAILURE;
                        }
                        panic!("parsing {path}: not an artifact ({artifact_err}) nor a RunRequest ({e})")
                    }
                },
            };
            eprintln!(
                "[tifl] tracing {} / {} ...",
                request.experiment.name,
                request.spec.display_label()
            );
            let observed = request.run_observed(1 << 18);
            let rows = tifl::obs::round_rows(&observed.records);
            print!("{}", tifl::obs::render_rounds(&rows));
            print!("{}", observed.metrics.render_text());
            if let Some(stored) = stored_metrics {
                if stored == observed.metrics {
                    eprintln!("[tifl] regenerated metrics match the artifact's stored snapshot");
                } else {
                    eprintln!(
                        "[tifl] WARNING: regenerated metrics diverge from the artifact's \
                         stored snapshot — determinism bug or corrupt artifact (try `tifl audit`)"
                    );
                    return ExitCode::FAILURE;
                }
            }
            if let Some(out) = out {
                let mut events = tifl::obs::chrome_trace(&observed.records);
                if host {
                    // The host lane rides alongside as a second process
                    // (pid 2): same viewer, two clocks. Host timings are
                    // best-effort — only the virtual lane is
                    // byte-deterministic.
                    events.extend(tifl::obs::host_chrome_trace(&observed.host_spans));
                }
                tifl::sweep::store::write_json(std::path::Path::new(&out), &events)
                    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
                println!(
                    "wrote {} Chrome trace events to {out} (chrome://tracing, Perfetto{})",
                    events.len(),
                    if host { "; virtual + host lanes" } else { "" }
                );
            }
            ExitCode::SUCCESS
        }
        [cmd, a, b, rest @ ..] if cmd == "diff" => {
            let mut format = "human".to_string();
            let mut args = rest.iter();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--format" => {
                        let Some(f) = args.next() else { return usage() };
                        format = f.clone();
                    }
                    _ => return usage(),
                }
            }
            // Operands are store artifacts or bare training reports
            // (`tifl run --spec --out`); either way the diff walks the
            // digest chains — nothing is re-run.
            let load = |path: &str| -> TrainingReport {
                let text =
                    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
                match serde_json::from_str::<RunArtifact>(&text) {
                    Ok(artifact) => artifact.report,
                    Err(_) => serde_json::from_str::<TrainingReport>(&text).unwrap_or_else(|e| {
                        panic!("parsing {path} as a run artifact or training report: {e}")
                    }),
                }
            };
            let diff = load(a).diff(a, &load(b), b);
            match format.as_str() {
                "human" => print!("{}", diff.render_text()),
                "json" => println!(
                    "{}",
                    serde_json::to_string_pretty(&diff).expect("diff report serializes")
                ),
                _ => return usage(),
            }
            if diff.identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        [cmd, dir, rest @ ..] if cmd == "audit" => {
            let mut deny = false;
            let mut format = "human".to_string();
            let mut out = None;
            let mut args = rest.iter();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--deny" => deny = true,
                    "--format" => {
                        let Some(f) = args.next() else { return usage() };
                        format = f.clone();
                    }
                    "--out" => {
                        let Some(p) = args.next() else { return usage() };
                        out = Some(p.clone());
                    }
                    _ => return usage(),
                }
            }
            if !std::path::Path::new(dir).is_dir() {
                eprintln!("[tifl] no store directory at {dir}");
                return ExitCode::FAILURE;
            }
            let store = RunStore::open(dir).unwrap_or_else(|e| panic!("opening {dir}: {e}"));
            let report = tifl::sweep::audit_store(&store);
            match format.as_str() {
                "human" => print!("{}", report.render_text()),
                "json" => println!(
                    "{}",
                    serde_json::to_string_pretty(&report).expect("audit report serializes")
                ),
                _ => return usage(),
            }
            if let Some(out) = out {
                tifl::sweep::store::write_json(std::path::Path::new(&out), &report)
                    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
                eprintln!("[tifl] wrote audit report to {out}");
            }
            if deny && !report.is_clean() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        [cmd, rest @ ..] if cmd == "merge" => {
            let mut inputs: Vec<std::path::PathBuf> = Vec::new();
            let mut out = None;
            let mut deny = false;
            let mut args = rest.iter();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--out" => {
                        let Some(p) = args.next() else { return usage() };
                        out = Some(p.clone());
                    }
                    "--deny" => deny = true,
                    flag if flag.starts_with("--") => return usage(),
                    _ => inputs.push(std::path::PathBuf::from(a)),
                }
            }
            let Some(out) = out else { return usage() };
            if inputs.is_empty() {
                return usage();
            }
            let store = RunStore::open(&out).unwrap_or_else(|e| panic!("opening {out}: {e}"));
            let report = match tifl::sweep::merge_stores(&inputs, &store) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("[tifl] merge failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", report.render_text());
            if deny && !report.is_clean() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        [cmd, dir, rest @ ..] if cmd == "report" => {
            let mut format = "human".to_string();
            let mut target = None;
            let mut args = rest.iter();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--format" => {
                        let Some(f) = args.next() else { return usage() };
                        format = f.clone();
                    }
                    "--target" => {
                        let t = args.next().map(|t| t.parse::<f64>());
                        let Some(Ok(t)) = t else { return usage() };
                        target = Some(t);
                    }
                    _ => return usage(),
                }
            }
            let store = RunStore::open(dir).unwrap_or_else(|e| panic!("opening {dir}: {e}"));
            let rows = tifl::sweep::pivot_rows(&store, target);
            if rows.is_empty() {
                eprintln!("[tifl] no run artifacts found in {dir}");
                return ExitCode::FAILURE;
            }
            match format.as_str() {
                "human" => print!("{}", tifl::obs::render_pivot(&rows, target)),
                "json" => {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&rows).expect("pivot rows serialize")
                    );
                }
                _ => return usage(),
            }
            ExitCode::SUCCESS
        }
        [cmd, rest @ ..] if cmd == "lint" => ExitCode::from(tifl::lint::cli::run(rest)),
        [cmd, path, policy] if cmd == "run" => {
            let cfg: ExperimentConfig = read_json(path);
            let mut runner = cfg.runner();
            let report = if policy == "adaptive" {
                runner.adaptive(None).run()
            } else {
                match policy_by_name(policy, cfg.tiering.num_tiers) {
                    Some(p) => runner.policy(&p).run(),
                    None => return usage(),
                }
            };
            print_report(&report);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn read_json<T: serde::Deserialize>(path: &str) -> T {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialisable");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}
