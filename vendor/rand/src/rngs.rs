//! Seedable RNGs. [`StdRng`] is xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic RNG (xoshiro256++).
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
/// the workspace only relies on determinism given a seed, never on the
/// specific stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // Guard against the all-zero state, which xoshiro cannot escape.
        if s == [0, 0, 0, 0] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API parity with upstream's `SmallRng`.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }
}
