//! Slice sampling helpers (`shuffle`, `choose`, `choose_multiple`).

use crate::{uniform_u64_below, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher-Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Pick `amount` distinct elements (all of them if `amount >= len`),
    /// in random order.
    fn choose_multiple<'a, R: RngCore + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'a, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<'a, R: RngCore + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'a, T> {
        let amount = amount.min(self.len());
        // Partial Fisher-Yates over an index array: the first `amount`
        // entries end up a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + uniform_u64_below(rng, (idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        SliceChooseIter {
            slice: self,
            indices: idx.into_iter().take(amount),
        }
    }
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: core::iter::Take<std::vec::IntoIter<usize>>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_multiple_distinct() {
        let v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let picked: Vec<&u32> = v.choose_multiple(&mut rng, 8).collect();
        assert_eq!(picked.len(), 8);
        let mut uniq: Vec<u32> = picked.iter().map(|&&x| x).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "no duplicates");
    }

    #[test]
    fn choose_multiple_caps_at_len() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(v.choose_multiple(&mut rng, 10).count(), 3);
    }
}
