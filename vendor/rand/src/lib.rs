//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, fully deterministic
//! re-implementation of the `rand 0.8` API surface it actually uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`distributions::WeightedIndex`] and [`seq::SliceRandom`].
//!
//! Numbers are produced by xoshiro256++ seeded through SplitMix64 —
//! high-quality, fast, and identical on every platform. The streams do
//! **not** match upstream `rand` (which uses ChaCha12 for `StdRng`);
//! nothing in this workspace depends on upstream streams, only on
//! determinism given a seed. There is no `thread_rng` and no OS entropy
//! on purpose: every RNG in the workspace must be constructed from an
//! explicit seed.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (`f32`/`f64` uniform in `[0, 1)`, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); the
/// modulo bias at 64 bits is far below anything observable here.
pub(crate) fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);
