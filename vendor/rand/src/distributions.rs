//! The [`Distribution`] trait and [`WeightedIndex`].

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights are zero.
    AllWeightsZero,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            WeightedError::NoItem => "no weights supplied",
            WeightedError::InvalidWeight => "negative or non-finite weight",
            WeightedError::AllWeightsZero => "all weights are zero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WeightedError {}

/// Conversion helper so `WeightedIndex::new` accepts `&Vec<f64>`,
/// `&[f32]`, iterators of integers, etc.
pub trait IntoWeight {
    /// The weight as `f64`.
    fn into_weight(self) -> f64;
}

macro_rules! impl_into_weight {
    ($($t:ty),*) => {$(
        impl IntoWeight for $t {
            fn into_weight(self) -> f64 {
                self as f64
            }
        }
        impl IntoWeight for &$t {
            fn into_weight(self) -> f64 {
                *self as f64
            }
        }
    )*};
}
impl_into_weight!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Samples indices `0..n` proportionally to a weight vector, via binary
/// search over the cumulative sum.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterable of non-negative weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: IntoWeight,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = w.into_weight();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u = crate::SampleStandard::sample_standard(rng);
        let target = self.total * if u < 1.0 { u } else { 0.0 };
        // First index whose cumulative weight exceeds the target.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
        {
            Ok(i) | Err(i) => {
                // Skip zero-weight entries (cumulative equal to predecessor).
                let mut i = i.min(self.cumulative.len() - 1);
                while i + 1 < self.cumulative.len() && self.cumulative[i] <= target {
                    i += 1;
                }
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_prefers_heavy_items() {
        let dist = WeightedIndex::new([1.0f64, 0.0, 9.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item never sampled");
        assert!(
            counts[2] > counts[0] * 5,
            "9:1 ratio approximately held: {counts:?}"
        );
    }

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()),
            Err(WeightedError::NoItem)
        );
        assert_eq!(
            WeightedIndex::new([0.0f64, 0.0]),
            Err(WeightedError::AllWeightsZero)
        );
        assert_eq!(
            WeightedIndex::new([1.0f64, -2.0]),
            Err(WeightedError::InvalidWeight)
        );
    }
}
