//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the two continuous distributions this workspace samples —
//! [`Normal`] and [`LogNormal`] — generic over `f32`/`f64`, plus a
//! re-export of [`Distribution`]. Normal deviates come from the
//! Box-Muller transform: two uniform words per sample, fully
//! deterministic given the RNG stream (the upstream crate's ziggurat
//! would produce different — but equally valid — streams).

pub use rand::distributions::Distribution;
use rand::{RngCore, SampleStandard};

/// Error from distribution constructors (non-finite or non-positive
/// scale parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The standard deviation was negative or not finite.
    BadStdDev,
    /// The mean was not finite.
    BadMean,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            Error::BadStdDev => "standard deviation must be finite and >= 0",
            Error::BadMean => "mean must be finite",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for Error {}

/// Upstream-compatible alias: `rand_distr::NormalError`.
pub type NormalError = Error;

/// Minimal float abstraction so `Normal<f32>` and `Normal<f64>` share
/// one implementation.
pub trait Float: Copy + PartialOrd {
    /// Lossless-enough conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// `self` is neither NaN nor infinite.
    fn is_finite_f(self) -> bool;
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite_f(self) -> bool {
        self.is_finite()
    }
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn is_finite_f(self) -> bool {
        self.is_finite()
    }
}

/// Draw a standard normal deviate via Box-Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite; u2 in [0, 1).
    let u1 = 1.0 - f64::sample_standard(rng);
    let u2 = f64::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Construct; `std_dev` must be finite and non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, Error> {
        if !mean.is_finite_f() {
            return Err(Error::BadMean);
        }
        if !std_dev.is_finite_f() || std_dev.to_f64() < 0.0 {
            return Err(Error::BadStdDev);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> F {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let z = standard_normal(rng);
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F: Float> {
    norm: Normal<F>,
}

impl<F: Float> LogNormal<F> {
    /// Construct from the underlying normal's `mu` and `sigma`.
    pub fn new(mu: F, sigma: F) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl<F: Float> Distribution<F> for LogNormal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.norm.sample(rng).to_f64().exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let dist = Normal::new(3.0f64, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let dist = Normal::new(1.5f32, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(dist.sample(&mut rng), 1.5);
        }
    }

    #[test]
    fn lognormal_is_positive() {
        let dist = LogNormal::new(0.0f64, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn rejects_negative_sigma() {
        assert!(Normal::new(0.0f64, -1.0).is_err());
    }
}
