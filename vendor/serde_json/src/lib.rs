//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde shim's [`Value`] tree as JSON text and
//! parses JSON text back into it. Numbers keep their integer/float
//! distinction; floats round-trip exactly via Rust's shortest-repr
//! formatting; non-finite floats serialise as `null` (as upstream
//! `serde_json::to_string` would reject them, the shim opts for the
//! lenient behaviour so diagnostic dumps never panic).

use serde::{Deserialize, Number, Serialize, Value};

/// Re-export: `serde_json::Error` is the shim's serde error.
pub type Error = serde::Error;

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    T::from_value(&value)
}

/// Parse a JSON string into a raw [`Value`].
pub fn parse_value_complete(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if !v.is_finite() => out.push_str("null"),
        Number::F64(v) => {
            // Rust's Display prints the shortest representation that
            // round-trips; keep a trailing `.0` so the integer/float
            // distinction survives the round trip.
            let mut buf = format!("{v}");
            if !buf.contains(['.', 'e', 'E']) {
                buf.push_str(".0");
            }
            out.push_str(&buf);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<()> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{}` at byte {}",
            ch as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                        // Surrogate pairs are not reassembled; this
                        // workspace never emits them (no astral-plane
                        // escapes in any config).
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::custom("invalid UTF-8 in number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U64(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I64(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::F64(v)))
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>(r#""a\nbA""#).unwrap(), "a\nbA");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456.789, -0.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
        let f = 0.12345679f32;
        let s = to_string(&f).unwrap();
        assert_eq!(from_str::<f32>(&s).unwrap(), f);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1.5f64, "x".to_string()), (2.5, "y".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<(f64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
    }

    #[test]
    fn integer_float_distinction_survives() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(to_string(&3u64).unwrap(), "3");
    }
}
