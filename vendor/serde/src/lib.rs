//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small value-tree serialisation framework under serde's
//! names: `#[derive(Serialize, Deserialize)]` (from the sibling
//! `serde_derive` shim) map types to and from a JSON-shaped [`Value`],
//! and the `serde_json` shim renders/parses that tree as JSON text.
//!
//! Supported surface (all this workspace uses):
//! * structs with named fields, newtype/tuple structs;
//! * enums with unit and struct variants, externally tagged
//!   (`"Unit"` / `{"Variant": {...}}`) exactly like upstream serde;
//! * `#[serde(default)]` on fields;
//! * primitives, `String`, `Option`, `Vec`, arrays, tuples, maps.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::{Number, Value};

/// Serialisation: convert `self` into a [`Value`] tree.
///
/// Note: unlike upstream serde this is not zero-copy and has no
/// serializer abstraction; the tree is the interchange format.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Deserialisation: rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserialisation alias for API parity with upstream
/// (`serde::de::DeserializeOwned`).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// In this shim every [`Deserialize`] is owned.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Serialisation / deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }

    /// Missing-field helper used by derived code.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` for `{ty}`"))
    }

    /// Unknown-variant helper used by derived code.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error::custom(format!("unknown variant `{variant}` for `{ty}`"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Support items referenced by `serde_derive`-generated code. Not part
/// of the public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::{Deserialize, Error, Serialize, Value};

    /// Look up `key` in an object's pair list.
    pub fn find<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}
