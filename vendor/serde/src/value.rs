//! The JSON-shaped interchange tree.

/// A number, kept in its widest lossless representation so `u64` seeds
/// and `f64` metrics both round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Widen to `f64` (lossy above 2^53, which nothing here hits).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// As `u64` if integral and in range.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `i64` if integral and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v >= i64::MIN as f64 && v <= i64::MAX as f64 && v.fract() == 0.0 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (a pair list, not a hash map) so
/// serialised output is deterministic and matches field declaration
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as an ordered pair list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as array elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Copy out a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| crate::__private::find(pairs, key))
    }
}
