//! `Serialize` / `Deserialize` implementations for std types.

use crate::{Deserialize, Error, Number, Serialize, Value};
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| Error::expected("number", v))?;
                let raw = n.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I64(v))
                } else {
                    Value::Number(Number::U64(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| Error::expected("number", v))?;
                let raw = n.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Upstream serde_json emits non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Ok(v
                .as_number()
                .ok_or_else(|| Error::expected("number", v))?
                .as_f64()),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

// ------------------------------------------------------------- references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + core::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ------------------------------------------------------------------- maps

/// Map keys must render as strings to stay JSON-shaped.
pub trait MapKey: Sized {
    /// Key to string.
    fn to_key(&self) -> String;
    /// String to key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("bad {} map key `{key}`", stringify!($t)))
                })
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_map {
    ($map:ident) => {
        impl<K: MapKey + Ord + core::hash::Hash, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                let mut pairs: Vec<(String, Value)> = self
                    .iter()
                    .map(|(k, v)| (k.to_key(), v.to_value()))
                    .collect();
                // Deterministic output independent of hash order.
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(pairs)
            }
        }
        impl<K: MapKey + Ord + core::hash::Hash, V: Deserialize> Deserialize for $map<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_object()
                    .ok_or_else(|| Error::expected("object", v))?
                    .iter()
                    .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                    .collect()
            }
        }
    };
}
impl_map!(HashMap);
impl_map!(BTreeMap);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
