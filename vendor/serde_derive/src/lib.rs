//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! Implemented directly on `proc_macro` token trees (the offline build
//! has no `syn`/`quote`). Supports the shapes this workspace uses:
//! structs with named fields, tuple/newtype structs, unit structs, and
//! enums with unit / struct / tuple variants (externally tagged, like
//! upstream serde's default). The only field attribute understood is
//! `#[serde(default)]`. Generic types are rejected with a compile
//! error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// --------------------------------------------------------------- item model

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ------------------------------------------------------------------ parsing

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Strip a raw-identifier prefix for use as a JSON key.
fn key_name(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_owned()
}

/// Does this attribute body (the tokens inside `#[...]`) say
/// `serde(default)` (possibly among other serde options)?
fn attr_is_serde_default(body: &[TokenTree]) -> bool {
    match body {
        [first, TokenTree::Group(args)] if ident_of(first).as_deref() == Some("serde") => args
            .stream()
            .into_iter()
            .any(|t| ident_of(&t).as_deref() == Some("default")),
        _ => false,
    }
}

/// Consume attributes at `*i`; report whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                has_default |= attr_is_serde_default(&body);
                *i += 2;
                continue;
            }
        }
        break;
    }
    has_default
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)` at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && ident_of(&tokens[*i]).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Consume one type (or expression) up to a top-level `,`, tracking
/// angle-bracket depth; groups are atomic token trees so only `<`/`>`
/// need counting.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        let tt = &tokens[*i];
        if is_punct(tt, '<') {
            angle += 1;
        } else if is_punct(tt, '>') && angle > 0 {
            angle -= 1;
        } else if is_punct(tt, ',') && angle == 0 {
            return;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = ident_of(
            tokens
                .get(i)
                .ok_or_else(|| "unexpected end of field list".to_owned())?,
        )
        .ok_or_else(|| format!("expected field name, got `{}`", tokens[i]))?;
        i += 1;
        if !tokens.get(i).is_some_and(|t| is_punct(t, ':')) {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i); // e.g. #[default], doc comments
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i])
            .ok_or_else(|| format!("expected variant name, got `{}`", tokens[i]))?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kw = ident_of(
        tokens
            .get(i)
            .ok_or_else(|| "empty derive input".to_owned())?,
    )
    .ok_or_else(|| "expected `struct` or `enum`".to_owned())?;
    i += 1;
    let name = ident_of(
        tokens
            .get(i)
            .ok_or_else(|| "missing type name".to_owned())?,
    )
    .ok_or_else(|| "expected type name".to_owned())?;
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "the vendored serde shim cannot derive for generic type `{name}`"
        ));
    }
    match kw.as_str() {
        "struct" => {
            // Scan forward past any where clause to the body.
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        return Ok(Item::Struct {
                            name,
                            fields: Fields::Named(parse_named_fields(g.stream())?),
                        });
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        return Ok(Item::Struct {
                            name,
                            fields: Fields::Tuple(count_tuple_fields(g.stream())),
                        });
                    }
                    t if is_punct(t, ';') => {
                        return Ok(Item::Struct {
                            name,
                            fields: Fields::Unit,
                        });
                    }
                    _ => i += 1,
                }
            }
            Err(format!("no body found for struct `{name}`"))
        }
        "enum" => {
            while i < tokens.len() {
                if let TokenTree::Group(g) = &tokens[i] {
                    if g.delimiter() == Delimiter::Brace {
                        return Ok(Item::Enum {
                            name,
                            variants: parse_variants(g.stream())?,
                        });
                    }
                }
                i += 1;
            }
            Err(format!("no body found for enum `{name}`"))
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ------------------------------------------------------------------ codegen

fn named_fields_to_object(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "{ let mut pairs: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let key = key_name(&f.name);
        let access = format!("{}{}", access_prefix, f.name);
        out.push_str(&format!(
            "pairs.push((\"{key}\".to_string(), ::serde::Serialize::to_value(&{access})));\n"
        ));
    }
    out.push_str("::serde::Value::Object(pairs) }");
    out
}

/// Build the deserialiser expression for one named field, reading from
/// a `pairs` binding.
fn named_field_from_pairs(ty_name: &str, f: &Field) -> String {
    let key = key_name(&f.name);
    let missing = if f.default {
        "::std::default::Default::default()".to_owned()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty_name}\", \"{key}\"))"
        )
    };
    format!(
        "{name}: match ::serde::__private::find(pairs, \"{key}\") {{\n\
         ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
         ::std::option::Option::None => {missing},\n\
         }}",
        name = f.name
    )
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => named_fields_to_object(fs, "self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_owned(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        let bind: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let obj = named_fields_to_object(fs, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), {obj})]),\n",
                            binds = bind.join(", ")
                        ));
                    }
                    Fields::Tuple(n) => {
                        let bind: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_owned()
                        } else {
                            let items: Vec<String> = bind
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), {inner})]),\n",
                            binds = bind.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let field_exprs: Vec<String> =
                        fs.iter().map(|f| named_field_from_pairs(name, f)).collect();
                    format!(
                        "let pairs = v.as_object().ok_or_else(|| \
                         ::serde::Error::expected(\"object\", v))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        field_exprs.join(",\n")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array().ok_or_else(|| \
                         ::serde::Error::expected(\"array\", v))?;\n\
                         if items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(format!(\"expected {n} elements for {name}, got {{}}\", items.len()))); }}\n\
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    )
                })
                .collect();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        // Accept `{"Unit": null}` for leniency.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        let field_exprs: Vec<String> =
                            fs.iter().map(|f| named_field_from_pairs(name, f)).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let pairs = inner.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", inner))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}}\n",
                            field_exprs.join(",\n")
                        ));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", inner))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong tuple-variant arity\".to_string())); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({items}))\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }},\n\
                 ::serde::Value::Object(outer) if outer.len() == 1 => {{\n\
                 let (tag, inner) = &outer[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::expected(\"externally tagged enum\", v)),\n\
                 }}\n}}\n}}"
            )
        }
    }
}

fn run(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!(\"serde shim derive: {msg}\");"),
    };
    code.parse().expect("derive shim generated invalid Rust")
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, generate_serialize)
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, generate_deserialize)
}
