//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro, numeric-range strategies, `prop::collection::vec`,
//! `prop::option::weighted`, `prop_assume!`, `prop_assert!` and
//! `prop_assert_eq!`. Each test runs 64 random cases from a seed derived
//! from the test's name, so failures reproduce exactly across runs and
//! machines. There is no shrinking: a failing case reports its inputs
//! via the assertion message (all strategies produce `Debug` values).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property (upstream default is 256; 64 keeps the suite
/// fast while still exercising the space).
pub const CASES: usize = 64;

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `Just<T>`: always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy combinators under the `prop::` path, mirroring upstream.
pub mod prop {
    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Vec of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = if self.size.lo >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod option {
        //! Option strategies.

        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// `Some(value)` with probability `p`, else `None`.
        pub fn weighted<S: Strategy>(p: f64, value: S) -> WeightedOption<S> {
            WeightedOption { p, value }
        }

        /// Strategy returned by [`weighted`].
        pub struct WeightedOption<S> {
            p: f64,
            value: S,
        }

        impl<S: Strategy> Strategy for WeightedOption<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                if rng.gen_bool(self.p) {
                    Some(self.value.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Length specification for collection strategies: a fixed size or a
/// half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fresh RNG for a named test.
pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

/// Define property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::rng_for(stringify!($name));
                let mut cases_run = 0usize;
                let mut attempts = 0usize;
                // The 20x attempt cap bounds pathological prop_assume!
                // rejection without hiding a vacuous test.
                while cases_run < $crate::CASES && attempts < $crate::CASES * 20 {
                    attempts += 1;
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    $body
                    cases_run += 1;
                }
                assert!(
                    cases_run > 0,
                    "prop_assume! rejected every generated case in {}",
                    stringify!($name)
                );
            }
        )*
    };
}

/// Skip the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert within a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn vec_respects_size_range(
            v in prop::collection::vec(0u64..10, 3..7),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn weighted_option_mixes(
            opts in prop::collection::vec(prop::option::weighted(0.5, 0u32..100), 100),
        ) {
            let somes = opts.iter().flatten().count();
            prop_assert!(somes > 10 && somes < 90, "somes {}", somes);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
