//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! measurement strategy: warm up briefly, then run batches until a
//! target measurement time and report the mean time per iteration.
//! No statistics, no HTML reports; output is one line per benchmark on
//! stdout. Good enough to compare hot-path changes within this repo.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value barrier.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean seconds per iteration, filled by [`iter`](Self::iter).
    result_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Time the routine: brief warm-up, then batches until the target
    /// measurement time elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow until one batch
        // takes at least ~1 ms.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= batch_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement_time {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.result_ns = total.as_nanos() as f64 / iters as f64;
        self.iters_done = iters;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        measurement_time,
        result_ns: 0.0,
        iters_done: 0,
    };
    f(&mut bencher);
    println!(
        "{label:<50} {:>12}/iter  ({} iters)",
        human_time(bencher.result_ns),
        bencher.iters_done
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Upstream-parity no-op (sampling is time-based here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.measurement_time, &mut f);
        self
    }

    /// Run an ungrouped benchmark with an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.measurement_time, &mut |b| f(b, input));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream-parity no-op (sampling is time-based here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-benchmark measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement_time = t;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.measurement_time, &mut f);
        self
    }

    /// Run a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; for API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("matmul", 64).to_string(), "matmul/64");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
