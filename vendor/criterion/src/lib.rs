//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! measurement strategy: warm up briefly, then run batches until a
//! target measurement time and report the mean time per iteration.
//! No statistics, no HTML reports; output is one line per benchmark on
//! stdout. Good enough to compare hot-path changes within this repo.
//!
//! # Baseline compare (the perf gate)
//!
//! Unlike upstream, baselines are explicit JSON files so they can be
//! checked into the repo and diffed in review. The bench binary accepts
//! (unknown flags, e.g. cargo's `--bench`, are ignored):
//!
//! * `--save-baseline <path>` — write every measured benchmark to
//!   `<path>` as a flat `label → ns/iter` JSON map;
//! * `--baseline <path>` — after running, compare against `<path>` and
//!   exit non-zero if any benchmark regressed beyond the threshold;
//! * `--fail-threshold <pct>` — regression tolerance for `--baseline`
//!   (default 15, i.e. fail at >15% slower).
//!
//! Raw nanoseconds are not comparable across hosts, so comparisons are
//! **calibration-normalized** when possible: if both the run and the
//! baseline contain a benchmark whose label starts with `calibration/`,
//! every time is first divided by its own run's calibration time. A
//! baseline recorded on a fast machine then gates a slow CI runner on
//! *relative* kernel cost (e.g. "blocked axpy vs the scalar reference")
//! instead of absolute wall-clock.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value barrier.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean seconds per iteration, filled by [`iter`](Self::iter).
    result_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Time the routine: brief warm-up, then batches until the target
    /// measurement time elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow until one batch
        // takes at least ~1 ms.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= batch_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement_time {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.result_ns = total.as_nanos() as f64 / iters as f64;
        self.iters_done = iters;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Every `(label, mean ns/iter)` measured by this process, in run
/// order. Drained by [`finalize`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn run_one(label: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        measurement_time,
        result_ns: 0.0,
        iters_done: 0,
    };
    f(&mut bencher);
    println!(
        "{label:<50} {:>12}/iter  ({} iters)",
        human_time(bencher.result_ns),
        bencher.iters_done
    );
    RESULTS
        .lock()
        .expect("results poisoned")
        .push((label.to_string(), bencher.result_ns));
}

/// Labels with this prefix are host-speed probes: they normalize the
/// baseline comparison and are never gated themselves.
pub const CALIBRATION_PREFIX: &str = "calibration/";

/// Serialize results as a flat JSON map (sorted by label; one entry per
/// line so the checked-in baseline diffs cleanly).
fn baseline_json(results: &[(String, f64)]) -> String {
    let mut sorted: Vec<&(String, f64)> = results.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n  \"schema\": \"tifl-criterion-baseline-v1\",\n");
    for (i, (label, ns)) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        out.push_str(&format!("  \"{label}\": {ns:.3}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parse the writer's line-oriented JSON back into `(label, ns)` pairs.
/// Non-numeric values (the schema tag) are skipped.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key.is_empty() || key == "schema" {
            continue;
        }
        if let Ok(ns) = value.trim().parse::<f64>() {
            out.push((key.to_string(), ns));
        }
    }
    out
}

fn lookup(results: &[(String, f64)], label: &str) -> Option<f64> {
    results.iter().find(|(l, _)| l == label).map(|&(_, ns)| ns)
}

/// The calibration divisor for a result set: the first `calibration/`
/// entry, provided it is also present in `other` (both sides must
/// normalize by the same probe for the ratios to be comparable).
fn calibration_of(results: &[(String, f64)], other: &[(String, f64)]) -> Option<(String, f64)> {
    results
        .iter()
        .find(|(l, ns)| {
            l.starts_with(CALIBRATION_PREFIX) && *ns > 0.0 && lookup(other, l).is_some()
        })
        .cloned()
}

/// Compare `current` against a saved baseline. Returns the list of
/// regressions (`label`, current-vs-baseline ratio) beyond
/// `1 + threshold_pct/100`. Benchmarks only present on one side are
/// reported to stdout but never fail the gate (so adding a bench does
/// not require regenerating the baseline atomically).
fn compare_against_baseline(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    threshold_pct: f64,
) -> Vec<(String, f64)> {
    let calibration = calibration_of(current, baseline);
    match &calibration {
        Some((label, _)) => println!("perf gate: normalizing by {label}"),
        None => println!("perf gate: no shared calibration bench; comparing raw ns"),
    }
    let norm = |results: &[(String, f64)], ns: f64| match &calibration {
        Some((label, _)) => ns / lookup(results, label).expect("calibration present"),
        None => ns,
    };
    let mut regressions = Vec::new();
    for (label, base_ns) in baseline {
        if label.starts_with(CALIBRATION_PREFIX) {
            continue;
        }
        let Some(cur_ns) = lookup(current, label) else {
            println!("perf gate: {label}: in baseline but not measured (skipped)");
            continue;
        };
        let ratio = norm(current, cur_ns) / norm(baseline, *base_ns);
        let verdict = if ratio > 1.0 + threshold_pct / 100.0 {
            regressions.push((label.clone(), ratio));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "perf gate: {label:<46} {:>10} vs {:>10}  ({:+6.1}%)  {verdict}",
            human_time(cur_ns),
            human_time(*base_ns),
            (ratio - 1.0) * 100.0,
        );
    }
    for (label, _) in current {
        if !label.starts_with(CALIBRATION_PREFIX) && lookup(baseline, label).is_none() {
            println!("perf gate: {label}: not in baseline (add with --save-baseline)");
        }
    }
    regressions
}

/// Process the perf-gate CLI after all groups ran: handle
/// `--save-baseline` / `--baseline` / `--fail-threshold`, exiting
/// non-zero on a regression. Called by `criterion_main!`; unknown
/// arguments (cargo's `--bench`, name filters) are ignored.
pub fn finalize() {
    let results = std::mem::take(&mut *RESULTS.lock().expect("results poisoned"));
    let mut save_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold_pct = 15.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--save-baseline" => save_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--fail-threshold" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fail-threshold takes a percentage");
            }
            _ => {}
        }
    }
    if let Some(path) = save_path {
        std::fs::write(&path, baseline_json(&results))
            .unwrap_or_else(|e| panic!("cannot write baseline {path}: {e}"));
        println!("perf gate: saved {} benchmarks to {path}", results.len());
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_baseline(&text);
        let regressions = compare_against_baseline(&results, &baseline, threshold_pct);
        if !regressions.is_empty() {
            eprintln!(
                "perf gate FAILED: {} benchmark(s) regressed more than {threshold_pct}%:",
                regressions.len()
            );
            for (label, ratio) in &regressions {
                eprintln!("  {label}: {:+.1}%", (ratio - 1.0) * 100.0);
            }
            std::process::exit(1);
        }
        println!(
            "perf gate: ok ({} benchmarks within {threshold_pct}%)",
            baseline.len()
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Upstream-parity no-op (sampling is time-based here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.measurement_time, &mut f);
        self
    }

    /// Run an ungrouped benchmark with an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.measurement_time, &mut |b| f(b, input));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream-parity no-op (sampling is time-based here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-benchmark measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement_time = t;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.measurement_time, &mut f);
        self
    }

    /// Run a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; for API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point. After every group runs, the perf-gate
/// CLI (`--save-baseline` / `--baseline`) is processed via
/// [`finalize`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("matmul", 64).to_string(), "matmul/64");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }

    #[test]
    fn baseline_json_round_trips() {
        let results = vec![
            ("hot/axpy".to_string(), 1234.5678),
            ("calibration/axpy_scalar".to_string(), 900.0),
        ];
        let parsed = parse_baseline(&baseline_json(&results));
        // Sorted by label, schema tag skipped, values kept to 3 decimals.
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "calibration/axpy_scalar");
        assert!((parsed[1].1 - 1234.568).abs() < 1e-9);
    }

    #[test]
    fn compare_normalizes_by_calibration() {
        // Current host is uniformly 2x slower than the baseline host:
        // with the shared calibration probe, nothing regresses.
        let baseline = vec![
            ("calibration/probe".to_string(), 100.0),
            ("hot/axpy".to_string(), 50.0),
        ];
        let current = vec![
            ("calibration/probe".to_string(), 200.0),
            ("hot/axpy".to_string(), 100.0),
        ];
        assert!(compare_against_baseline(&current, &baseline, 15.0).is_empty());
        // A genuine 50% relative slowdown still fails.
        let regressed = vec![
            ("calibration/probe".to_string(), 200.0),
            ("hot/axpy".to_string(), 150.0),
        ];
        let failures = compare_against_baseline(&regressed, &baseline, 15.0);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "hot/axpy");
    }

    #[test]
    fn compare_skips_one_sided_benchmarks() {
        let baseline = vec![("hot/gone".to_string(), 50.0)];
        let current = vec![("hot/new".to_string(), 50.0)];
        assert!(compare_against_baseline(&current, &baseline, 15.0).is_empty());
    }
}
