//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small parallel-iterator surface this workspace uses —
//! `par_iter().map().collect()`, `par_chunks_mut().enumerate().for_each()`
//! and `ThreadPoolBuilder::install` — on `std::thread::scope` instead of
//! a work-stealing pool. Work is split into one contiguous block per
//! thread, which is the right shape for the uniform per-item costs in
//! this workspace (per-client training, per-row GEMM).
//!
//! The active thread count is a thread-local so nested
//! `ThreadPool::install` calls behave like rayon's: code inside
//! `install` sees that pool's configured parallelism.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// The parallelism in effect (set by [`ThreadPool::install`], else the
/// machine default).
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Run `f(index, n_jobs)` for every job in `0..n_jobs` across the
/// active thread count. `f` receives disjoint job indices.
fn run_jobs<F>(n_jobs: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = current_num_threads().min(n_jobs).max(1);
    if threads <= 1 || n_jobs <= 1 {
        for j in 0..n_jobs {
            f(j);
        }
        return;
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let f = &f;
            // Blocks of contiguous jobs: thread t takes [start, end).
            let start = n_jobs * t / threads;
            let end = n_jobs * (t + 1) / threads;
            scope.spawn(move || {
                // Workers run nested parallel calls sequentially: the
                // split is one-level by design, and without this cap an
                // inner par_chunks_mut would spawn its own full thread
                // set per outer job (oversubscription), and
                // ThreadPool::install(1) would not serialize nested work.
                CURRENT_THREADS.with(|c| c.set(Some(1)));
                for j in start..end {
                    f(j);
                }
            });
        }
    });
}

/// Convenience re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator, ParallelSliceMut};
}

/// A scope for spawning heterogeneous tasks onto a shared work queue,
/// mirroring `rayon::scope`.
///
/// Tasks pushed via [`Scope::spawn`] land in one queue drained by
/// `current_num_threads()` worker threads; an idle worker takes the
/// next task the moment it finishes its current one, so unequal task
/// costs balance across workers (the property the real crate gets from
/// work stealing). One deliberate deviation from upstream: task
/// closures take no `&Scope` argument — nested spawning is not
/// supported, which is all this workspace needs.
pub struct Scope<'scope> {
    queue: std::sync::Mutex<std::collections::VecDeque<Box<dyn FnOnce() + Send + 'scope>>>,
    work_ready: std::sync::Condvar,
    closed: std::sync::atomic::AtomicBool,
}

impl<'scope> Scope<'scope> {
    /// Queue `task` for execution on one of the scope's workers.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'scope) {
        self.queue
            .lock()
            .expect("scope queue poisoned")
            .push_back(Box::new(task));
        self.work_ready.notify_one();
    }

    /// Worker loop: drain tasks until the scope closes and the queue is
    /// empty (`rayon::scope` semantics: every spawned task completes
    /// before `scope` returns).
    fn work(&self) {
        loop {
            let mut queue = self.queue.lock().expect("scope queue poisoned");
            let task = loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if self.closed.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                queue = self.work_ready.wait(queue).expect("scope queue poisoned");
            };
            drop(queue);
            task();
        }
    }
}

/// Run `f` with a task [`Scope`] backed by `current_num_threads()`
/// worker threads; returns once `f` and every spawned task finished.
///
/// `f` itself runs on the calling thread, so it can feed the scope and
/// concurrently consume results (e.g. over a channel) while workers
/// execute — the shape streaming executors need.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let threads = current_num_threads().max(1);
    let sc = Scope {
        queue: std::sync::Mutex::new(std::collections::VecDeque::new()),
        work_ready: std::sync::Condvar::new(),
        closed: std::sync::atomic::AtomicBool::new(false),
    };
    std::thread::scope(|s| {
        for _ in 0..threads {
            let sc = &sc;
            s.spawn(move || {
                // Same convention as `run_jobs`: nested parallel calls
                // inside a task run sequentially.
                CURRENT_THREADS.with(|c| c.set(Some(1)));
                sc.work();
            });
        }
        let result = f(&sc);
        // Set the flag *under the queue mutex*: a worker that just saw
        // `closed == false` still holds the lock until its `wait`
        // registers, so the store (and the notify that follows) cannot
        // slip into that window and strand it.
        {
            let _guard = sc.queue.lock().expect("scope queue poisoned");
            sc.closed.store(true, std::sync::atomic::Ordering::Release);
        }
        sc.work_ready.notify_all();
        result
    })
}

pub mod iter {
    //! Parallel iterator shims.

    use super::run_jobs;
    use std::sync::Mutex;

    /// Marker trait so generic bounds written against rayon still
    /// compile; the concrete adapters below carry the real methods.
    pub trait ParallelIterator {}

    /// `.par_iter()` on slices (and anything derefing to a slice).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Borrow as a parallel iterator.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    /// Borrowed parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        slice: &'a [T],
    }

    impl<T> ParallelIterator for ParIter<'_, T> {}

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Map each element (in parallel at collect time).
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }

        /// Copy out the elements.
        pub fn copied(self) -> ParMap<'a, T, fn(&'a T) -> T>
        where
            T: Copy + Send,
        {
            ParMap {
                slice: self.slice,
                f: |x: &'a T| *x,
            }
        }

        /// Parallel for-each.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync,
        {
            let slice = self.slice;
            run_jobs(slice.len(), |j| f(&slice[j]));
        }
    }

    /// Mapped parallel iterator over a slice.
    pub struct ParMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<T, F> ParallelIterator for ParMap<'_, T, F> {}

    impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
        /// Evaluate in parallel, preserving input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.slice.len();
            let mut out: Vec<Option<R>> = Vec::new();
            out.resize_with(n, || None);
            let cells = Mutex::new(&mut out);
            // Each job writes a distinct index; the mutex only guards
            // the Vec handle, contention is one lock per item. Good
            // enough for the coarse-grained work here (whole-client
            // training steps).
            run_jobs(n, |j| {
                let r = (self.f)(&self.slice[j]);
                let mut guard = cells.lock().expect("poisoned");
                guard[j] = Some(r);
            });
            out.into_iter().map(|slot| slot.expect("job ran")).collect()
        }

        /// Sum of mapped values.
        pub fn sum<S: std::iter::Sum<R>>(self) -> S {
            self.collect::<Vec<R>>().into_iter().sum()
        }
    }

    /// `.par_chunks_mut(n)` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into disjoint mutable chunks processed in parallel.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Parallel mutable-chunks adapter.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<T> ParallelIterator for ParChunksMut<'_, T> {}

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair each chunk with its index.
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate { inner: self }
        }

        /// Parallel for-each over chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }
    }

    /// Enumerated parallel mutable-chunks adapter.
    pub struct ParChunksMutEnumerate<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<T> ParallelIterator for ParChunksMutEnumerate<'_, T> {}

    impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
        /// Parallel for-each over `(index, chunk)` pairs.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            let chunks: Vec<(usize, &mut [T])> = self
                .inner
                .slice
                .chunks_mut(self.inner.chunk_size)
                .enumerate()
                .collect();
            // Hand each job its own &mut chunk. The UnsafeCell-free way:
            // wrap in Mutex<Vec<Option<..>>> and take() per job — each
            // index is touched exactly once.
            type Slot<'c, T> = std::sync::Mutex<Option<(usize, &'c mut [T])>>;
            let slots: Vec<Slot<'_, T>> = chunks
                .into_iter()
                .map(|c| std::sync::Mutex::new(Some(c)))
                .collect();
            run_jobs(slots.len(), |j| {
                let item = slots[j]
                    .lock()
                    .expect("poisoned")
                    .take()
                    .expect("job ran once");
                f(item);
            });
        }
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced; kept for
/// signature parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder (machine-default parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the thread count (0 means machine default, as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_threads),
        })
    }
}

/// A "pool": in this shim, a parallelism level applied for the duration
/// of [`install`](ThreadPool::install).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's parallelism active.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = f();
        CURRENT_THREADS.with(|c| c.set(prev));
        result
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u64; 97];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v += i as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v >= 1));
        assert_eq!(data[96], 10, "last chunk has index 9");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        let nested = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(nested.install(crate::current_num_threads), 1);
            assert_eq!(crate::current_num_threads(), 3);
        });
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_streams_results_while_feeding() {
        // The producer thread feeds tasks and drains results at the same
        // time — the executor shape used by tifl_core::exec.
        let (tx, rx) = std::sync::mpsc::channel();
        let sum: u64 = crate::scope(|s| {
            for i in 0..50u64 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i * 2).expect("receiver alive"));
            }
            drop(tx);
            (0..50).map(|_| rx.recv().expect("50 results")).sum()
        });
        assert_eq!(sum, 50 * 49);
    }

    #[test]
    fn scope_respects_installed_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let done = pool.install(|| {
            let flag = std::sync::atomic::AtomicBool::new(false);
            crate::scope(|s| {
                s.spawn(|| flag.store(true, std::sync::atomic::Ordering::Relaxed));
            });
            flag.load(std::sync::atomic::Ordering::Relaxed)
        });
        assert!(done);
    }

    #[test]
    fn single_thread_pool_gives_same_result() {
        let input: Vec<u64> = (0..100).collect();
        let par: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let seq: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * x).collect());
        assert_eq!(par, seq);
    }
}
