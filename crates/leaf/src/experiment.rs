//! The LEAF/FEMNIST experiment runner (§5.2.6, Fig. 9).

use crate::dataset::{build_femnist, LeafDataConfig};
use serde::{Deserialize, Serialize};
use tifl_core::policy::Policy;
use tifl_core::profiler::ProfilerConfig;
use tifl_core::runner::Experiment;
use tifl_core::scheduler::AdaptiveConfig;
use tifl_core::tiering::TieringConfig;
use tifl_fl::session::{AggregationMode, Session, SessionConfig, SessionOverrides};
use tifl_fl::{ClientConfig, TrainingReport};
use tifl_nn::models::ModelSpec;
use tifl_sim::latency::LatencyModelConfig;
use tifl_sim::{Cluster, ClusterConfig, GroupSpec};
use tifl_tensor::split_seed;

/// The full LEAF benchmark configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafExperiment {
    /// Data-generation parameters (182 writers by default).
    pub data: LeafDataConfig,
    /// Per-group CPU shares; clients are assigned to hardware uniformly
    /// at random (the paper's LEAF extension). Groups need not divide
    /// evenly — remainders spread over the first groups.
    pub cpu_profile: Vec<f64>,
    /// `|C|`: clients per round (paper: 10).
    pub clients_per_round: usize,
    /// Global rounds (paper: 2000).
    pub rounds: u64,
    /// Model (LEAF's FEMNIST CNN stand-in sized for the synthetic data).
    pub model: ModelSpec,
    /// Local training (LEAF default: SGD lr 0.004, batch 10, 1 epoch).
    pub client: ClientConfig,
    /// Latency model.
    pub latency: LatencyModelConfig,
    /// Evaluate every this many rounds.
    pub eval_every: u64,
    /// Tiering (paper: 5 tiers for LEAF).
    pub tiering: TieringConfig,
    /// Profiler settings.
    pub profiler: ProfilerConfig,
    /// Update-collection strategy.
    pub aggregation: AggregationMode,
    /// Root seed.
    pub seed: u64,
}

impl LeafExperiment {
    /// The paper's configuration: 182 clients, |C| = 10, 2000 rounds,
    /// 5 tiers, SGD lr 0.004.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            data: LeafDataConfig::default(),
            cpu_profile: tifl_sim::resource::profiles::CIFAR.to_vec(),
            clients_per_round: 10,
            rounds: 2000,
            model: ModelSpec::Mlp {
                input: 64,
                hidden: 128,
                classes: 62,
            },
            client: ClientConfig::paper_leaf(),
            latency: LatencyModelConfig {
                flops_per_cpu_sec: 5.0e6,
                jitter_sigma: 0.05,
                base_overhead_sec: 0.2,
            },
            eval_every: 20,
            tiering: TieringConfig::default(),
            profiler: ProfilerConfig {
                sync_rounds: 5,
                tmax_sec: 1000.0,
            },
            aggregation: AggregationMode::WaitAll,
            seed,
        }
    }

    /// Small configuration for tests: 30 clients, few rounds.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        let mut c = Self::paper(seed);
        c.data.num_clients = 30;
        c.data.median_samples = 40;
        c.data.min_samples = 10;
        c.data.global_test_per_class = 2;
        c.clients_per_round = 3;
        c.rounds = 10;
        c.eval_every = 2;
        c.model = ModelSpec::Mlp {
            input: 64,
            hidden: 32,
            classes: 62,
        };
        c.profiler.sync_rounds = 2;
        c
    }

    /// Build the simulated testbed: hardware groups spread over
    /// `num_clients` with uniform-random assignment.
    #[must_use]
    pub fn build_cluster(&self) -> Cluster {
        let n = self.data.num_clients;
        let g = self.cpu_profile.len();
        let groups: Vec<GroupSpec> = self
            .cpu_profile
            .iter()
            .enumerate()
            .map(|(i, &cpu_share)| GroupSpec {
                // Spread the remainder over the first `n % g` groups.
                count: n / g + usize::from(i < n % g),
                cpu_share,
            })
            .collect();
        let cfg = ClusterConfig {
            groups,
            bandwidth_bps: 1_000_000.0,
            latency: self.latency,
            shuffle_assignment: true,
            seed: split_seed(self.seed, 0xC1),
        };
        Cluster::new(&cfg)
    }

    /// Build a fresh training session.
    #[must_use]
    pub fn make_session(&self) -> Session {
        self.build_session(&SessionOverrides::default())
    }

    /// Run a static policy (vanilla bypasses tiering).
    #[deprecated(since = "0.2.0", note = "use `exp.runner().policy(policy).run()`")]
    #[must_use]
    pub fn run_policy(&self, policy: &Policy) -> TrainingReport {
        self.runner().policy(policy).run()
    }

    /// Run the adaptive policy.
    #[deprecated(since = "0.2.0", note = "use `exp.runner().adaptive(config).run()`")]
    #[must_use]
    pub fn run_adaptive(&self, config: Option<AdaptiveConfig>) -> TrainingReport {
        self.runner().adaptive(config).run()
    }
}

impl Experiment for LeafExperiment {
    fn seed(&self) -> u64 {
        self.seed
    }

    fn rounds(&self) -> u64 {
        self.rounds
    }

    fn num_clients(&self) -> usize {
        self.data.num_clients
    }

    fn profiler_config(&self) -> ProfilerConfig {
        self.profiler
    }

    fn tiering_config(&self) -> TieringConfig {
        self.tiering
    }

    fn build_session(&self, overrides: &SessionOverrides) -> Session {
        let fed = build_femnist(&self.data, split_seed(self.seed, 0xFED));
        let session_cfg = SessionConfig {
            model: self.model,
            client: self.client,
            clients_per_round: self.clients_per_round,
            rounds: self.rounds,
            eval_every: self.eval_every,
            tmax_sec: self.profiler.tmax_sec,
            aggregation: self.aggregation,
            comm: None,
            seed: split_seed(self.seed, 0x5E55),
        }
        .with_overrides(overrides);
        Session::new(fed, self.build_cluster(), session_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_covers_all_clients() {
        let e = LeafExperiment::tiny(0);
        let c = e.build_cluster();
        assert_eq!(c.num_devices(), 30);
    }

    #[test]
    fn paper_config_matches_section_526() {
        let e = LeafExperiment::paper(0);
        assert_eq!(e.data.num_clients, 182);
        assert_eq!(e.clients_per_round, 10);
        assert_eq!(e.rounds, 2000);
        assert_eq!(e.tiering.num_tiers, 5);
    }

    #[test]
    fn tiering_produces_five_tiers() {
        let e = LeafExperiment::tiny(1);
        let (assignment, result) = e.profile_and_tier();
        assert_eq!(assignment.num_tiers(), 5);
        assert_eq!(assignment.num_clients(), 30 - result.dropouts().len());
    }

    #[test]
    fn vanilla_and_tiered_policies_run() {
        let e = LeafExperiment::tiny(2);
        let mut runner = e.runner();
        let v = runner.vanilla().run();
        assert_eq!(v.rounds.len(), 10);
        let u = runner.policy(&Policy::uniform(5)).run();
        assert_eq!(u.rounds.len(), 10);
    }

    #[test]
    fn adaptive_runs_on_leaf() {
        let e = LeafExperiment::tiny(3);
        let r = e.runner().adaptive(None).run();
        assert_eq!(r.policy, "adaptive");
        assert_eq!(r.rounds.len(), 10);
    }

    #[test]
    fn fast_policy_beats_slow_on_time() {
        let e = LeafExperiment::tiny(4);
        let mut runner = e.runner();
        let fast = runner.policy(&Policy::fast(5)).run().total_time();
        let slow = runner.policy(&Policy::slow(5)).run().total_time();
        assert!(slow > fast, "slow {slow} vs fast {fast}");
    }
}
