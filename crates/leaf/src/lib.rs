//! LEAF-like FEMNIST federated benchmark (§5.2.6).
//!
//! LEAF's FEMNIST task partitions handwritten characters by *writer*:
//! 62 classes, inherently non-IID in both quantity (writers contribute
//! wildly different sample counts) and content (each writer's style and
//! class mix differ). The paper samples LEAF at rate 0.05, giving 182
//! clients, extends the framework with resource heterogeneity by
//! assigning hardware to clients uniformly at random, selects 10 clients
//! per round and trains 2000 rounds with LEAF's default SGD (lr 0.004,
//! batch 10).
//!
//! [`dataset`] generates the synthetic equivalent: per-writer power-law
//! sample counts, per-writer class subsets with skewed proportions and
//! per-writer style offsets (the feature skew). [`experiment`] is the
//! runner mirroring `tifl-core`'s harness for this benchmark.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod experiment;

pub use dataset::{build_femnist, LeafDataConfig};
pub use experiment::LeafExperiment;
