//! Synthetic FEMNIST-like federated data (LEAF's joint heterogeneity).

use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rand_distr::LogNormal;
use serde::{Deserialize, Serialize};
use tifl_data::dataset::Dataset;
use tifl_data::federated::{ClientData, FederatedDataset};
use tifl_data::synth::{Generator, SynthFamily, SynthSpec};
use tifl_tensor::{seed_rng, split_seed};

/// FEMNIST-like generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafDataConfig {
    /// Number of writers/clients (paper: 182 at LEAF sampling 0.05).
    pub num_clients: usize,
    /// Median samples per writer (counts are lognormal around this).
    pub median_samples: usize,
    /// Lognormal sigma of the per-writer sample count (controls the
    /// quantity heterogeneity; LEAF's FEMNIST is heavily skewed).
    pub quantity_sigma: f64,
    /// Minimum samples per writer after clipping.
    pub min_samples: usize,
    /// Classes each writer actually uses (uniformly drawn subset size
    /// range; FEMNIST writers cover only part of the 62-class alphabet).
    pub classes_per_writer: (usize, usize),
    /// Holdout fraction per writer.
    pub test_fraction: f64,
    /// Samples per class in the balanced global test set.
    pub global_test_per_class: usize,
}

impl Default for LeafDataConfig {
    fn default() -> Self {
        Self {
            num_clients: 182,
            median_samples: 100,
            quantity_sigma: 0.6,
            min_samples: 20,
            classes_per_writer: (10, 40),
            test_fraction: 0.1,
            global_test_per_class: 8,
        }
    }
}

/// Generate the FEMNIST-like federated dataset.
///
/// Per writer `w`:
/// * sample count `n_w ~ LogNormal(ln median, sigma)`, clipped below;
/// * a class subset of size `U(classes_per_writer)` with Zipf-flavoured
///   proportions (a writer's most-written characters dominate);
/// * a style offset added to every sample (feature skew);
/// * labels drawn from the writer's class distribution.
///
/// # Panics
/// Panics if `num_clients == 0`.
#[must_use]
pub fn build_femnist(config: &LeafDataConfig, seed: u64) -> FederatedDataset {
    assert!(config.num_clients > 0, "need at least one client");
    let spec = SynthSpec::family(SynthFamily::Femnist);
    let gen = Generator::new(spec, split_seed(seed, 0xFE31));
    let classes = spec.classes;

    let count_dist = LogNormal::new((config.median_samples as f64).ln(), config.quantity_sigma)
        .expect("valid lognormal");

    let clients: Vec<ClientData> = (0..config.num_clients)
        .map(|w| {
            let mut rng = seed_rng(split_seed(seed, 0x11F ^ w as u64));

            // Quantity heterogeneity.
            let n = (count_dist.sample(&mut rng) as usize).max(config.min_samples);

            // Class subset + skewed proportions.
            let (lo, hi) = config.classes_per_writer;
            let k = rng.gen_range(lo..=hi.min(classes));
            let mut all: Vec<usize> = (0..classes).collect();
            all.shuffle(&mut rng);
            let subset = &all[..k];
            // Zipf-like weights: the j-th favourite class has weight
            // 1/(j+1).
            let weights: Vec<f64> = (0..k).map(|j| 1.0 / (j + 1) as f64).collect();
            let dist = WeightedIndex::new(&weights).expect("valid weights");

            let labels: Vec<usize> = (0..n).map(|_| subset[dist.sample(&mut rng)]).collect();
            let n_test = ((n as f64 * config.test_fraction).round() as usize).max(1);
            let test_labels: Vec<usize> =
                (0..n_test).map(|_| subset[dist.sample(&mut rng)]).collect();

            // Feature skew: per-writer style.
            let style = gen.draw_style(w as u64);
            let train = gen.generate_with_labels_and_style(
                &labels,
                Some(&style),
                split_seed(seed, 2 * w as u64),
            );
            let test = gen.generate_with_labels_and_style(
                &test_labels,
                Some(&style),
                split_seed(seed, 2 * w as u64 + 1),
            );
            ClientData { train, test }
        })
        .collect();

    let global_test: Dataset =
        gen.generate_balanced(config.global_test_per_class, split_seed(seed, 0x6E57));

    FederatedDataset {
        clients,
        global_test,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LeafDataConfig {
        LeafDataConfig {
            num_clients: 30,
            global_test_per_class: 2,
            ..Default::default()
        }
    }

    #[test]
    fn builds_requested_clients() {
        let fed = build_femnist(&small(), 0);
        assert_eq!(fed.num_clients(), 30);
        assert_eq!(fed.classes, 62);
        assert_eq!(fed.global_test.len(), 124);
    }

    #[test]
    fn quantity_is_heterogeneous() {
        let fed = build_femnist(&small(), 1);
        let sizes = fed.train_sizes();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(
            max as f64 / min as f64 > 2.0,
            "expected >2x quantity spread, got {min}..{max}"
        );
        assert!(sizes.iter().all(|&s| s >= 20));
    }

    #[test]
    fn class_content_is_non_iid() {
        let fed = build_femnist(&small(), 2);
        for c in fed.clients.iter().take(5) {
            let distinct = c.train.distinct_classes();
            assert!(
                distinct <= 40,
                "writer covers {distinct} classes, expected a subset"
            );
        }
        // Different writers favour different classes.
        let top = |d: &Dataset| {
            d.class_counts()
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i)
                .unwrap()
        };
        let tops: Vec<usize> = fed.clients.iter().take(10).map(|c| top(&c.train)).collect();
        let mut uniq = tops.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 3, "writers share favourite classes: {tops:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_femnist(&small(), 3);
        let b = build_femnist(&small(), 3);
        assert_eq!(a.train_sizes(), b.train_sizes());
        assert_eq!(a.clients[7].train, b.clients[7].train);
    }

    #[test]
    fn paper_scale_config() {
        let cfg = LeafDataConfig::default();
        assert_eq!(cfg.num_clients, 182);
        let fed = build_femnist(&cfg, 4);
        assert_eq!(fed.num_clients(), 182);
    }
}
