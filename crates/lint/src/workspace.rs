//! Workspace discovery and the whole-repo lint driver.
//!
//! The scan covers the facade's `src/` plus every `crates/*/src/`
//! tree, in sorted (byte-order) path order so diagnostics — and the
//! JSON report CI archives — are byte-deterministic. Vendored shims
//! (`vendor/`), fixtures, integration tests and build output are
//! deliberately outside the walk: the rules encode contracts for the
//! library code this workspace owns.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::rules::{lint_source, FileContext, Finding};

/// Aggregated result of linting the whole workspace.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Unwaived findings across all files, in (file, line, rule) order.
    pub findings: Vec<Finding>,
    /// Total findings suppressed by valid inline waivers.
    pub waived: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no unwaived finding remains.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Every workspace-owned `.rs` source file, workspace-relative and
/// sorted for deterministic output.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut src_dirs = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        src_dirs.extend(members.into_iter().map(|m| m.join("src")));
    }

    let mut files = Vec::new();
    for dir in src_dirs {
        if dir.is_dir() {
            walk_rs(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Derive a file's lint context from its workspace-relative path.
#[must_use]
pub fn context_for(rel: &Path) -> FileContext {
    let rel_str = rel_string(rel);
    let crate_name = match rel.components().nth(1) {
        Some(c) if rel_str.starts_with("crates/") => c.as_os_str().to_string_lossy().into_owned(),
        _ => "tifl".to_string(), // the facade's own src/
    };
    let is_bin = rel_str.contains("/bin/") || rel_str.ends_with("main.rs");
    FileContext {
        crate_name,
        rel_path: rel_str,
        is_bin,
    }
}

/// Forward-slashed path string (diagnostics stay stable across hosts).
fn rel_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let sources = collect_sources(root)?;
    let mut findings = Vec::new();
    let mut waived = 0usize;
    let files_scanned = sources.len();
    for rel in sources {
        let src = fs::read_to_string(root.join(&rel))?;
        let ctx = context_for(&rel);
        let mut lint = lint_source(&src, &ctx);
        findings.append(&mut lint.findings);
        waived += lint.waived;
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(Report {
        findings,
        waived,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_for_crate_and_facade_paths() {
        let c = context_for(Path::new("crates/core/src/exec/engine.rs"));
        assert_eq!(c.crate_name, "core");
        assert!(!c.is_bin);

        let f = context_for(Path::new("src/lib.rs"));
        assert_eq!(f.crate_name, "tifl");
        assert!(!f.is_bin);

        let b = context_for(Path::new("src/bin/tifl.rs"));
        assert_eq!(b.crate_name, "tifl");
        assert!(b.is_bin);
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("lint crate lives inside the workspace");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
