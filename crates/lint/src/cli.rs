//! Command-line driver shared by the `tifl-lint` binary and the
//! `tifl lint` facade subcommand.
//!
//! All output goes through caller-supplied [`std::io::Write`] sinks
//! ([`run_with`]); [`run`] is the thin process-facing wrapper that
//! binds them to stdout/stderr. That keeps this library clean under
//! its own `print-in-library` rule and makes the driver testable
//! without capturing process stdio.

use std::env;
use std::io::Write;
use std::path::PathBuf;

use crate::workspace::{find_workspace_root, lint_workspace, Report};

const USAGE: &str = "\
usage: tifl-lint [--deny] [--format human|json] [path]

Static determinism & robustness analysis over the workspace source.

  --deny           exit non-zero if any unwaived finding remains
  --format FORMAT  `human` (default, file:line diagnostics) or `json`
  path             workspace root (default: walk up from the cwd)

Rules and waiver syntax: crates/lint/RULES.md";

enum Format {
    Human,
    Json,
}

/// Run the linter with CLI-style `args` (without the program name),
/// writing to the process's stdout/stderr. Returns the process exit
/// code: 0 clean (or findings without `--deny`), 1 findings under
/// `--deny`, 2 usage or I/O error.
#[must_use]
pub fn run(args: &[String]) -> u8 {
    run_with(
        args,
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
    )
}

/// [`run`] against explicit output sinks: diagnostics and reports to
/// `out`, usage and driver errors to `err`. Sink write failures are
/// ignored (a closed pipe must not turn a lint verdict into a panic).
#[must_use]
pub fn run_with(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> u8 {
    let mut deny = false;
    let mut format = Format::Human;
    let mut root_arg: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    let _ = writeln!(err, "tifl-lint: bad --format {other:?}\n{USAGE}");
                    return 2;
                }
            },
            "--help" | "-h" => {
                let _ = writeln!(out, "{USAGE}");
                return 0;
            }
            _ if arg.starts_with('-') => {
                let _ = writeln!(err, "tifl-lint: unknown flag `{arg}`\n{USAGE}");
                return 2;
            }
            path => {
                if root_arg.replace(PathBuf::from(path)).is_some() {
                    let _ = writeln!(err, "tifl-lint: more than one path given\n{USAGE}");
                    return 2;
                }
            }
        }
    }

    let root = match root_arg {
        Some(p) => p,
        None => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    let _ = writeln!(err, "tifl-lint: cannot determine cwd: {e}");
                    return 2;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    let _ = writeln!(
                        err,
                        "tifl-lint: no `[workspace]` Cargo.toml above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(err, "tifl-lint: failed to scan {}: {e}", root.display());
            return 2;
        }
    };

    match format {
        Format::Human => write_human(&report, out),
        Format::Json => match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
            }
            Err(e) => {
                let _ = writeln!(err, "tifl-lint: cannot serialize report: {e}");
                return 2;
            }
        },
    }

    if deny && !report.is_clean() {
        1
    } else {
        0
    }
}

fn write_human(report: &Report, out: &mut dyn Write) {
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
    }
    let status = if report.is_clean() { "clean" } else { "FAILED" };
    let _ = writeln!(
        out,
        "tifl-lint: {status} — {} finding(s), {} waived, {} files scanned",
        report.findings.len(),
        report.waived,
        report.files_scanned
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> (u8, String, String) {
        let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_with(&args, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).expect("utf-8 out"),
            String::from_utf8(err).expect("utf-8 err"),
        )
    }

    #[test]
    fn help_prints_usage_to_out() {
        let (code, out, err) = run_str(&["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("usage: tifl-lint"));
        assert!(err.is_empty());
    }

    #[test]
    fn bad_flags_report_to_err_with_code_2() {
        let (code, out, err) = run_str(&["--nope"]);
        assert_eq!(code, 2);
        assert!(out.is_empty());
        assert!(err.contains("unknown flag"));
        let (code, _, err) = run_str(&["--format", "xml"]);
        assert_eq!(code, 2);
        assert!(err.contains("bad --format"));
        let (code, _, err) = run_str(&["a", "b"]);
        assert_eq!(code, 2);
        assert!(err.contains("more than one path"));
    }

    #[test]
    fn empty_root_reports_clean_through_the_out_sink() {
        let dir = std::env::temp_dir().join(format!("tifl-lint-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let root = dir.to_str().expect("utf-8 path");
        let (code, out, err) = run_str(&[root, "--deny"]);
        assert_eq!(code, 0);
        assert!(out.contains("clean — 0 finding(s)"), "{out}");
        assert!(err.is_empty());
        let (code, out, _) = run_str(&[root, "--format", "json"]);
        assert_eq!(code, 0);
        assert!(out.contains("\"files_scanned\": 0"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
