//! Command-line driver shared by the `tifl-lint` binary and the
//! `tifl lint` facade subcommand.

use std::env;
use std::path::PathBuf;

use crate::workspace::{find_workspace_root, lint_workspace, Report};

const USAGE: &str = "\
usage: tifl-lint [--deny] [--format human|json] [path]

Static determinism & robustness analysis over the workspace source.

  --deny           exit non-zero if any unwaived finding remains
  --format FORMAT  `human` (default, file:line diagnostics) or `json`
  path             workspace root (default: walk up from the cwd)

Rules and waiver syntax: crates/lint/RULES.md";

enum Format {
    Human,
    Json,
}

/// Run the linter with CLI-style `args` (without the program name).
/// Returns the process exit code: 0 clean (or findings without
/// `--deny`), 1 findings under `--deny`, 2 usage or I/O error.
#[must_use]
pub fn run(args: &[String]) -> u8 {
    let mut deny = false;
    let mut format = Format::Human;
    let mut root_arg: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("tifl-lint: bad --format {other:?}\n{USAGE}");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            _ if arg.starts_with('-') => {
                eprintln!("tifl-lint: unknown flag `{arg}`\n{USAGE}");
                return 2;
            }
            path => {
                if root_arg.replace(PathBuf::from(path)).is_some() {
                    eprintln!("tifl-lint: more than one path given\n{USAGE}");
                    return 2;
                }
            }
        }
    }

    let root = match root_arg {
        Some(p) => p,
        None => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("tifl-lint: cannot determine cwd: {e}");
                    return 2;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "tifl-lint: no `[workspace]` Cargo.toml above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tifl-lint: failed to scan {}: {e}", root.display());
            return 2;
        }
    };

    match format {
        Format::Human => print_human(&report),
        Format::Json => match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("tifl-lint: cannot serialize report: {e}");
                return 2;
            }
        },
    }

    if deny && !report.is_clean() {
        1
    } else {
        0
    }
}

fn print_human(report: &Report) {
    for f in &report.findings {
        println!("{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
    }
    let status = if report.is_clean() { "clean" } else { "FAILED" };
    println!(
        "tifl-lint: {status} — {} finding(s), {} waived, {} files scanned",
        report.findings.len(),
        report.waived,
        report.files_scanned
    );
}
