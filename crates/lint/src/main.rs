//! `tifl-lint` standalone binary (CI entry point).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(tifl_lint::cli::run(&args))
}
