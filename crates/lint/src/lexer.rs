//! A small, panic-free Rust lexer.
//!
//! The rule engine does not need a parser — every invariant `tifl-lint`
//! enforces is visible in the token stream — but it absolutely needs
//! tokens, not text: `HashMap` inside a doc comment, a string literal
//! or a `'H'` char literal must never trigger a finding. This lexer
//! classifies exactly that much:
//!
//! * line (`//`) and nested block (`/* */`) comments, kept as tokens
//!   because waiver annotations and `// SAFETY:` contracts live there;
//! * string likes: `"…"` with escapes, raw strings `r"…"`/`r#"…"#`
//!   (any hash depth), byte/C-string prefixes (`b`, `br`, `c`, `cr`);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\n'`, `'\u{1F600}'`);
//! * identifiers/keywords (raw identifiers `r#mod` keep their prefix so
//!   they can never be confused with the keyword), numbers, and
//!   single-char punctuation.
//!
//! Malformed input never panics: unterminated literals and comments
//! extend to end-of-file and everything else falls through to a
//! punctuation token. This is property-tested on arbitrary byte soup
//! (`tests/lexer_props.rs`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident,
    /// A lifetime such as `'a` (no trailing quote).
    Lifetime,
    /// Numeric literal.
    Number,
    /// Any string-like literal (plain, raw, byte, C), quotes included.
    Str,
    /// A char or byte-char literal, quotes included.
    Char,
    /// One punctuation character.
    Punct,
    /// A `//` or `/* */` comment, markers included.
    Comment,
}

/// One lexed token with its 1-based source line (block comments and
/// multi-line strings report the line they start on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Raw text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for `Punct` tokens matching `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for `Ident` tokens with exactly this text.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Cursor over the source characters; every accessor is bounds-checked
/// so no input can panic the lexer.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, counting newlines.
    fn bump(&mut self) {
        if let Some('\n') = self.peek(0) {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn text_from(&self, start: usize) -> String {
        self.chars
            .get(start..self.pos)
            .unwrap_or_default()
            .iter()
            .collect()
    }
}

/// Lex `src` into tokens. Whitespace is dropped; comments are kept.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            while cur.peek(0).is_some_and(|c| c != '\n') {
                cur.bump();
            }
            out.push(Token {
                kind: TokenKind::Comment,
                text: cur.text_from(start),
                line,
            });
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur);
            out.push(Token {
                kind: TokenKind::Comment,
                text: cur.text_from(start),
                line,
            });
        } else if c == '"' {
            lex_plain_string(&mut cur);
            out.push(Token {
                kind: TokenKind::Str,
                text: cur.text_from(start),
                line,
            });
        } else if c == '\'' {
            let kind = lex_quote(&mut cur);
            out.push(Token {
                kind,
                text: cur.text_from(start),
                line,
            });
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            out.push(Token {
                kind: TokenKind::Number,
                text: cur.text_from(start),
                line,
            });
        } else if is_ident_start(c) {
            let kind = lex_ident_or_prefixed(&mut cur);
            out.push(Token {
                kind,
                text: cur.text_from(start),
                line,
            });
        } else {
            cur.bump();
            out.push(Token {
                kind: TokenKind::Punct,
                text: cur.text_from(start),
                line,
            });
        }
    }
    out
}

/// `/* … */` with nesting; unterminated comments run to end-of-file.
fn lex_block_comment(cur: &mut Cursor) {
    cur.bump_n(2);
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            (Some(_), _) => cur.bump(),
            (None, _) => break,
        }
    }
}

/// A `"…"` string with `\` escapes; unterminated runs to end-of-file.
fn lex_plain_string(cur: &mut Cursor) {
    cur.bump();
    loop {
        match cur.peek(0) {
            Some('\\') => cur.bump_n(2),
            Some('"') => {
                cur.bump();
                break;
            }
            Some(_) => cur.bump(),
            None => break,
        }
    }
}

/// A raw string starting at `r`'s hashes: `#…#"…"#…#` with `hashes`
/// already counted. The cursor sits on the opening quote.
fn lex_raw_string(cur: &mut Cursor, hashes: usize) {
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            Some('"') if (1..=hashes).all(|k| cur.peek(k) == Some('#')) => {
                cur.bump_n(1 + hashes);
                break;
            }
            Some(_) => cur.bump(),
            None => break,
        }
    }
}

/// Disambiguate `'a'` (char) from `'a` (lifetime). The cursor sits on
/// the opening quote.
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    match cur.peek(1) {
        // Escaped char literal: quote, backslash, the escaped char
        // itself (so `'\''` cannot close early), then scan to the
        // closing quote (covers multi-char escapes like `'\u{1F600}'`).
        Some('\\') => {
            cur.bump_n(3);
            loop {
                match cur.peek(0) {
                    Some('\\') => cur.bump_n(2),
                    Some('\'') => {
                        cur.bump();
                        break;
                    }
                    Some('\n') | None => break,
                    Some(_) => cur.bump(),
                }
            }
            TokenKind::Char
        }
        Some(c) if is_ident_continue(c) => {
            // Scan the identifier-shaped run after the quote; a closing
            // quote right after makes it a char literal, otherwise it is
            // a lifetime.
            let mut k = 1;
            while cur.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if cur.peek(k) == Some('\'') {
                cur.bump_n(k + 1);
                TokenKind::Char
            } else {
                cur.bump_n(k);
                TokenKind::Lifetime
            }
        }
        // Non-identifier char literal such as '(' or '\u{...}' handled
        // above; ''' and a lone trailing quote degrade to punctuation.
        Some(c) if c != '\'' && cur.peek(2) == Some('\'') => {
            cur.bump_n(3);
            TokenKind::Char
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// Numbers: enough structure to never split `1.5`/`0x1f`/`1_000` and
/// never swallow `..` (so `0..10` lexes as number, punct, punct,
/// number). Suffixes and exponents ride along as alphanumerics.
fn lex_number(cur: &mut Cursor) {
    cur.bump();
    loop {
        match cur.peek(0) {
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => cur.bump(),
            Some('.') if cur.peek(1).is_some_and(|c| c.is_ascii_digit()) => cur.bump(),
            _ => break,
        }
    }
}

/// An identifier, or a string-prefix identifier (`r`, `b`, `br`, `c`,
/// `cr`) fused with the literal it prefixes, or a raw identifier.
fn lex_ident_or_prefixed(cur: &mut Cursor) -> TokenKind {
    let start = cur.pos;
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    let ident = cur.text_from(start);
    let is_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
    match cur.peek(0) {
        // r"…" / b"…" / …
        Some('"') if is_prefix => {
            if ident.starts_with('r') || ident.ends_with('r') {
                lex_raw_string(cur, 0);
            } else {
                lex_plain_string(cur);
            }
            TokenKind::Str
        }
        // r#"…"# (any hash depth) — or a raw identifier r#foo.
        Some('#') if is_prefix => {
            let mut hashes = 0;
            while cur.peek(hashes).is_some_and(|c| c == '#') {
                hashes += 1;
            }
            match cur.peek(hashes) {
                Some('"') => {
                    cur.bump_n(hashes);
                    lex_raw_string(cur, hashes);
                    TokenKind::Str
                }
                Some(c) if ident == "r" && hashes == 1 && is_ident_start(c) => {
                    cur.bump(); // the '#'
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    TokenKind::Ident
                }
                _ => TokenKind::Ident,
            }
        }
        // b'x' byte-char literal.
        Some('\'') if ident == "b" => {
            let kind = lex_quote(cur);
            if kind == TokenKind::Char {
                TokenKind::Char
            } else {
                // `b` followed by a lifetime — keep them separate; the
                // quote token was already consumed as part of this one,
                // which is fine for rule purposes.
                TokenKind::Ident
            }
        }
        _ => TokenKind::Ident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = y.unwrap();");
        assert_eq!(
            toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Punct,
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"a "HashMap::unwrap() // not a comment" b"#);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert!(toks[0].1 == "a" && toks[2].1 == "b");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"x r#"inner " quote"# y"##);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].1, "y");
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = kinds("code // SAFETY: fine\nmore /* block\nstill */ done");
        assert_eq!(toks[1].0, TokenKind::Comment);
        assert!(toks[1].1.contains("SAFETY"));
        assert_eq!(toks[3].0, TokenKind::Comment);
        assert_eq!(toks[4].1, "done");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still-outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::Comment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lex("fn f<'a>(x: &'a str) {}")
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn unicode_escape_char_literal() {
        let toks = kinds("let c = '\\u{1F600}'; done");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("done"));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        let toks = kinds("mod x; r#mod y");
        // `r#mod` must not produce a bare `mod` ident token.
        let mods: Vec<_> = toks.iter().filter(|(_, t)| t == "mod").collect();
        assert_eq!(mods.len(), 1);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#mod"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("0..10 1.5 0x1f 1_000u64");
        let numbers: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(numbers, vec!["0", "10", "1.5", "0x1f", "1_000u64"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("a\n\"two\nline string\"\nb /* c\nd */ e");
        let by_text: Vec<(u32, &str)> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.text.as_str()))
            .collect();
        assert_eq!(by_text, vec![(1, "a"), (4, "b"), (5, "e")]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in [
            "\"never closed",
            "/* never closed",
            "r#\"nope",
            "'",
            "b'",
            "1.",
            "'\\",
        ] {
            let _ = lex(src);
        }
    }
}
