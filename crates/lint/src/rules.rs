//! The rule engine: scope tracking, waiver handling, and the seven
//! determinism & robustness rules.
//!
//! Rules operate on the token stream from [`crate::lexer`], annotated
//! with two pieces of scope: the inline **module path** (`mod simd {`
//! nesting) and whether the token sits inside **test code** (an item
//! under `#[cfg(test)]` or `#[test]`). Test code is exempt from every
//! rule — tests may hash, panic and measure as they please.
//!
//! Findings are suppressed only by an inline waiver:
//!
//! ```text
//! // tifl-lint: allow(<rule>[, <rule>…]) — <justification>
//! ```
//!
//! placed on the offending line (trailing) or the line above (leading).
//! A waiver with an unknown rule name or without a justification is
//! itself a finding (`waiver-syntax`), so every suppression stays a
//! reviewed, self-documenting decision.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use serde::Serialize;

use crate::lexer::{lex, Token, TokenKind};

/// Names of the seven lintable rules, in severity-neutral rule order.
pub const RULE_NAMES: [&str; 7] = [
    "nondet-iteration",
    "wall-clock-in-core",
    "unseeded-rng",
    "panic-in-library",
    "print-in-library",
    "unsafe-needs-safety-comment",
    "float-reduce-order",
];

/// Rule name reported for malformed waiver annotations (not waivable).
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Crates whose state must be iteration-order deterministic
/// (`nondet-iteration` scope): the engine, the FL substrate, the
/// comm subsystem, the simulator and the tensor kernels.
const DETERMINISM_CRATES: [&str; 5] = ["comm", "core", "fl", "sim", "tensor"];

/// The one crate allowed to read the host wall clock (its whole point
/// is measuring it) and to panic freely (bench harness code).
const BENCH_CRATE: &str = "bench";

/// The one crate allowed to contain `unsafe` — and only under a
/// `// SAFETY:` contract.
const UNSAFE_CRATE: &str = "tensor";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (the comment usually annotates the statement, not the keyword).
const SAFETY_WINDOW: u32 = 5;

/// Where a linted file lives — everything rule scoping needs.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`core`, `fl`, …; the facade is `tifl`).
    pub crate_name: String,
    /// Workspace-relative path, used verbatim in diagnostics.
    pub rel_path: String,
    /// True for binary targets (`src/bin/**`, `main.rs`): bins own
    /// their process and may panic on bad input.
    pub is_bin: bool,
}

/// One diagnostic: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`] or [`WAIVER_SYNTAX`]).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Inline module path at the finding (`""` at file top level).
    pub module: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// The result of linting one file.
#[derive(Debug, Clone)]
pub struct FileLint {
    /// Unwaived findings, ordered by line then rule.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by valid waivers.
    pub waived: usize,
}

/// Lint one file's source under the given context.
#[must_use]
pub fn lint_source(src: &str, ctx: &FileContext) -> FileLint {
    let tokens = lex(src);
    let (waivers, mut waiver_findings) = collect_waivers(&tokens, ctx);
    let safety_lines = safety_comment_lines(&tokens);
    let annotated = annotate_scopes(&tokens);
    let raw = run_rules(&tokens, &annotated, ctx, &safety_lines);

    let mut findings = Vec::new();
    let mut waived = 0usize;
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for f in raw {
        if !seen.insert((f.line, f.rule.clone())) {
            continue; // one diagnostic per rule per line
        }
        if waivers.get(&f.line).is_some_and(|rs| rs.contains(&f.rule)) {
            waived += 1;
        } else {
            findings.push(f);
        }
    }
    findings.append(&mut waiver_findings);
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    FileLint { findings, waived }
}

// -- scope tracking ---------------------------------------------------------

/// Scope annotation for one non-comment token.
struct Scoped {
    /// Index into the full token vec.
    tok: usize,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    in_test: bool,
    /// Inline module path (`"simd"`, `"a::b"`, `""` at top level).
    module: Rc<str>,
}

/// Walk the token stream tracking brace scopes, inline `mod` names and
/// test attributes. `#[cfg(test)]`/`#[test]` (or any `cfg` mentioning
/// `test`) marks the next braced item as test scope; `;` before the
/// brace cancels the mark (`mod tests;` spills into a file this pass
/// cannot see — out-of-line test modules are not supported and should
/// stay inline, as the workspace's are).
fn annotate_scopes(tokens: &[Token]) -> Vec<Scoped> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();

    // (is_test, owns_module_name) per open brace.
    let mut frames: Vec<(bool, bool)> = Vec::new();
    let mut mod_stack: Vec<String> = Vec::new();
    let mut cur_path: Rc<str> = Rc::from("");
    let mut pending_test = false;
    let mut pending_mod: Option<String> = None;
    let mut out = Vec::with_capacity(code.len());

    let mut k = 0;
    while k < code.len() {
        let i = code[k];
        let t = &tokens[i];
        let in_test = frames.iter().any(|f| f.0);

        // Attributes: scan `#[…]` / `#![…]` as one unit so their
        // bracket tokens cannot disturb scope state.
        if t.is_punct('#') {
            let mut j = k + 1;
            let inner = code.get(j).is_some_and(|&ci| tokens[ci].is_punct('!'));
            if inner {
                j += 1;
            }
            if code.get(j).is_some_and(|&ci| tokens[ci].is_punct('[')) {
                let (end, idents) = scan_attr(tokens, &code, j);
                if !inner && is_test_attr(&idents) {
                    pending_test = true;
                }
                for &ci in code.get(k..=end).unwrap_or_default() {
                    out.push(Scoped {
                        tok: ci,
                        in_test,
                        module: Rc::clone(&cur_path),
                    });
                }
                k = end + 1;
                continue;
            }
        }

        if t.is_ident("mod") {
            if let Some(&ni) = code.get(k + 1) {
                if tokens[ni].kind == TokenKind::Ident {
                    pending_mod = Some(tokens[ni].text.clone());
                }
            }
        } else if t.is_punct('{') {
            let test = in_test || pending_test;
            let named = pending_mod.is_some();
            if let Some(m) = pending_mod.take() {
                mod_stack.push(m);
                cur_path = Rc::from(mod_stack.join("::"));
            }
            frames.push((test, named));
            pending_test = false;
        } else if t.is_punct('}') {
            if let Some((_, named)) = frames.pop() {
                if named {
                    mod_stack.pop();
                    cur_path = Rc::from(mod_stack.join("::"));
                }
            }
        } else if t.is_punct(';') {
            pending_test = false;
            pending_mod = None;
        }

        out.push(Scoped {
            tok: i,
            in_test: frames.iter().any(|f| f.0),
            module: Rc::clone(&cur_path),
        });
        k += 1;
    }
    out
}

/// Scan an attribute's bracketed body starting at the `[` code index;
/// returns the code index of the matching `]` (or the last token) and
/// the identifiers inside.
fn scan_attr(tokens: &[Token], code: &[usize], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while let Some(&ci) = code.get(j) {
        let t = &tokens[ci];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return (j, idents);
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (code.len().saturating_sub(1), idents)
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not
/// `#[cfg_attr(test, …)]`, which does not gate compilation to tests.
fn is_test_attr(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") => idents.len() == 1,
        Some("cfg") => idents.iter().any(|i| i == "test"),
        _ => false,
    }
}

// -- waivers ----------------------------------------------------------------

/// Parse every `tifl-lint:` comment. Returns the per-line waived-rule
/// map plus findings for malformed annotations.
fn collect_waivers(
    tokens: &[Token],
    ctx: &FileContext,
) -> (BTreeMap<u32, BTreeSet<String>>, Vec<Finding>) {
    // Line of the next non-comment token at-or-after each index, for
    // targeting leading waiver comments.
    let mut next_code_line = vec![0u32; tokens.len() + 1];
    for i in (0..tokens.len()).rev() {
        next_code_line[i] = if tokens[i].kind == TokenKind::Comment {
            next_code_line[i + 1]
        } else {
            tokens[i].line
        };
    }

    let mut waivers: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut findings = Vec::new();
    let mut last_code_line = 0u32;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Comment {
            last_code_line = t.line;
            continue;
        }
        if !t.text.contains("tifl-lint") || is_doc_comment(&t.text) {
            // Doc comments *describe* the waiver syntax (as this
            // crate's own docs do); only plain comments waive.
            continue;
        }
        let target = if t.line == last_code_line {
            t.line // trailing comment waives its own line
        } else if next_code_line[i + 1] > 0 {
            next_code_line[i + 1] // leading comment waives the next code line
        } else {
            t.line
        };
        match parse_waiver(&t.text) {
            Ok(rules) => {
                waivers.entry(target).or_default().extend(rules);
            }
            Err(why) => findings.push(Finding {
                rule: WAIVER_SYNTAX.into(),
                file: ctx.rel_path.clone(),
                line: t.line,
                module: String::new(),
                message: why,
            }),
        }
    }
    (waivers, findings)
}

/// `///`, `//!`, `/**`, `/*!` — but not `////` (a plain comment to
/// rustdoc) or `/**/` (empty block).
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && text.len() > 4)
        || text.starts_with("/*!")
}

/// Parse one waiver comment body. Grammar:
/// `tifl-lint: allow(<rule>[, <rule>…]) — <justification>`.
fn parse_waiver(comment: &str) -> Result<Vec<String>, String> {
    let after = comment
        .split_once("tifl-lint")
        .map(|(_, rest)| rest)
        .unwrap_or_default()
        .trim_start_matches([':', ' ', '\t']);
    let body = after.strip_prefix("allow").ok_or_else(|| {
        "malformed waiver: expected `tifl-lint: allow(<rule>) — <justification>`".to_string()
    })?;
    let body = body.trim_start();
    let inner = body
        .strip_prefix('(')
        .and_then(|b| b.split_once(')'))
        .ok_or_else(|| "malformed waiver: missing `(<rule>)` list".to_string())?;
    let (rule_list, rest) = inner;
    let mut rules = Vec::new();
    for rule in rule_list.split(',') {
        let rule = rule.trim();
        if !RULE_NAMES.contains(&rule) {
            return Err(format!(
                "unknown rule `{rule}` in waiver (known: {})",
                RULE_NAMES.join(", ")
            ));
        }
        rules.push(rule.to_string());
    }
    let justification: String = rest
        .trim_start_matches(['—', '-', ':', '.', ' ', '\t'])
        .trim_end_matches("*/")
        .trim()
        .to_string();
    if justification
        .chars()
        .filter(|c| c.is_alphanumeric())
        .count()
        < 3
    {
        return Err(
            "waiver without justification: every suppression must say why it is sound".to_string(),
        );
    }
    Ok(rules)
}

/// Lines covered by comments containing a `SAFETY:` contract.
fn safety_comment_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    for t in tokens {
        if t.kind == TokenKind::Comment && t.text.contains("SAFETY:") {
            let span = t.text.matches('\n').count() as u32;
            for l in t.line..=t.line + span {
                lines.insert(l);
            }
        }
    }
    lines
}

// -- the rules --------------------------------------------------------------

/// Pattern-match the seven rules over the scope-annotated code tokens.
fn run_rules(
    tokens: &[Token],
    code: &[Scoped],
    ctx: &FileContext,
    safety_lines: &BTreeSet<u32>,
) -> Vec<Finding> {
    let det_critical = DETERMINISM_CRATES.contains(&ctx.crate_name.as_str());
    let is_bench = ctx.crate_name == BENCH_CRATE;
    let library_code = !ctx.is_bin && !is_bench;
    let wall_clock_scope = !is_bench;
    let float_scope = library_code && ctx.crate_name != UNSAFE_CRATE;

    let tok = |k: usize| code.get(k).map(|c| &tokens[c.tok]);
    let is_p = |k: usize, c: char| tok(k).is_some_and(|t| t.is_punct(c));

    let mut out = Vec::new();
    let mut push = |k: usize, rule: &str, message: String| {
        if let Some(c) = code.get(k) {
            out.push(Finding {
                rule: rule.into(),
                file: ctx.rel_path.clone(),
                line: tokens[c.tok].line,
                module: c.module.to_string(),
                message,
            });
        }
    };

    for (k, sc) in code.iter().enumerate() {
        if sc.in_test {
            continue; // test code is exempt from every rule
        }
        let t = &tokens[sc.tok];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            name @ ("HashMap" | "HashSet") if det_critical => {
                let ordered = if name == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                push(
                    k,
                    "nondet-iteration",
                    format!(
                        "`{name}` in determinism-critical crate `{}`: iteration order varies \
                         across processes and versions; use `{ordered}`, or waive with a proof \
                         of order-insensitivity",
                        ctx.crate_name
                    ),
                );
            }
            "Instant"
                if wall_clock_scope
                    && is_p(k + 1, ':')
                    && is_p(k + 2, ':')
                    && tok(k + 3).is_some_and(|t| t.is_ident("now")) =>
            {
                push(
                    k,
                    "wall-clock-in-core",
                    "`Instant::now()` reads the host wall clock: simulated components \
                     must use virtual time; wall-clock belongs in `bench` (or waive a \
                     genuine throughput measurement)"
                        .into(),
                );
            }
            "SystemTime" if wall_clock_scope => {
                push(
                    k,
                    "wall-clock-in-core",
                    "`SystemTime` reads the host clock: results would differ run-to-run; \
                     derive times from the virtual clock or the experiment seed"
                        .into(),
                );
            }
            name @ ("thread_rng" | "from_entropy" | "OsRng") => {
                push(
                    k,
                    "unseeded-rng",
                    format!(
                        "`{name}` draws OS entropy: every RNG must derive from the experiment \
                         seed (see `tifl_tensor::rng::split_seed`) or runs are unreproducible"
                    ),
                );
            }
            "unwrap"
                if library_code
                    && is_p(k.wrapping_sub(1), '.')
                    && is_p(k + 1, '(')
                    && is_p(k + 2, ')') =>
            {
                push(
                    k,
                    "panic-in-library",
                    "`.unwrap()` in library code panics without context: return a \
                     `Result`, or use `.expect(\"why this cannot fail\")`"
                        .into(),
                );
            }
            "expect" if library_code && is_p(k.wrapping_sub(1), '.') => {
                let empty_msg = is_p(k + 1, '(')
                    && (is_p(k + 2, ')')
                        || (tok(k + 2)
                            .is_some_and(|t| t.kind == TokenKind::Str && str_is_empty(&t.text))
                            && is_p(k + 3, ')')));
                if empty_msg {
                    push(
                        k,
                        "panic-in-library",
                        "`.expect(\"\")` carries no context: state the invariant that makes \
                         the failure impossible"
                            .into(),
                    );
                }
            }
            name @ ("panic" | "unreachable" | "todo" | "unimplemented")
                if library_code && is_p(k + 1, '!') =>
            {
                push(
                    k,
                    "panic-in-library",
                    format!(
                        "`{name}!` in library code aborts the caller: return a `Result`, or \
                         waive a documented precondition/invariant panic"
                    ),
                );
            }
            name @ ("println" | "eprintln" | "print" | "eprint")
                if library_code && is_p(k + 1, '!') =>
            {
                push(
                    k,
                    "print-in-library",
                    format!(
                        "`{name}!` in library code writes straight to the process stdio, \
                         invisible to callers and unusable under a harness: return data, \
                         write into a caller-supplied `std::io::Write`, or waive a \
                         deliberate operator-facing progress line"
                    ),
                );
            }
            "unsafe" => {
                if ctx.crate_name != UNSAFE_CRATE {
                    push(
                        k,
                        "unsafe-needs-safety-comment",
                        format!(
                            "`unsafe` outside the `{UNSAFE_CRATE}` kernels: all other crates \
                             are `#![forbid(unsafe_code)]`; move the kernel into \
                             `{UNSAFE_CRATE}` or find a safe formulation"
                        ),
                    );
                } else {
                    let l = t.line;
                    let covered = safety_lines
                        .range(l.saturating_sub(SAFETY_WINDOW)..=l)
                        .next()
                        .is_some();
                    if !covered {
                        push(
                            k,
                            "unsafe-needs-safety-comment",
                            format!(
                                "`unsafe` without a `// SAFETY:` contract in the preceding \
                                 {SAFETY_WINDOW} lines: state why every invariant holds"
                            ),
                        );
                    }
                }
            }
            name @ ("sum" | "product") if float_scope && is_p(k.wrapping_sub(1), '.') => {
                let float_turbofish = is_p(k + 1, ':')
                    && is_p(k + 2, ':')
                    && is_p(k + 3, '<')
                    && tok(k + 4).is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"));
                if float_turbofish {
                    push(
                        k,
                        "float-reduce-order",
                        format!(
                            "float `.{name}::<_>()` outside the pinned `tensor` kernels: \
                             reduction order is part of the bit-for-bit contract; use a \
                             `tensor` kernel, or waive a provably fixed-order fold"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// True when a string literal carries no characters (`""`, `r""`,
/// `r#""#`, `b""`, …).
fn str_is_empty(text: &str) -> bool {
    text.trim_start_matches(['r', 'b', 'c'])
        .trim_matches('#')
        .trim_matches('"')
        .is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/x.rs"),
            is_bin: false,
        }
    }

    fn rules_at(src: &str, c: &FileContext) -> Vec<(String, u32)> {
        lint_source(src, c)
            .findings
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn hashmap_flagged_only_in_critical_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_at(src, &ctx("core")),
            vec![("nondet-iteration".into(), 1)]
        );
        assert_eq!(rules_at(src, &ctx("sweep")), vec![]);
    }

    #[test]
    fn cfg_test_scope_is_exempt() {
        let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn g(x: Option<u32>) -> u32 { x.unwrap() }
}
";
        assert_eq!(rules_at(src, &ctx("core")), vec![]);
    }

    #[test]
    fn test_scope_ends_with_its_brace() {
        let src = "\
#[cfg(test)]
mod tests { }
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
";
        assert_eq!(
            rules_at(src, &ctx("core")),
            vec![("panic-in-library".into(), 3)]
        );
    }

    #[test]
    fn strings_comments_chars_never_leak() {
        let src = "\
// A HashMap in a comment, plus unwrap() and panic!.
pub fn f() -> &'static str { \"HashMap::unwrap() panic! Instant::now()\" }
pub const H: char = 'H';
";
        assert_eq!(rules_at(src, &ctx("core")), vec![]);
    }

    #[test]
    fn expect_with_context_is_sanctioned() {
        let src = "\
pub fn f(x: Option<u32>) -> u32 { x.expect(\"set by new()\") }
pub fn g(x: Option<u32>) -> u32 { x.expect(\"\") }
";
        assert_eq!(
            rules_at(src, &ctx("fl")),
            vec![("panic-in-library".into(), 2)]
        );
    }

    #[test]
    fn bins_and_bench_may_panic_and_time() {
        let src = "pub fn f(x: Option<u32>) -> u32 { let _t = Instant::now(); x.unwrap() }\n";
        let bin = FileContext {
            crate_name: "core".into(),
            rel_path: "crates/core/src/bin/tool.rs".into(),
            is_bin: true,
        };
        // Bins may panic but still may not read the wall clock.
        assert_eq!(rules_at(src, &bin), vec![("wall-clock-in-core".into(), 1)]);
        assert_eq!(rules_at(src, &ctx("bench")), vec![]);
    }

    #[test]
    fn trailing_and_leading_waivers() {
        let src = "\
use std::collections::HashMap; // tifl-lint: allow(nondet-iteration) — dedup only, never iterated
// tifl-lint: allow(nondet-iteration) — membership checks only
use std::collections::HashSet;
";
        let lint = lint_source(src, &ctx("core"));
        assert_eq!(lint.findings, vec![]);
        assert_eq!(lint.waived, 2);
    }

    #[test]
    fn waiver_without_justification_is_a_finding() {
        let src = "// tifl-lint: allow(nondet-iteration)\nuse std::collections::HashMap;\n";
        let got = rules_at(src, &ctx("core"));
        assert!(got.contains(&("nondet-iteration".into(), 2)), "{got:?}");
        assert!(got.contains(&(WAIVER_SYNTAX.into(), 1)), "{got:?}");
    }

    #[test]
    fn doc_comments_never_waive_or_misparse() {
        let src = "\
/// Use `// tifl-lint: allow(panic-in-library) — why` to waive.
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
";
        // The doc comment is neither a waiver-syntax finding nor a
        // suppression of the unwrap on the next line.
        assert_eq!(
            rules_at(src, &ctx("fl")),
            vec![("panic-in-library".into(), 2)]
        );
    }

    #[test]
    fn waiver_with_unknown_rule_is_a_finding() {
        let src = "// tifl-lint: allow(no-such-rule) — because\npub fn f() {}\n";
        assert_eq!(rules_at(src, &ctx("core")), vec![(WAIVER_SYNTAX.into(), 1)]);
    }

    #[test]
    fn unsafe_needs_safety_in_tensor_and_is_banned_elsewhere() {
        let with = "pub fn f(p: *const f32) {\n    // SAFETY: p is valid by contract.\n    unsafe { p.read(); }\n}\n";
        let without = "pub fn f(p: *const f32) {\n    unsafe { p.read(); }\n}\n";
        assert_eq!(rules_at(with, &ctx("tensor")), vec![]);
        assert_eq!(
            rules_at(without, &ctx("tensor")),
            vec![("unsafe-needs-safety-comment".into(), 2)]
        );
        assert_eq!(
            rules_at(with, &ctx("fl")),
            vec![("unsafe-needs-safety-comment".into(), 3)]
        );
    }

    #[test]
    fn module_path_is_tracked() {
        let src = "mod simd {\n    mod inner {\n        use std::collections::HashMap;\n    }\n}\n";
        let lint = lint_source(src, &ctx("core"));
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].module, "simd::inner");
    }

    #[test]
    fn float_turbofish_reductions() {
        let src = "\
pub fn s(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }
pub fn ok(xs: &[f32]) -> f32 { xs.iter().fold(0.0, |a, &b| a + b) }
";
        assert_eq!(
            rules_at(src, &ctx("fl")),
            vec![("float-reduce-order".into(), 1)]
        );
        assert_eq!(rules_at(src, &ctx("tensor")), vec![]);
    }

    #[test]
    fn prints_flagged_in_library_code_only() {
        let src = "\
pub fn a() { println!(\"hi\"); }
pub fn b() { eprintln!(\"progress\"); }
pub fn ok(w: &mut dyn std::io::Write) { let _ = writeln!(w, \"hi\"); }
";
        assert_eq!(
            rules_at(src, &ctx("sweep")),
            vec![
                ("print-in-library".into(), 1),
                ("print-in-library".into(), 2),
            ]
        );
        // Bins own their stdio; bench harness output is its product.
        let bin = FileContext {
            crate_name: "core".into(),
            rel_path: "crates/core/src/bin/tool.rs".into(),
            is_bin: true,
        };
        assert_eq!(rules_at(src, &bin), vec![]);
        assert_eq!(rules_at(src, &ctx("bench")), vec![]);
    }

    #[test]
    fn wall_clock_and_rng() {
        let src = "\
pub fn a() { let _ = Instant::now(); }
pub fn b() { let _ = std::time::SystemTime::now(); }
pub fn c() { let mut r = rand::thread_rng(); }
";
        assert_eq!(
            rules_at(src, &ctx("sim")),
            vec![
                ("wall-clock-in-core".into(), 1),
                ("wall-clock-in-core".into(), 2),
                ("unseeded-rng".into(), 3),
            ]
        );
    }

    #[test]
    fn sweep_crate_still_fires_on_raw_wall_clock() {
        // The scheduler's wall-clock waivers were deleted in favour of
        // routing every host-time read through `HostClock` — this pins
        // that a reintroduced raw read in `sweep` is still a finding,
        // not silently grandfathered.
        let src = "pub fn elapsed() { let _t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_at(src, &ctx("sweep")),
            vec![("wall-clock-in-core".into(), 1)]
        );
        // The sanctioned pattern — an injected clock — trips nothing:
        // `clock.now_sec()` never mentions the banned idents.
        let ok = "pub fn elapsed(clock: &dyn HostClock) -> f64 { clock.now_sec() }\n";
        assert_eq!(rules_at(ok, &ctx("sweep")), vec![]);
    }
}
