//! `tifl-lint` — workspace determinism & robustness static analysis.
//!
//! The TiFL reproduction's load-bearing invariants — bit-for-bit
//! determinism across backends and thread counts, content-hash run
//! dedup, byte-deterministic artifacts — are easy to break with one
//! innocent-looking `HashMap` iteration or `Instant::now()`. This
//! crate is a machine-checked gate for those invariants: a
//! comment/string/char-literal-aware Rust lexer ([`lexer`]) feeding a
//! token-stream rule engine ([`rules`]) with module-path and
//! `#[cfg(test)]` scope tracking, run over every workspace source file
//! ([`workspace`]) by the CLI ([`cli`]).
//!
//! Seven rules ship (see `RULES.md` for examples and waiver syntax):
//! `nondet-iteration`, `wall-clock-in-core`, `unseeded-rng`,
//! `panic-in-library`, `print-in-library`,
//! `unsafe-needs-safety-comment` and `float-reduce-order`. Findings
//! are suppressible only by an inline
//! `// tifl-lint: allow(<rule>) — <justification>` annotation.
//!
//! Run as `tifl lint --deny` (facade subcommand) or
//! `cargo run -p tifl-lint -- --deny --format json` (CI).

#![forbid(unsafe_code)]

pub mod cli;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{lint_source, FileContext, FileLint, Finding, RULE_NAMES};
pub use workspace::{find_workspace_root, lint_workspace, Report};
