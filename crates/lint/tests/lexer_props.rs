//! Property tests for the lexer: total on arbitrary input (never
//! panics), and literal/comment contents never leak into the code
//! token stream.

use proptest::prelude::*;

use tifl_lint::lexer::{lex, TokenKind};

/// Characters the generators draw from — biased toward everything the
/// lexer treats specially.
const ALPHABET: &[char] = &[
    'a', 'H', 'M', 'z', '_', '0', '7', ' ', '\t', '"', '\'', '\\', '/', '*', '#', 'r', 'b', 'c',
    '{', '}', '(', ')', '[', ']', '.', ':', ';', '!', '<', '>', '=', '&', '\n', 'é', '中', '\u{0}',
];

fn chars_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| ALPHABET[i % ALPHABET.len()])
        .collect()
}

/// Idents that must never surface from inside a literal or comment.
const SENTINELS: &[&str] = &[
    "HashMap",
    "unwrap",
    "panic",
    "unsafe",
    "Instant",
    "thread_rng",
];

proptest! {
    /// Total on byte soup: arbitrary bytes (via lossy UTF-8) lex
    /// without panicking, with sane, nondecreasing line numbers.
    #[test]
    fn lex_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        let max_line = src.lines().count().max(1) as u32;
        let mut prev = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= prev, "line numbers must be nondecreasing");
            prop_assert!(t.line <= max_line + 1, "line {} past end {}", t.line, max_line);
            prev = t.line;
        }
    }

    /// Total on tricky-char soup (quote/backslash/comment-heavy input
    /// that byte soup rarely hits), including truncation at an
    /// arbitrary point — unterminated literals must not panic either.
    #[test]
    fn lex_never_panics_on_tricky_soup(
        indices in prop::collection::vec(0usize..ALPHABET.len(), 0..200),
        cut in 0usize..200,
    ) {
        let src = chars_from(&indices);
        let _ = lex(&src);
        let cut_src: String = src.chars().take(cut).collect();
        let _ = lex(&cut_src);
    }

    /// A plain string literal is one `Str` token: its contents never
    /// appear as idents, however lint-triggering they look.
    #[test]
    fn string_literals_never_leak_tokens(
        indices in prop::collection::vec(0usize..ALPHABET.len(), 0..80),
        sentinel in 0usize..6,
    ) {
        let inner: String = chars_from(&indices)
            .chars()
            .filter(|c| !matches!(c, '"' | '\\' | '\n'))
            .collect();
        let src = format!("let s = \"{}{}\";", inner, SENTINELS[sentinel]);
        let tokens = lex(&src);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
        for t in &tokens {
            if t.kind == TokenKind::Ident {
                prop_assert!(
                    !SENTINELS.contains(&t.text.as_str()),
                    "`{}` leaked out of a string literal",
                    t.text
                );
            }
        }
    }

    /// Same property for raw strings and line comments.
    #[test]
    fn raw_strings_and_comments_never_leak_tokens(
        indices in prop::collection::vec(0usize..ALPHABET.len(), 0..80),
        sentinel in 0usize..6,
    ) {
        let payload: String = chars_from(&indices)
            .chars()
            .filter(|c| !matches!(c, '"' | '\n'))
            .collect();
        let raw = format!("let s = r#\"{}{}\"#;", payload, SENTINELS[sentinel]);
        let comment = format!("// {}{}\nlet x = 1;", payload, SENTINELS[sentinel]);
        for src in [raw, comment] {
            for t in lex(&src) {
                if t.kind == TokenKind::Ident {
                    prop_assert!(
                        !SENTINELS.contains(&t.text.as_str()),
                        "`{}` leaked in {:?}",
                        t.text,
                        src
                    );
                }
            }
        }
    }

    /// Char literals hide their contents (and stay distinct from
    /// lifetimes).
    #[test]
    fn char_literals_never_leak_tokens(
        c in 0usize..ALPHABET.len(),
    ) {
        let ch = ALPHABET[c];
        let src = if matches!(ch, '\'' | '\\') {
            format!("let c = '\\{ch}';")
        } else {
            format!("let c = '{ch}';")
        };
        let tokens = lex(&src);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
            1,
            "exactly one char literal in {:?}",
            src
        );
    }
}
