// Fixture for `unsafe-needs-safety-comment` (linted as crate `tensor`,
// and re-linted as crate `fl` where any `unsafe` is a finding).
pub mod simd {
    pub fn covered(p: *const f32) -> f32 {
        // SAFETY: p points into a live, aligned slice; the caller
        // guarantees at least one readable element.
        unsafe { p.read() } // line 7: covered by the contract above
    }

    pub fn naked(p: *const f32) -> f32 {
        unsafe { p.read() } // line 11: finding (no SAFETY comment)
    }

    pub fn stale(p: *const f32) -> f32 {
        // SAFETY: too far away to count.
        let a = 1;
        let b = 2;
        let c = 3;
        let d = 4;
        let e = a + b + c + d;
        unsafe { p.add(e as usize).read() } // line 21: finding (outside window)
    }
}
