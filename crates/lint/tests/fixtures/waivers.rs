// Fixture for waiver parsing (linted as crate `core`).
use std::collections::HashMap; // tifl-lint: allow(nondet-iteration) — trailing waiver, dedup-only map

// tifl-lint: allow(nondet-iteration) — leading waiver, membership-only set
use std::collections::HashSet;

// tifl-lint: allow(nondet-iteration)
use std::collections::HashMap as NoJustification; // line 8: finding survives, waiver-syntax on line 7

// tifl-lint: allow(no-such-rule) — typo in the rule name
pub fn unknown_rule() {} // waiver-syntax finding on line 10

// tifl-lint: deny(nondet-iteration) — wrong verb
pub fn malformed() {} // waiver-syntax finding on line 13
