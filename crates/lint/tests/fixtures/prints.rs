// Known-bad fixture for `print-in-library` (linted as crate `fl`).
pub fn noisy() {
    println!("progress: 50%") // line 3: finding
}

pub fn noisier(e: &str) {
    eprintln!("warning: {e}") // line 7: finding
}

pub fn partial() {
    print!("no newline"); // line 11: finding
    eprint!("also bare"); // line 12: finding
}

pub fn sanctioned(w: &mut dyn std::io::Write) {
    let _ = writeln!(w, "caller-directed output"); // clean: caller chose the sink
}

pub fn waived() {
    // tifl-lint: allow(print-in-library) — operator-facing progress line, stderr only
    eprintln!("[fl] 3/10 rounds done") // line 20: waived
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debug output in tests is fine"); // clean: test scope
    }
}
