// Known-bad fixture for `wall-clock-in-core` (linted as crate `sim`).
use std::time::Instant; // import alone is fine: only `::now` is flagged

pub fn elapsed() -> f64 {
    let start = Instant::now(); // line 5: finding
    start.elapsed().as_secs_f64()
}

pub fn epoch_ms() -> u128 {
    std::time::SystemTime::now() // line 10: finding (any SystemTime use)
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
