// Known-bad fixture for `panic-in-library` (linted as crate `fl`).
pub fn bare(x: Option<u32>) -> u32 {
    x.unwrap() // line 3: finding
}

pub fn empty(x: Option<u32>) -> u32 {
    x.expect("") // line 7: finding (no context)
}

pub fn contextual(x: Option<u32>) -> u32 {
    x.expect("set by the constructor") // sanctioned: self-documenting
}

pub fn boom() {
    panic!("kaboom") // line 15: finding
}

pub fn never() {
    unreachable!() // line 19: finding
}

pub fn waived(x: Option<u32>) -> u32 {
    // tifl-lint: allow(panic-in-library) — invariant: x is Some by construction here
    x.unwrap() // line 24: waived
}

pub fn todo_stub() {
    todo!() // line 28: finding
}
