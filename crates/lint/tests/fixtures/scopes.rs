// Fixture for scope tracking and lexical hygiene (linted as crate `core`).
pub fn strings_do_not_leak() -> &'static str {
    "HashMap::new() unwrap() panic! Instant::now() thread_rng unsafe"
}

// A comment mentioning HashMap, unwrap() and panic! is not code.
pub const H: char = 'H'; // neither is a char literal

pub fn raw() -> &'static str {
    r#"SystemTime inside a raw string with "quotes" and HashSet"#
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_do_anything() {
        let mut m = HashMap::new();
        m.insert(1u32, std::time::Instant::now());
        let _ = m.get(&1).unwrap();
    }
}

pub mod inner {
    pub mod deep {
        use std::collections::HashMap; // line 27: finding, module `inner::deep`
    }
}
