// Known-bad fixture for `unseeded-rng` (linted as crate `fl`).
pub fn draw() -> u64 {
    let mut rng = rand::thread_rng(); // line 3: finding
    rng.gen()
}

pub fn fresh() -> StdRng {
    StdRng::from_entropy() // line 8: finding
}

pub fn os_random(buf: &mut [u8]) {
    OsRng.fill_bytes(buf); // line 12: finding
}

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed) // derived from the experiment seed: fine
}
