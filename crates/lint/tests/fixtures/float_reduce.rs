// Known-bad fixture for `float-reduce-order` (linted as crate `fl`).
pub fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32 // line 3: finding
}

pub fn norm2(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt() // line 7: finding
}

pub fn geo(xs: &[f32]) -> f32 {
    xs.iter().product::<f32>() // line 11: finding
}

pub fn count(xs: &[u32]) -> u32 {
    xs.iter().sum::<u32>() // integer sums are order-exact: fine
}

pub fn ordered(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0, |acc, &x| acc + x) // explicit fixed-order fold: fine
}
