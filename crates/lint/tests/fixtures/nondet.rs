// Known-bad fixture for `nondet-iteration` (linted as crate `core`).
use std::collections::HashMap; // line 2: finding
use std::collections::HashSet; // line 3: finding

pub struct State {
    pending: HashMap<u64, u32>, // line 6: finding
}

// tifl-lint: allow(nondet-iteration) — membership-only set, never iterated
pub struct Seen(HashSet<u64>); // line 10: waived

#[cfg(test)]
mod tests {
    use std::collections::HashMap; // test scope: exempt

    fn scratch() -> HashMap<u32, u32> {
        HashMap::new()
    }
}
