//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! produce exactly the expected (rule, line) diagnostics — no more, no
//! fewer — under the crate context named in the fixture's header.

use std::fs;
use std::path::Path;

use tifl_lint::{lint_source, FileContext, FileLint};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
}

fn lint_as(name: &str, crate_name: &str) -> FileLint {
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        rel_path: format!("crates/{crate_name}/src/{name}"),
        is_bin: false,
    };
    lint_source(&fixture(name), &ctx)
}

fn rule_lines(lint: &FileLint) -> Vec<(&str, u32)> {
    lint.findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line))
        .collect()
}

#[test]
fn nondet_fixture_exact_diagnostics() {
    let lint = lint_as("nondet.rs", "core");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("nondet-iteration", 2),
            ("nondet-iteration", 3),
            ("nondet-iteration", 6),
        ]
    );
    assert_eq!(lint.waived, 1, "the annotated HashSet is waived");
}

#[test]
fn nondet_fixture_is_clean_outside_critical_crates() {
    let lint = lint_as("nondet.rs", "sweep");
    assert_eq!(rule_lines(&lint), vec![]);
}

#[test]
fn wall_clock_fixture_exact_diagnostics() {
    let lint = lint_as("wall_clock.rs", "sim");
    assert_eq!(
        rule_lines(&lint),
        vec![("wall-clock-in-core", 5), ("wall-clock-in-core", 10)]
    );
}

#[test]
fn wall_clock_fixture_is_clean_in_bench() {
    let lint = lint_as("wall_clock.rs", "bench");
    assert_eq!(rule_lines(&lint), vec![]);
}

#[test]
fn rng_fixture_exact_diagnostics() {
    let lint = lint_as("rng.rs", "fl");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("unseeded-rng", 3),
            ("unseeded-rng", 8),
            ("unseeded-rng", 12),
        ]
    );
}

#[test]
fn panics_fixture_exact_diagnostics() {
    let lint = lint_as("panics.rs", "fl");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("panic-in-library", 3),
            ("panic-in-library", 7),
            ("panic-in-library", 15),
            ("panic-in-library", 19),
            ("panic-in-library", 28),
        ]
    );
    assert_eq!(lint.waived, 1, "the annotated unwrap is waived");
}

#[test]
fn prints_fixture_exact_diagnostics() {
    let lint = lint_as("prints.rs", "fl");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("print-in-library", 3),
            ("print-in-library", 7),
            ("print-in-library", 11),
            ("print-in-library", 12),
        ],
        "writeln! into a caller sink, waived and test prints stay clean"
    );
    assert_eq!(lint.waived, 1, "the annotated eprintln is waived");
}

#[test]
fn prints_fixture_is_clean_in_bins_and_bench() {
    let ctx = FileContext {
        crate_name: "core".to_string(),
        rel_path: "crates/core/src/bin/tool.rs".to_string(),
        is_bin: true,
    };
    let lint = lint_source(&fixture("prints.rs"), &ctx);
    assert_eq!(rule_lines(&lint), vec![], "bins own their stdio");
    let lint = lint_as("prints.rs", "bench");
    assert_eq!(rule_lines(&lint), vec![], "bench output is its product");
}

#[test]
fn unsafe_fixture_requires_safety_contracts_in_tensor() {
    let lint = lint_as("unsafe_simd.rs", "tensor");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("unsafe-needs-safety-comment", 11),
            ("unsafe-needs-safety-comment", 21),
        ],
        "covered block passes; naked and out-of-window blocks fail"
    );
}

#[test]
fn unsafe_fixture_is_always_flagged_outside_tensor() {
    let lint = lint_as("unsafe_simd.rs", "fl");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("unsafe-needs-safety-comment", 7),
            ("unsafe-needs-safety-comment", 11),
            ("unsafe-needs-safety-comment", 21),
        ]
    );
}

#[test]
fn float_fixture_exact_diagnostics() {
    let lint = lint_as("float_reduce.rs", "fl");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("float-reduce-order", 3),
            ("float-reduce-order", 7),
            ("float-reduce-order", 11),
        ],
        "integer sums and explicit folds stay clean"
    );
}

#[test]
fn waivers_fixture_exact_diagnostics() {
    let lint = lint_as("waivers.rs", "core");
    assert_eq!(
        rule_lines(&lint),
        vec![
            ("waiver-syntax", 7),
            ("nondet-iteration", 8),
            ("waiver-syntax", 10),
            ("waiver-syntax", 13),
        ],
        "bad waivers are findings and do not suppress anything"
    );
    assert_eq!(lint.waived, 2, "the two well-formed waivers count");
}

#[test]
fn scopes_fixture_exact_diagnostics() {
    let lint = lint_as("scopes.rs", "core");
    assert_eq!(
        rule_lines(&lint),
        vec![("nondet-iteration", 27)],
        "strings, comments, char literals and test modules are inert"
    );
    assert_eq!(lint.findings[0].module, "inner::deep");
}
