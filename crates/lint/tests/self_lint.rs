//! The workspace must lint clean: zero unwaived findings across every
//! crate. This is the same check CI's `lint` job runs via
//! `cargo run -p tifl-lint -- --deny`; keeping it in the test suite
//! means plain `cargo test` catches regressions too.

use std::path::Path;

use tifl_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("lint crate lives inside the workspace");
    let report = lint_workspace(&root).expect("workspace sources are readable");
    assert!(
        report.is_clean(),
        "workspace has unwaived lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: {}: {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The scan actually covered the tree (guards against a walk bug
    // silently linting nothing).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned",
        report.files_scanned
    );
    // And the waiver budget stays deliberate: new waivers mean a
    // conscious bump here, not silent drift.
    assert!(
        report.waived <= 20,
        "{} waivers — review whether they are all still justified",
        report.waived
    );
}

#[test]
fn json_report_is_valid_and_stable() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let a = lint_workspace(&root).expect("scan");
    let b = lint_workspace(&root).expect("scan");
    let ja = serde_json::to_string_pretty(&a).expect("serializes");
    let jb = serde_json::to_string_pretty(&b).expect("serializes");
    assert_eq!(ja, jb, "report JSON must be byte-deterministic");
    let parsed = serde_json::parse_value_complete(&ja).expect("valid JSON");
    drop(parsed);
}
