//! Baseline comparison (§2 related work): TiFL vs the straggler
//! mitigations it is contrasted against.
//!
//! * vanilla       — Algorithm 1 random selection, wait-all
//! * overselect    — Bonawitz et al.: ask 130 %, drop stragglers
//! * fedcs         — Nishio & Yonetani: deadline-filtered selection
//! * fedprox       — Li et al.: proximal objective (latency unchanged)
//! * uniform/TiFL  — tier-based selection (static / adaptive)
//!
//! Reports training time, accuracy, and discarded client work under the
//! resource + non-IID(5) scenario.

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;
use tifl_fl::TrainingReport;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let mut cfg = ExperimentConfig::cifar10_resource_noniid(5, seed);
    cfg.rounds = args.rounds_or(300);

    // One runner for the whole table: the profile behind the FedCS
    // deadline pick is the same one tiering and fedcs selection reuse.
    let mut runner = cfg.runner();
    let lats = runner.tiers().tier_latencies();
    // FedCS deadline: median profiled latency, so roughly the fastest
    // half of the fleet qualifies.
    let deadline = lats[lats.len() / 2];

    let mut runs: Vec<TrainingReport> = Vec::new();
    eprintln!("[baselines] vanilla ...");
    runs.push(runner.vanilla().run());
    eprintln!("[baselines] overselect(1.3) ...");
    runs.push(runner.overselect(1.3).run());
    eprintln!("[baselines] fedcs (deadline {deadline:.0}s) ...");
    runs.push(runner.reset().deadline(deadline).run());
    eprintln!("[baselines] fedprox(0.1) ...");
    runs.push(runner.reset().fedprox(0.1).run());
    eprintln!("[baselines] uniform ...");
    runs.push(runner.reset().policy(&Policy::uniform(5)).run());
    eprintln!("[baselines] adaptive ...");
    runs.push(runner.adaptive(None).label("TiFL").run());
    assert_eq!(runner.profile_count(), 1, "profiling must happen once");

    header(
        "baselines",
        &format!("{} ({} rounds, virtual seconds)", cfg.name, cfg.rounds),
    );
    println!(
        "{:<16} {:>12} {:>11} {:>10} {:>15}",
        "method", "time [s]", "final acc", "best acc", "discarded work"
    );
    for r in &runs {
        println!(
            "{:<16} {:>12.0} {:>11.3} {:>10.3} {:>14.1}%",
            r.policy,
            r.total_time(),
            r.final_accuracy(),
            r.best_accuracy(),
            r.discarded_work_fraction() * 100.0
        );
    }
    println!(
        "\nTiFL's claim (§2): deadline/over-selection baselines speed rounds up\nbut waste client work or exclude slow clients' data entirely; tiering\nkeeps every tier reachable while avoiding mixed-speed rounds."
    );

    args.maybe_dump_json(
        &runs
            .iter()
            .map(|r| (r.policy.clone(), r.total_time(), r.final_accuracy()))
            .collect::<Vec<_>>(),
    );
}
