//! Sweep throughput: whole-run scheduling rate of `tifl_sweep` at 1
//! worker vs N workers — what multiplexing runs over a pool buys.
//!
//! ```sh
//! cargo run --release -p tifl-bench --bin sweep_throughput
//! cargo run --release -p tifl-bench --bin sweep_throughput -- \
//!     --runs 12 --rounds 6 --workers 4 --out BENCH_sweep_throughput.json
//! ```
//!
//! The manifest is a seed × policy matrix over a shrunken §5.1
//! resource-heterogeneity topology; every cell is an independent full
//! run (profile → tier → select → train), so the scheduler's speedup
//! is pure run-level parallelism plus the shared profile cache (each
//! seed's topology profiles once per sweep, not once per policy). The
//! artifact records `host_parallelism` like the other BENCH files — on
//! a 1-core host the worker pool cannot beat serial and the ratio pins
//! near 1.0.
//!
//! Before timing anything the harness asserts the workers=1 and
//! workers=N reports are bit-for-bit identical.

use serde::{Deserialize, Serialize};
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::policy::Policy;
use tifl_nn::models::ModelSpec;
use tifl_obs::PhaseTotals;
use tifl_sweep::store::host_parallelism;
use tifl_sweep::{SweepBuilder, SweepManifest, SweepReport};

/// One measured worker-count cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    workers: usize,
    runs: usize,
    wall_clock_sec: f64,
    runs_per_sec: f64,
    profiles_computed: usize,
    /// Per-phase host-seconds summed over the sweep's completed runs —
    /// where the busy time went (train vs fold vs eval vs store
    /// writes), from the host profiler each observed run carries.
    host_phase_sec: PhaseTotals,
}

/// The checked-in artifact.
#[derive(Debug, Serialize, Deserialize)]
struct Throughput {
    host_parallelism: usize,
    rounds: u64,
    runs: usize,
    cells: Vec<Cell>,
    /// `wall(1 worker) / wall(N workers)` — bounded by the host's
    /// cores since every run is CPU-bound training.
    speedup: f64,
}

fn manifest(runs: usize, rounds: u64) -> SweepManifest {
    // A shrunken resource-het topology (as in tests/exec_backend.rs):
    // real 5-group CPU profile, small data and model so a cell is
    // milliseconds, not minutes.
    let mut cfg = ExperimentConfig::cifar10_resource_het(7);
    cfg.name = "sweep-throughput".into();
    cfg.num_clients = 10;
    cfg.clients_per_round = 2;
    cfg.data = DataScenario::Iid { per_client: 50 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 32,
        classes: 10,
    };
    cfg.eval_every = 2;
    let policies = [Policy::vanilla(), Policy::uniform(5), Policy::fast(5)];
    let seeds = (runs / policies.len()).max(1) as u64;
    let mut builder = SweepBuilder::new(cfg);
    builder
        .named("throughput")
        .rounds(rounds)
        .seeds(0..seeds)
        .policies(&policies);
    builder.manifest().clone()
}

fn measure(manifest: &SweepManifest, workers: usize) -> (Cell, SweepReport) {
    let mut builder = SweepBuilder::from_manifest(manifest.clone());
    let report = builder.workers(workers).run();
    assert_eq!(report.failed(), 0, "throughput runs must not fail");
    let runs = report.outcomes.len();
    let cell = Cell {
        workers: report.workers,
        runs,
        wall_clock_sec: report.wall_clock_sec,
        runs_per_sec: runs as f64 / report.wall_clock_sec,
        profiles_computed: report.profiles_computed,
        host_phase_sec: report.host_phase_sec(),
    };
    (cell, report)
}

fn main() {
    let mut runs = 12usize;
    let mut rounds = 6u64;
    let mut workers = 4usize;
    let mut out = "BENCH_sweep_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = || args.next().expect("flag needs a value");
        match a.as_str() {
            "--runs" => runs = next().parse().expect("--runs must be an integer"),
            "--rounds" => rounds = next().parse().expect("--rounds must be an integer"),
            "--workers" => workers = next().parse().expect("--workers must be an integer"),
            "--out" => out = next(),
            other => {
                panic!("unknown argument `{other}` (expected --runs/--rounds/--workers/--out)")
            }
        }
    }

    let manifest = manifest(runs, rounds);
    let total = manifest.expand().len();
    let host = host_parallelism();
    eprintln!("[sweep_throughput] {total} runs x {rounds} rounds on a {host}-core host");

    let (serial, serial_report) = measure(&manifest, 1);
    let (pooled, pooled_report) = measure(&manifest, workers);
    assert_eq!(
        serial_report.into_reports(),
        pooled_report.into_reports(),
        "worker count changed sweep results"
    );

    println!(
        "{:>8} {:>6} {:>12} {:>10} {:>9} {:>10} {:>10}",
        "workers", "runs", "wall [s]", "runs/s", "profiles", "train [s]", "fold [s]"
    );
    for cell in [&serial, &pooled] {
        println!(
            "{:>8} {:>6} {:>12.3} {:>10.2} {:>9} {:>10.3} {:>10.3}",
            cell.workers,
            cell.runs,
            cell.wall_clock_sec,
            cell.runs_per_sec,
            cell.profiles_computed,
            cell.host_phase_sec.train_sec,
            cell.host_phase_sec.fold_sec
        );
    }
    let speedup = serial.wall_clock_sec / pooled.wall_clock_sec;
    println!("speedup {speedup:.2}x at {workers} workers (host parallelism {host})");

    let artifact = Throughput {
        host_parallelism: host,
        rounds,
        runs: total,
        cells: vec![serial, pooled],
        speedup,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialises");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("[sweep_throughput] wrote {out}");
}
