//! Fig. 1(b): vanilla-FL accuracy under varying non-IID class skew —
//! the §3.3 data-heterogeneity case study.
//!
//! CIFAR-10-like data, 50 homogeneous clients (2 CPUs each), vanilla
//! selection; curves for IID and non-IID(10/5/2).

use tifl_bench::{header, print_accuracy_over_rounds, HarnessArgs, PolicyOutcome};
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::runner::Experiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);

    let mut outcomes = Vec::new();
    let variants: [(&str, Option<usize>); 4] = [
        ("IID", None),
        ("non-IID(10)", Some(10)),
        ("non-IID(5)", Some(5)),
        ("non-IID(2)", Some(2)),
    ];
    for (label, k) in variants {
        let mut cfg = match k {
            None => {
                let mut c = ExperimentConfig::cifar10_noniid(10, seed);
                c.data = DataScenario::Iid { per_client: 400 };
                c.name = "cifar10/iid".into();
                c
            }
            Some(k) => ExperimentConfig::cifar10_noniid(k, seed),
        };
        cfg.rounds = args.rounds_or(cfg.rounds);
        eprintln!("[fig1b] {label} ...");
        let mut outcome = PolicyOutcome::from(&cfg.runner().vanilla().run());
        outcome.policy = label.to_string();
        outcomes.push(outcome);
    }

    header(
        "Fig. 1(b)",
        "vanilla-FL accuracy under class-distribution skew",
    );
    print_accuracy_over_rounds(&outcomes, 5);
    println!();
    for o in &outcomes {
        println!(
            "{:<12} final {:.3}  best {:.3}",
            o.policy, o.final_accuracy, o.best_accuracy
        );
    }
    let iid = outcomes[0].best_accuracy;
    let n2 = outcomes[3].best_accuracy;
    println!(
        "\naccuracy drop IID -> non-IID(2): {:.1} percentage points",
        (iid - n2) * 100.0
    );

    args.maybe_dump_json(&outcomes);
}
