//! Time-to-accuracy: the fixed-budget reading of Figs. 3(e)/6(f).
//!
//! For each policy, the first virtual time at which the global model
//! reaches each accuracy target — the metric that makes TiFL's
//! per-round speedup an end-to-end win ("within the same time budget,
//! more iterations can be done", §5.2.4).

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;
use tifl_fl::TrainingReport;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.rounds = args.rounds_or(300);
    cfg.eval_every = 2;

    let targets = [0.5f64, 0.6, 0.7, 0.75, 0.8];
    let mut runner = cfg.runner();
    let mut runs: Vec<TrainingReport> = Vec::new();
    for p in Policy::cifar_set(5) {
        eprintln!("[time_to_acc] {} ...", p.name);
        runs.push(runner.policy(&p).run());
    }
    eprintln!("[time_to_acc] adaptive ...");
    runs.push(runner.adaptive(None).label("TiFL").run());

    header(
        "time to accuracy",
        &format!("{} — first virtual time [s] reaching each target", cfg.name),
    );
    print!("{:<10}", "policy");
    for t in targets {
        print!(" {:>9}", format!("{:.0}%", t * 100.0));
    }
    println!();
    for r in &runs {
        print!("{:<10}", r.policy);
        for t in targets {
            match r.time_to_accuracy(t) {
                Some(s) => print!(" {s:>9.0}"),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    println!("\n('-' = target not reached within {} rounds)", cfg.rounds);

    args.maybe_dump_json(
        &runs
            .iter()
            .map(|r| {
                (
                    r.policy.clone(),
                    targets
                        .iter()
                        .map(|&t| r.time_to_accuracy(t))
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>(),
    );
}
