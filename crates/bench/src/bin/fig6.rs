//! Fig. 6: CIFAR-10 with resource + non-IID heterogeneity (column 1)
//! and resource + data-quantity + non-IID heterogeneity (column 2) —
//! §5.2.4.

use tifl_bench::{
    header, print_accuracy_over_rounds, print_accuracy_over_time, print_summary, print_time_bars,
    HarnessArgs, PolicyOutcome,
};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn run_column(cfg: &ExperimentConfig) -> Vec<PolicyOutcome> {
    let mut runner = cfg.runner();
    Policy::cifar_set(cfg.tiering.num_tiers)
        .iter()
        .map(|p| {
            eprintln!("[fig6] {} / {} ...", cfg.name, p.name);
            PolicyOutcome::from(&runner.policy(p).run())
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);

    let mut col1 = ExperimentConfig::cifar10_resource_noniid(5, seed);
    col1.rounds = args.rounds_or(col1.rounds);
    let mut col2 = ExperimentConfig::cifar10_combine(5, seed);
    col2.rounds = args.rounds_or(col2.rounds);

    let o1 = run_column(&col1);
    let o2 = run_column(&col2);

    header("Fig. 6(a)", "training time, resource + non-IID(5)");
    print_time_bars(&o1);
    header(
        "Fig. 6(b)",
        "training time, resource + quantity + non-IID(5)",
    );
    print_time_bars(&o2);
    header("Fig. 6(c)", "accuracy over rounds, resource + non-IID(5)");
    print_accuracy_over_rounds(&o1, 5);
    header(
        "Fig. 6(d)",
        "accuracy over rounds, resource + quantity + non-IID(5)",
    );
    print_accuracy_over_rounds(&o2, 5);
    header("Fig. 6(e)", "accuracy over time, resource + non-IID(5)");
    print_accuracy_over_time(&o1, 10);
    header(
        "Fig. 6(f)",
        "accuracy over time, resource + quantity + non-IID(5)",
    );
    print_accuracy_over_time(&o2, 10);
    header("Fig. 6 summary", "per-policy totals");
    println!("-- resource + non-IID(5) --");
    print_summary(&o1);
    println!("-- resource + quantity + non-IID(5) --");
    print_summary(&o2);

    args.maybe_dump_json(&(o1, o2));
}
