//! Ablation: number of tiers `m` (the paper fixes m = 5).
//!
//! Sweeps m over {2, 3, 5, 10} under the uniform policy on the
//! resource-heterogeneous CIFAR-10 setup and reports training time and
//! final accuracy. More tiers means tighter latency grouping (faster
//! rounds from fast tiers, slower from slow ones) but smaller per-tier
//! client pools.

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let rounds = args.rounds_or(200);

    header("ablation", "tier count m under the uniform policy");
    println!(
        "{:<6} {:>14} {:>11} {:>22}",
        "m", "time [s]", "final acc", "profiled tier spread"
    );
    let mut rows = Vec::new();
    for m in [2usize, 3, 5, 10] {
        let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
        cfg.rounds = rounds;
        cfg.tiering.num_tiers = m;
        let mut runner = cfg.runner();
        let lats = runner.tiers().tier_latencies();
        let spread = lats.last().unwrap() / lats.first().unwrap();
        eprintln!("[ablation] m = {m} ...");
        let report = runner.policy(&Policy::uniform(m)).run();
        println!(
            "{m:<6} {:>14.0} {:>11.3} {:>18.1}x",
            report.total_time(),
            report.final_accuracy(),
            spread
        );
        rows.push((m, report.total_time(), report.final_accuracy(), spread));
    }
    println!("\n(the straggler mitigation already saturates by m = 5, the paper's choice)");

    args.maybe_dump_json(&rows);
}
