//! Fig. 7: adaptive (TiFL) vs vanilla vs uniform under three combined
//! heterogeneity scenarios — §5.2.5.
//!
//! * Amount  — resource + data-quantity heterogeneity
//! * Class   — resource + non-IID(5) heterogeneity
//! * Combine — resource + quantity + non-IID(5)
//!
//! Panel (a): total training time for 500 rounds; panel (b): accuracy at
//! 500 rounds.

use tifl_bench::{header, HarnessArgs, PolicyOutcome};
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);

    let mut scenarios: Vec<(&str, ExperimentConfig)> = vec![
        ("Class", ExperimentConfig::cifar10_resource_noniid(5, seed)),
        ("Amount", {
            let mut c = ExperimentConfig::cifar10_resource_het(seed);
            c.data = DataScenario::QuantitySkew { total: 20_000 };
            c.name = "cifar10/resource+quantity".into();
            c
        }),
        ("Combine", ExperimentConfig::cifar10_combine(5, seed)),
    ];
    for (_, cfg) in &mut scenarios {
        cfg.rounds = args.rounds_or(cfg.rounds);
    }

    let mut results: Vec<(String, Vec<PolicyOutcome>)> = Vec::new();
    for (label, cfg) in &scenarios {
        let mut runner = cfg.runner();
        let mut outcomes = Vec::new();
        for p in [Policy::vanilla(), Policy::uniform(5)] {
            eprintln!("[fig7] {label} / {} ...", p.name);
            outcomes.push(PolicyOutcome::from(&runner.policy(&p).run()));
        }
        eprintln!("[fig7] {label} / adaptive ...");
        let mut a = PolicyOutcome::from(&runner.adaptive(None).run());
        a.policy = "TiFL".into();
        outcomes.push(a);
        results.push(((*label).to_string(), outcomes));
    }

    header("Fig. 7(a)", "training time for 500 rounds [s]");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "scenario", "vanilla", "uniform", "TiFL"
    );
    for (label, os) in &results {
        println!(
            "{label:<10} {:>10.0} {:>10.0} {:>10.0}",
            os[0].total_time, os[1].total_time, os[2].total_time
        );
    }

    header("Fig. 7(b)", "accuracy at 500 rounds [%]");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "scenario", "vanilla", "uniform", "TiFL"
    );
    for (label, os) in &results {
        println!(
            "{label:<10} {:>10.1} {:>10.1} {:>10.1}",
            os[0].final_accuracy * 100.0,
            os[1].final_accuracy * 100.0,
            os[2].final_accuracy * 100.0
        );
    }

    args.maybe_dump_json(&results);
}
