//! Communication sweep: codec × pool-size grid over a
//! bandwidth-heterogeneous testbed — what compression buys on the wire
//! and what it costs on the clock.
//!
//! ```sh
//! cargo run --release -p tifl-bench --bin comm_sweep
//! cargo run --release -p tifl-bench --bin comm_sweep -- \
//!     --max-clients 1000 --rounds 10 --out BENCH_comm_sweep.json
//! ```
//!
//! For each pool size (100 / 1 000 clients) and each codec (`identity`,
//! `i8`, `topk(0.1)`) the sweep runs a bandwidth-heterogeneous
//! compressed round loop and records wall-clock seconds, rounds/second,
//! exact bytes on the wire (up + down) and the virtual round time.
//! Wall clocks are measured per *round* and the artifact keeps each
//! round's minimum across `--reps` interleaved runs — the runs are
//! deterministic, so the per-round min is the round's true cost with
//! host scheduling/thermal drift stripped out. The artifact records
//! `host_parallelism` like `BENCH_scale_sweep.json`, so the two sweeps
//! are comparable cell-for-cell on any host.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tifl_comm::{CodecSpec, CommSpec, LinkModel};
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::runner::{Experiment, RunSpec};
use tifl_fl::{OptimizerSpec, RandomSelector, TrainingReport};
use tifl_nn::models::ModelSpec;
use tifl_tensor::split_seed;

/// One measured (pool size × codec) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    clients: usize,
    clients_per_round: usize,
    codec: String,
    rounds: u64,
    wall_clock_sec: f64,
    rounds_per_sec: f64,
    bytes_up: u64,
    bytes_down: u64,
    virtual_time_sec: f64,
    final_accuracy: f64,
}

/// The checked-in artifact: environment + cells + headline ratios.
#[derive(Debug, Serialize, Deserialize)]
struct Sweep {
    host_parallelism: usize,
    rounds: u64,
    /// Each round's wall clock is the min over this many interleaved
    /// identical runs; a cell's wall time sums those per-round minima.
    #[serde(default)]
    reps: u32,
    /// Wall clocks average the per-round-min sums over these seeds;
    /// bytes/virtual-time/accuracy columns report the first seed's run.
    #[serde(default)]
    seeds: Vec<u64>,
    cells: Vec<Cell>,
    /// `bytes_up(identity) / bytes_up(codec)` per (pool, codec) — the
    /// headline wire saving.
    uplink_compression: Vec<(usize, String, f64)>,
    /// `virtual_time(identity) / virtual_time(codec)` per (pool,
    /// codec) — what the saving buys in simulated round latency on the
    /// bandwidth-constrained uplinks.
    virtual_speedup: Vec<(usize, String, f64)>,
}

fn sweep_config(clients: usize, rounds: u64, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.name = format!("comm-sweep/{clients}-clients");
    cfg.num_clients = clients;
    cfg.clients_per_round = (clients / 100).clamp(10, 64);
    cfg.rounds = rounds;
    // Clients do realistic local work — a few epochs over a couple
    // hundred samples, like the paper's testbed — so the wall-clock
    // round is training-bound, as it is in the deployments TiFL
    // models. (With toy-sized local training the sweep mostly measures
    // the server's encode/fold microseconds, which the wire-level
    // story says nothing about; those kernels are gated separately in
    // `benches/codec_kernels.rs`.)
    cfg.data = DataScenario::Iid { per_client: 200 };
    cfg.client.local_epochs = 3;
    // SGD+momentum, not the default RMSprop: its per-element cost is
    // mul/add only, so the training wall is *value-oblivious*. RMSprop
    // spends a hardware sqrt and div per parameter per step whose
    // latencies depend on the operand values, so runs whose models
    // converge differently drift ±2 % in training wall — pure
    // trajectory luck, which would drown the sub-1 % codec-path cost
    // this sweep is trying to compare.
    cfg.client.optimizer = OptimizerSpec::SgdMomentum {
        lr: 0.05,
        momentum: 0.9,
    };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 64,
        classes: 10,
    };
    cfg.eval_every = 1;
    // A communication sweep wants the wire to be the constraint:
    // fast-enough devices (10x the synthetic default) so the uplink
    // term dominates the round, as it does for the paper's real CNNs.
    cfg.latency.flops_per_cpu_sec = 5.0e7;
    cfg
}

/// The sweep's bandwidth-heterogeneous link tiers: 5 groups from a
/// 100 kB/s-up / 1 MB/s-down DSL-class tier down to a 16x slower
/// constrained tier, 20 ms RTT — uplink-bound for the dense codec at
/// these model sizes.
fn sweep_link() -> LinkModel {
    LinkModel::GroupScaled {
        groups: 5,
        up_bps: 1.0e5,
        down_bps: 1.0e6,
        decay: 0.5,
        rtt_sec: 0.02,
    }
}

fn codec_of(name: &str) -> CodecSpec {
    match name {
        "identity" => CodecSpec::Identity,
        "i8" => CodecSpec::QuantizeI8,
        "topk(0.1)" => CodecSpec::TopK { frac: 0.1 },
        other => panic!("unknown codec `{other}`"),
    }
}

/// One full run of a (pool, codec) cell through the lockstep round
/// loop, clocking every round individually. Folds each round's wall
/// time into `round_mins` (element-wise min) and returns the
/// (deterministic) training report.
fn measure_once(
    clients: usize,
    codec_name: &str,
    rounds: u64,
    seed: u64,
    round_mins: &mut [f64],
) -> TrainingReport {
    let cfg = sweep_config(clients, rounds, seed);
    let spec = RunSpec {
        comm: Some(CommSpec {
            codec: codec_of(codec_name),
            link: sweep_link(),
            hierarchy: None,
        }),
        ..RunSpec::default()
    };
    // The exact session + selector the default `Runner::run` drives —
    // inlined here so each round can be clocked on its own.
    let mut session = cfg.build_session(&spec.session_overrides());
    let mut selector = RandomSelector::new(cfg.num_clients, split_seed(cfg.seed, 0x5E1EC7));
    let mut round_reports = Vec::with_capacity(rounds as usize);
    for m in round_mins.iter_mut() {
        let start = Instant::now();
        round_reports.push(session.run_round(&mut selector));
        *m = m.min(start.elapsed().as_secs_f64());
    }
    TrainingReport {
        policy: codec_name.to_string(),
        rounds: round_reports,
    }
}

/// Measure every codec of one pool: each round's wall clock is the min
/// across `reps` runs, a seed's wall time is the sum of its rounds'
/// minima (session setup excluded — the cells compare round cost), and
/// a cell's wall time is the mean over `seeds`.
///
/// Three de-noising axes, each aimed at a different bias:
/// * Reps are *interleaved* — one run of every codec per pass, not all
///   reps of one codec back-to-back — and the codec order *rotates*
///   between passes, so drift that correlates with position in the
///   pass (turbo decay over a pass, periodic background work) cannot
///   pin itself to one codec.
/// * The minimum is taken per *round*, not per run: every round
///   repeats identical work across reps (the runs are deterministic),
///   so its min over many replays estimates the true cost with host
///   drift (another process waking up, thermal throttling) stripped
///   out, which whole-run timing cannot do.
/// * Walls average over several *seeds* because local training is not
///   value-oblivious: RMSprop spends one hardware `sqrt` and `div` per
///   parameter per step, whose latencies depend on the operand values,
///   so two runs whose models converge differently can differ by ±2 %
///   in *training* wall — an artifact of the trajectory, not of the
///   codec path, with a sign that flips from seed to seed. Averaging
///   seeds shrinks that bias toward zero so the cells compare codec
///   cost rather than one seed's trajectory luck.
///
/// Bytes, virtual time and accuracy are deterministic per seed (reps
/// only vary the wall clock); those columns report the first —
/// canonical — seed's run.
fn run_pool(clients: usize, codecs: &[&str], rounds: u64, reps: u32, seeds: &[u64]) -> Vec<Cell> {
    let cfg = sweep_config(clients, rounds, seeds[0]);
    let mut reports: Vec<Option<TrainingReport>> = vec![None; codecs.len()];
    // round_mins[seed][codec][round]. The rep loop is outermost so the
    // passes over all (seed, codec) pairs spread across the whole
    // measurement window: a multi-second host transient then taxes every
    // seed's pass equally instead of swallowing one seed's reps whole,
    // and the per-round min recovers the clean replay.
    let mut round_mins =
        vec![vec![vec![f64::INFINITY; rounds as usize]; codecs.len()]; seeds.len()];
    for rep in 0..reps.max(1) as usize {
        for (s, &seed) in seeds.iter().enumerate() {
            for k in 0..codecs.len() {
                let i = (rep + s + k) % codecs.len();
                let report = measure_once(clients, codecs[i], rounds, seed, &mut round_mins[s][i]);
                if s == 0 && reports[i].is_none() {
                    reports[i] = Some(report);
                }
            }
        }
    }
    let mut walls = vec![0.0f64; codecs.len()];
    for per_seed in &round_mins {
        for (wall, mins) in walls.iter_mut().zip(per_seed) {
            *wall += mins.iter().sum::<f64>() / seeds.len() as f64;
        }
    }
    let reports: Vec<TrainingReport> = reports.into_iter().map(|r| r.expect("measured")).collect();
    codecs
        .iter()
        .zip(&walls)
        .zip(&reports)
        .map(|((codec, &wall), report)| Cell {
            clients,
            clients_per_round: cfg.clients_per_round,
            codec: (*codec).to_string(),
            rounds,
            wall_clock_sec: wall,
            rounds_per_sec: rounds as f64 / wall,
            bytes_up: report.total_bytes_up(),
            bytes_down: report.total_bytes_down(),
            virtual_time_sec: report.total_time(),
            final_accuracy: report.final_accuracy(),
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_clients = 1_000usize;
    let mut rounds = 20u64;
    let mut reps = 3u32;
    let mut seeds = vec![7u64, 42, 1337];
    let mut out = "BENCH_comm_sweep.json".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--max-clients" => max_clients = val("--max-clients").parse().expect("integer"),
            "--rounds" => rounds = val("--rounds").parse().expect("integer"),
            "--reps" => reps = val("--reps").parse().expect("integer"),
            "--seeds" => {
                seeds = val("--seeds")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer seed"))
                    .collect();
                assert!(!seeds.is_empty(), "--seeds needs at least one seed");
            }
            "--out" => out = val("--out"),
            other => {
                panic!(
                    "unknown argument `{other}` \
                     (expected --max-clients/--rounds/--reps/--seeds/--out)"
                )
            }
        }
    }

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let pools: Vec<usize> = [100usize, 1_000]
        .into_iter()
        .filter(|&c| c <= max_clients)
        .collect();
    let codecs = ["identity", "i8", "topk(0.1)"];
    eprintln!(
        "[comm_sweep] pools {pools:?}, {rounds} rounds, per-round min of {reps} reps, \
         walls averaged over seeds {seeds:?}, host parallelism {host}"
    );

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:>8} {:>5} {:>10} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "clients", "|C|", "codec", "wall [s]", "rounds/s", "MB up", "virtual [s]", "final acc"
    );
    for &clients in &pools {
        for cell in run_pool(clients, &codecs, rounds, reps, &seeds) {
            println!(
                "{:>8} {:>5} {:>10} {:>12.3} {:>12.2} {:>12.3} {:>14.1} {:>12.3}",
                cell.clients,
                cell.clients_per_round,
                cell.codec,
                cell.wall_clock_sec,
                cell.rounds_per_sec,
                cell.bytes_up as f64 / 1e6,
                cell.virtual_time_sec,
                cell.final_accuracy
            );
            cells.push(cell);
        }
    }

    let cell_of = |clients: usize, codec: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.clients == clients && c.codec == codec)
            .expect("cell measured")
    };
    let mut uplink_compression = Vec::new();
    let mut virtual_speedup = Vec::new();
    for &clients in &pools {
        let identity = cell_of(clients, "identity");
        for codec in &codecs[1..] {
            let c = cell_of(clients, codec);
            uplink_compression.push((
                clients,
                (*codec).to_string(),
                identity.bytes_up as f64 / c.bytes_up as f64,
            ));
            virtual_speedup.push((
                clients,
                (*codec).to_string(),
                identity.virtual_time_sec / c.virtual_time_sec,
            ));
        }
    }
    for (clients, codec, x) in &uplink_compression {
        println!("{clients:>8} clients: {codec} ships {x:.2}x fewer uplink bytes");
    }
    for (clients, codec, x) in &virtual_speedup {
        println!("{clients:>8} clients: {codec} rounds are {x:.2}x faster in virtual time");
    }

    let sweep = Sweep {
        host_parallelism: host,
        rounds,
        reps,
        seeds,
        cells,
        uplink_compression,
        virtual_speedup,
    };
    let json = serde_json::to_string_pretty(&sweep).expect("serialises");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("[comm_sweep] wrote {out}");
}
