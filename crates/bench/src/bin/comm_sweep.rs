//! Communication sweep: codec × pool-size grid over a
//! bandwidth-heterogeneous testbed — what compression buys on the wire
//! and what it costs on the clock.
//!
//! ```sh
//! cargo run --release -p tifl-bench --bin comm_sweep
//! cargo run --release -p tifl-bench --bin comm_sweep -- \
//!     --max-clients 1000 --rounds 10 --out BENCH_comm_sweep.json
//! ```
//!
//! For each pool size (100 / 1 000 clients) and each codec (`identity`,
//! `i8`, `topk(0.1)`) the sweep runs a bandwidth-heterogeneous
//! compressed round loop and records wall-clock seconds, rounds/second,
//! exact bytes on the wire (up + down) and the virtual round time. The
//! artifact records `host_parallelism` like `BENCH_scale_sweep.json`,
//! so the two sweeps are comparable cell-for-cell on any host.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tifl_comm::{CodecSpec, CommSpec, LinkModel};
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::runner::{RunSpec, Runner};
use tifl_nn::models::ModelSpec;

/// One measured (pool size × codec) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    clients: usize,
    clients_per_round: usize,
    codec: String,
    rounds: u64,
    wall_clock_sec: f64,
    rounds_per_sec: f64,
    bytes_up: u64,
    bytes_down: u64,
    virtual_time_sec: f64,
    final_accuracy: f64,
}

/// The checked-in artifact: environment + cells + headline ratios.
#[derive(Debug, Serialize, Deserialize)]
struct Sweep {
    host_parallelism: usize,
    rounds: u64,
    cells: Vec<Cell>,
    /// `bytes_up(identity) / bytes_up(codec)` per (pool, codec) — the
    /// headline wire saving.
    uplink_compression: Vec<(usize, String, f64)>,
    /// `virtual_time(identity) / virtual_time(codec)` per (pool,
    /// codec) — what the saving buys in simulated round latency on the
    /// bandwidth-constrained uplinks.
    virtual_speedup: Vec<(usize, String, f64)>,
}

fn sweep_config(clients: usize, rounds: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(7);
    cfg.name = format!("comm-sweep/{clients}-clients");
    cfg.num_clients = clients;
    cfg.clients_per_round = (clients / 100).clamp(10, 64);
    cfg.rounds = rounds;
    cfg.data = DataScenario::Iid { per_client: 50 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 64,
        classes: 10,
    };
    cfg.eval_every = 1;
    // A communication sweep wants the wire to be the constraint:
    // fast-enough devices (10x the synthetic default) so the uplink
    // term dominates the round, as it does for the paper's real CNNs.
    cfg.latency.flops_per_cpu_sec = 5.0e7;
    cfg
}

/// The sweep's bandwidth-heterogeneous link tiers: 5 groups from a
/// 100 kB/s-up / 1 MB/s-down DSL-class tier down to a 16x slower
/// constrained tier, 20 ms RTT — uplink-bound for the dense codec at
/// these model sizes.
fn sweep_link() -> LinkModel {
    LinkModel::GroupScaled {
        groups: 5,
        up_bps: 1.0e5,
        down_bps: 1.0e6,
        decay: 0.5,
        rtt_sec: 0.02,
    }
}

fn codec_of(name: &str) -> CodecSpec {
    match name {
        "identity" => CodecSpec::Identity,
        "i8" => CodecSpec::QuantizeI8,
        "topk(0.1)" => CodecSpec::TopK { frac: 0.1 },
        other => panic!("unknown codec `{other}`"),
    }
}

fn run_cell(clients: usize, codec_name: &str, rounds: u64) -> Cell {
    let cfg = sweep_config(clients, rounds);
    let spec = RunSpec {
        comm: Some(CommSpec {
            codec: codec_of(codec_name),
            link: sweep_link(),
            hierarchy: None,
        }),
        ..RunSpec::default()
    };
    let start = Instant::now();
    let report = Runner::with_spec(&cfg, spec).run();
    let wall = start.elapsed().as_secs_f64();
    Cell {
        clients,
        clients_per_round: cfg.clients_per_round,
        codec: codec_name.to_string(),
        rounds,
        wall_clock_sec: wall,
        rounds_per_sec: rounds as f64 / wall,
        bytes_up: report.total_bytes_up(),
        bytes_down: report.total_bytes_down(),
        virtual_time_sec: report.total_time(),
        final_accuracy: report.final_accuracy(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_clients = 1_000usize;
    let mut rounds = 20u64;
    let mut out = "BENCH_comm_sweep.json".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--max-clients" => max_clients = val("--max-clients").parse().expect("integer"),
            "--rounds" => rounds = val("--rounds").parse().expect("integer"),
            "--out" => out = val("--out"),
            other => panic!("unknown argument `{other}` (expected --max-clients/--rounds/--out)"),
        }
    }

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let pools: Vec<usize> = [100usize, 1_000]
        .into_iter()
        .filter(|&c| c <= max_clients)
        .collect();
    let codecs = ["identity", "i8", "topk(0.1)"];
    eprintln!("[comm_sweep] pools {pools:?}, {rounds} rounds, host parallelism {host}");

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:>8} {:>5} {:>10} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "clients", "|C|", "codec", "wall [s]", "rounds/s", "MB up", "virtual [s]", "final acc"
    );
    for &clients in &pools {
        for codec in codecs {
            let cell = run_cell(clients, codec, rounds);
            println!(
                "{:>8} {:>5} {:>10} {:>12.3} {:>12.2} {:>12.3} {:>14.1} {:>12.3}",
                cell.clients,
                cell.clients_per_round,
                cell.codec,
                cell.wall_clock_sec,
                cell.rounds_per_sec,
                cell.bytes_up as f64 / 1e6,
                cell.virtual_time_sec,
                cell.final_accuracy
            );
            cells.push(cell);
        }
    }

    let cell_of = |clients: usize, codec: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.clients == clients && c.codec == codec)
            .expect("cell measured")
    };
    let mut uplink_compression = Vec::new();
    let mut virtual_speedup = Vec::new();
    for &clients in &pools {
        let identity = cell_of(clients, "identity");
        for codec in &codecs[1..] {
            let c = cell_of(clients, codec);
            uplink_compression.push((
                clients,
                (*codec).to_string(),
                identity.bytes_up as f64 / c.bytes_up as f64,
            ));
            virtual_speedup.push((
                clients,
                (*codec).to_string(),
                identity.virtual_time_sec / c.virtual_time_sec,
            ));
        }
    }
    for (clients, codec, x) in &uplink_compression {
        println!("{clients:>8} clients: {codec} ships {x:.2}x fewer uplink bytes");
    }
    for (clients, codec, x) in &virtual_speedup {
        println!("{clients:>8} clients: {codec} rounds are {x:.2}x faster in virtual time");
    }

    let sweep = Sweep {
        host_parallelism: host,
        rounds,
        cells,
        uplink_compression,
        virtual_speedup,
    };
    let json = serde_json::to_string_pretty(&sweep).expect("serialises");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("[comm_sweep] wrote {out}");
}
