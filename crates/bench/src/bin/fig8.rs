//! Fig. 8: adaptive vs vanilla vs uniform accuracy over rounds under
//! 2 / 5 / 10-class non-IID skew with fixed resources (2 CPUs per
//! client) — §5.2.5.

use tifl_bench::{header, print_accuracy_over_rounds, HarnessArgs, PolicyOutcome};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);

    let mut all = Vec::new();
    for (panel, k) in [2usize, 5, 10].into_iter().enumerate() {
        let mut cfg = ExperimentConfig::cifar10_noniid(k, seed);
        cfg.rounds = args.rounds_or(cfg.rounds);

        let mut runner = cfg.runner();
        let mut outcomes = Vec::new();
        for p in [Policy::vanilla(), Policy::uniform(5)] {
            eprintln!("[fig8] non-IID({k}) / {} ...", p.name);
            outcomes.push(PolicyOutcome::from(&runner.policy(&p).run()));
        }
        eprintln!("[fig8] non-IID({k}) / adaptive ...");
        let mut a = PolicyOutcome::from(&runner.adaptive(None).run());
        a.policy = "TiFL".into();
        outcomes.push(a);

        header(
            &format!("Fig. 8({})", (b'a' + panel as u8) as char),
            &format!("{k}-class per client"),
        );
        print_accuracy_over_rounds(&outcomes, 8);
        println!();
        for o in &outcomes {
            println!(
                "{:<10} final {:.3}  best {:.3}",
                o.policy, o.final_accuracy, o.best_accuracy
            );
        }
        all.push((k, outcomes));
    }

    args.maybe_dump_json(&all);
}
