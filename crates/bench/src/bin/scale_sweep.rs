//! Scale sweep: round-execution throughput of both backends at
//! 100 / 1 000 / 10 000 clients — the repo's performance trajectory.
//!
//! ```sh
//! cargo run --release -p tifl-bench --bin scale_sweep
//! cargo run --release -p tifl-bench --bin scale_sweep -- \
//!     --max-clients 1000 --rounds 10 --threads 4 --out BENCH_scale_sweep.json
//! ```
//!
//! For each pool size the sweep measures four cells — `lockstep` and
//! `event` at 1 and `--threads` workers — and writes wall-clock
//! seconds, rounds/second and a peak-RSS proxy (`VmHWM`) per cell to
//! `--out`. Each cell runs in a **subprocess** (re-invoking this binary
//! with the hidden `--cell` mode) so its high-water mark is its own and
//! not the largest earlier cell's.
//!
//! The two backends execute identical work (their reports are asserted
//! equal in the tests), so the ratio between cells isolates the
//! execution mechanism: on a single-CPU host `event` ties `lockstep`
//! (the engine's streaming overhead is noise), and the speedup scales
//! with available cores since client training dominates a round.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tifl_core::exec::EventEngine;
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::runner::Experiment;
use tifl_fl::selector::RandomSelector;
use tifl_fl::session::SessionOverrides;
use tifl_nn::models::ModelSpec;

/// One measured (pool size × backend × threads) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    clients: usize,
    clients_per_round: usize,
    backend: String,
    threads: usize,
    rounds: u64,
    wall_clock_sec: f64,
    rounds_per_sec: f64,
    peak_rss_bytes: u64,
    final_accuracy: f64,
}

/// The checked-in artifact: environment + cells + headline ratios.
#[derive(Debug, Serialize, Deserialize)]
struct Sweep {
    host_parallelism: usize,
    rounds: u64,
    threads: usize,
    cells: Vec<Cell>,
    /// `wall(lockstep, 1 thread) / wall(event, --threads)` per pool
    /// size — the headline "how much does the engine buy" number.
    /// Bounded above by the host's core count: client training
    /// dominates a round, and a 1-core host pins this near 1.0.
    speedup_event_vs_sequential: Vec<(usize, f64)>,
}

fn sweep_config(clients: usize, rounds: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::cifar10_resource_het(7);
    cfg.name = format!("sweep/{clients}-clients");
    cfg.num_clients = clients;
    // Production-style participation: |C| grows with the pool, capped
    // so the largest cell stays minutes-not-hours on small hosts.
    cfg.clients_per_round = (clients / 100).clamp(10, 64);
    cfg.rounds = rounds;
    cfg.data = DataScenario::Iid { per_client: 50 };
    cfg.model = ModelSpec::Mlp {
        input: 64,
        hidden: 64,
        classes: 10,
    };
    cfg.eval_every = 1;
    cfg
}

/// `VmHWM` (peak resident set) of this process, in bytes (0 where
/// `/proc` is unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Run one cell in-process and report it (the `--cell` subprocess mode).
fn run_cell(clients: usize, backend: &str, threads: usize, rounds: u64) -> Cell {
    let cfg = sweep_config(clients, rounds);
    let mut session = cfg.build_session(&SessionOverrides::default());
    let mut selector = RandomSelector::new(clients, cfg.seed);
    let start = Instant::now();
    let report = match backend {
        "lockstep" => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds");
            pool.install(|| session.run(&mut selector))
        }
        "event" => EventEngine::new(threads).run(&mut session, &mut selector),
        other => panic!("unknown backend `{other}` (expected lockstep|event)"),
    };
    let wall = start.elapsed().as_secs_f64();
    Cell {
        clients,
        clients_per_round: cfg.clients_per_round,
        backend: backend.to_string(),
        threads,
        rounds,
        wall_clock_sec: wall,
        rounds_per_sec: rounds as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
        final_accuracy: report.final_accuracy(),
    }
}

/// Run one cell in a fresh subprocess so `VmHWM` is per-cell.
fn spawn_cell(clients: usize, backend: &str, threads: usize, rounds: u64) -> Cell {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .args([
            "--cell",
            &clients.to_string(),
            backend,
            &threads.to_string(),
            &rounds.to_string(),
        ])
        .output()
        .expect("cell subprocess runs");
    assert!(
        out.status.success(),
        "cell {clients}/{backend}/{threads} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .last()
        .unwrap_or_else(|| panic!("cell produced no output"));
    serde_json::from_str(line).unwrap_or_else(|e| panic!("cell output `{line}`: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden subprocess mode: measure one cell, print it as JSON.
    if args.first().map(String::as_str) == Some("--cell") {
        assert_eq!(
            args.len(),
            5,
            "--cell <clients> <backend> <threads> <rounds>"
        );
        let cell = run_cell(
            args[1].parse().expect("clients"),
            &args[2],
            args[3].parse().expect("threads"),
            args[4].parse().expect("rounds"),
        );
        println!("{}", serde_json::to_string(&cell).expect("serialises"));
        return;
    }

    let mut max_clients = 10_000usize;
    let mut rounds = 20u64;
    let mut threads = 4usize;
    let mut out = "BENCH_scale_sweep.json".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--max-clients" => max_clients = val("--max-clients").parse().expect("integer"),
            "--rounds" => rounds = val("--rounds").parse().expect("integer"),
            "--threads" => threads = val("--threads").parse().expect("integer"),
            "--out" => out = val("--out"),
            other => panic!(
                "unknown argument `{other}` (expected --max-clients/--rounds/--threads/--out)"
            ),
        }
    }

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let pools: Vec<usize> = [100usize, 1_000, 10_000]
        .into_iter()
        .filter(|&c| c <= max_clients)
        .collect();
    eprintln!(
        "[scale_sweep] pools {pools:?}, {rounds} rounds, threads 1/{threads}, host parallelism {host}"
    );

    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    println!(
        "{:>8} {:>5} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "clients", "|C|", "backend", "threads", "wall [s]", "rounds/s", "peak RSS"
    );
    for &clients in &pools {
        for (backend, t) in [
            ("lockstep", 1),
            ("lockstep", threads),
            ("event", 1),
            ("event", threads),
        ] {
            let cell = spawn_cell(clients, backend, t, rounds);
            println!(
                "{:>8} {:>5} {:>10} {:>8} {:>12.3} {:>12.2} {:>10.1}MB",
                cell.clients,
                cell.clients_per_round,
                cell.backend,
                cell.threads,
                cell.wall_clock_sec,
                cell.rounds_per_sec,
                cell.peak_rss_bytes as f64 / 1e6
            );
            cells.push(cell);
        }
        let sequential = cells
            .iter()
            .find(|c| c.clients == clients && c.backend == "lockstep" && c.threads == 1)
            .expect("sequential cell measured")
            .wall_clock_sec;
        let event = cells
            .iter()
            .find(|c| c.clients == clients && c.backend == "event" && c.threads == threads)
            .expect("event cell measured")
            .wall_clock_sec;
        speedups.push((clients, sequential / event));
    }
    for &(clients, s) in &speedups {
        println!("{clients:>8} clients: event({threads}) is {s:.2}x sequential lockstep");
    }

    let sweep = Sweep {
        host_parallelism: host,
        rounds,
        threads,
        cells,
        speedup_event_vs_sequential: speedups,
    };
    let json = serde_json::to_string_pretty(&sweep).expect("serialises");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("[scale_sweep] wrote {out}");
}
