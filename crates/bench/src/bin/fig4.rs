//! Fig. 4: accuracy over rounds for every static policy under different
//! non-IID levels (IID, 10, 5, 2 classes per client) with fixed
//! resources (2 CPUs per client) — §5.2.3.
//!
//! One panel per policy; each panel holds four curves.

use tifl_bench::{header, print_accuracy_over_rounds, HarnessArgs, PolicyOutcome};
use tifl_core::experiment::{DataScenario, ExperimentConfig};
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn config_for(k: Option<usize>, seed: u64, rounds: u64) -> ExperimentConfig {
    let mut cfg = match k {
        None => {
            let mut c = ExperimentConfig::cifar10_noniid(10, seed);
            c.data = DataScenario::Iid { per_client: 400 };
            c.name = "cifar10/iid".into();
            c
        }
        Some(k) => ExperimentConfig::cifar10_noniid(k, seed),
    };
    cfg.rounds = rounds;
    cfg
}

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let rounds = args.rounds_or(500);
    let levels: [(&str, Option<usize>); 4] = [
        ("IID", None),
        ("non-IID(10)", Some(10)),
        ("non-IID(5)", Some(5)),
        ("non-IID(2)", Some(2)),
    ];

    // One config + runner per non-IID level: each level profiles once
    // and serves all five policy curves.
    let cfgs: Vec<ExperimentConfig> = levels
        .iter()
        .map(|&(_, k)| config_for(k, seed, rounds))
        .collect();
    let mut runners: Vec<_> = cfgs.iter().map(|c| c.runner()).collect();

    let mut all = Vec::new();
    for (panel, policy) in Policy::cifar_set(5).iter().enumerate() {
        let mut outcomes = Vec::new();
        for ((label, _), runner) in levels.iter().zip(runners.iter_mut()) {
            eprintln!("[fig4] {} / {label} ...", policy.name);
            let mut o = PolicyOutcome::from(&runner.policy(policy).run());
            o.policy = (*label).to_string();
            outcomes.push(o);
        }
        header(
            &format!("Fig. 4({})", (b'a' + panel as u8) as char),
            &format!("policy `{}` under non-IID levels", policy.name),
        );
        print_accuracy_over_rounds(&outcomes, 8);
        println!();
        for o in &outcomes {
            println!("{:<12} final {:.3}", o.policy, o.final_accuracy);
        }
        all.push((policy.name.clone(), outcomes));
    }

    args.maybe_dump_json(&all);
}
