//! Fig. 3: CIFAR-10 selection-policy comparison under resource
//! heterogeneity (column 1) and data-quantity heterogeneity (column 2).
//!
//! Reproduces all six panels: training-time bars (a, b), accuracy over
//! rounds (c, d) and accuracy over virtual time (e, f) for the policies
//! vanilla / slow / uniform / random / fast.
//!
//! Usage: `cargo run -p tifl-bench --release --bin fig3 [--rounds N]`

use tifl_bench::{
    header, print_accuracy_over_rounds, print_accuracy_over_time, print_summary, print_time_bars,
    HarnessArgs, PolicyOutcome,
};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_sweep::SweepBuilder;

fn run_column(cfg: &ExperimentConfig) -> Vec<PolicyOutcome> {
    // One sweep manifest per configuration: the scheduler's shared
    // profile cache plays the old per-runner cache's role — every
    // policy curve reuses one profiling pass — and the curves run in
    // parallel across the host's cores.
    let sweep = SweepBuilder::new(cfg.clone())
        .policies(&Policy::cifar_set(cfg.tiering.num_tiers))
        .run();
    assert!(sweep.profiles_computed <= 1, "profiled more than once");
    sweep
        .into_reports()
        .iter()
        .map(PolicyOutcome::from)
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);

    let mut resource = ExperimentConfig::cifar10_resource_het(seed);
    resource.rounds = args.rounds_or(resource.rounds);
    let mut quantity = ExperimentConfig::cifar10_quantity_het(seed);
    quantity.rounds = args.rounds_or(quantity.rounds);

    let col1 = run_column(&resource);
    let col2 = run_column(&quantity);

    header("Fig. 3(a)", "training time, resource heterogeneity");
    print_time_bars(&col1);
    header("Fig. 3(b)", "training time, data-quantity heterogeneity");
    print_time_bars(&col2);
    header("Fig. 3(c)", "accuracy over rounds, resource heterogeneity");
    print_accuracy_over_rounds(&col1, 5);
    header(
        "Fig. 3(d)",
        "accuracy over rounds, data-quantity heterogeneity",
    );
    print_accuracy_over_rounds(&col2, 5);
    header("Fig. 3(e)", "accuracy over time, resource heterogeneity");
    print_accuracy_over_time(&col1, 10);
    header(
        "Fig. 3(f)",
        "accuracy over time, data-quantity heterogeneity",
    );
    print_accuracy_over_time(&col2, 10);
    header("Fig. 3 summary", "per-policy totals");
    println!("-- resource heterogeneity --");
    print_summary(&col1);
    println!("-- data-quantity heterogeneity --");
    print_summary(&col2);

    args.maybe_dump_json(&(col1, col2));
}
