//! Table 2: estimated vs actual training time and MAPE for the static
//! policies slow / uniform / random / fast (§5.2.1).
//!
//! The estimate is Eq. 6 over the profiled tier latencies; the actual is
//! the virtual time measured by running the full training.

use tifl_bench::{header, HarnessArgs};
use tifl_core::estimator::mape;
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.rounds = args.rounds_or(cfg.rounds);

    let mut runner = cfg.runner();
    let (assignment, profile) = runner.profile().clone();
    header(
        "Table 1",
        "scheduling policy configurations (selection probabilities)",
    );
    println!("{:<10} tier probabilities (fastest first)", "policy");
    for p in Policy::cifar_set(5)
        .iter()
        .chain(Policy::mnist_set(5).iter().skip(1))
    {
        if p.is_vanilla() {
            println!("{:<10} (no tiering: uniform over all clients)", p.name);
        } else {
            let probs: Vec<String> = p.probs.iter().map(|x| format!("{x:.4}")).collect();
            println!("{:<10} [{}]", p.name, probs.join(", "));
        }
    }

    header("profiled tiers", "mean response latency per tier");
    for (t, l) in assignment.tier_latencies().iter().enumerate() {
        println!(
            "tier {t}: {:>8.2} s  ({} clients)",
            l,
            assignment.tiers[t].clients.len()
        );
    }
    println!(
        "profiling cost: {:.0} virtual seconds",
        profile.profiling_time
    );

    header("Table 2", "estimated vs actual training time");
    println!(
        "{:<10} {:>14} {:>12} {:>9}",
        "policy", "estimated [s]", "actual [s]", "MAPE [%]"
    );
    let mut rows = Vec::new();
    for policy in [
        Policy::slow(5),
        Policy::uniform(5),
        Policy::random5(5),
        Policy::fast(5),
    ] {
        eprintln!("[table2] {} ...", policy.name);
        let est = runner.estimate(&policy);
        let actual = runner.policy(&policy).run().total_time();
        let err = mape(est, actual);
        println!("{:<10} {est:>14.0} {actual:>12.0} {err:>9.2}", policy.name);
        rows.push((policy.name.clone(), est, actual, err));
    }

    args.maybe_dump_json(&rows);
}
