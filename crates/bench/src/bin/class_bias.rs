//! Per-class bias analysis: *why* aggressive fast-tier policies lose
//! accuracy under non-IID data (§5.2.3 / §5.2.4).
//!
//! Under non-IID(2) with quantity skew, the classes held mostly by slow
//! tiers are starved when only the fast tier trains. This binary prints
//! the per-class accuracy of the final model under vanilla / fast /
//! uniform, plus the class spread (max − min) as a bias score.

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let mut cfg = ExperimentConfig::cifar10_combine(2, seed);
    cfg.rounds = args.rounds_or(300);

    let mut runner = cfg.runner();
    let mut rows: Vec<(String, Vec<Option<f64>>, f64)> = Vec::new();
    for policy in [Policy::vanilla(), Policy::fast(5), Policy::uniform(5)] {
        eprintln!("[class_bias] {} ...", policy.name);
        let (report, session) = runner.policy(&policy).run_with_session();
        let per_class = session.evaluate_global_per_class();
        let present: Vec<f64> = per_class.iter().flatten().copied().collect();
        let spread = present.iter().copied().fold(0.0f64, f64::max)
            - present.iter().copied().fold(1.0f64, f64::min);
        println!(
            "{}: overall {:.3}, class spread {:.3}",
            policy.name,
            report.final_accuracy(),
            spread
        );
        rows.push((policy.name.clone(), per_class, spread));
    }

    header(
        "class bias",
        &format!("{} ({} rounds): per-class accuracy", cfg.name, cfg.rounds),
    );
    print!("{:<10}", "class");
    for (name, _, _) in &rows {
        print!(" {name:>9}");
    }
    println!();
    let classes = rows[0].1.len();
    for c in 0..classes {
        print!("{c:<10}");
        for (_, per_class, _) in &rows {
            match per_class[c] {
                Some(a) => print!(" {a:>9.3}"),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    println!("\nspread (max-min per-class accuracy; higher = more biased):");
    for (name, _, spread) in &rows {
        println!("  {name:<10} {spread:.3}");
    }

    args.maybe_dump_json(&rows);
}
