//! Fig. 1(a): average training time per round vs CPU share and data
//! size — the §3.3 heterogeneity case study.
//!
//! Grid: CPU shares {4, 2, 1, 1/3, 1/5} x data sizes
//! {500, 1000, 2000, 5000}, using the CIFAR-10 experiment's model cost.
//! The paper's observations to reproduce: latency grows near-linearly
//! with data size at fixed CPUs and shrinks as CPU share grows.

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_sim::latency::{LatencyModel, TrainingTask};

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let cfg = ExperimentConfig::cifar10_resource_het(seed);
    let model = cfg.model.build(seed);
    let latency = LatencyModel::new(cfg.latency);

    let cpus = [4.0, 2.0, 1.0, 1.0 / 3.0, 1.0 / 5.0];
    let sizes = [500usize, 1000, 2000, 5000];

    header(
        "Fig. 1(a)",
        "avg per-round training time [s] by CPU share and data size",
    );
    print!("{:>12}", "data \\ cpu");
    for c in cpus {
        print!(" {c:>9.2}");
    }
    println!();

    let mut rows = Vec::new();
    for &n in &sizes {
        let task = TrainingTask {
            samples: n,
            epochs: 1,
            flops_per_sample: model.flops_per_sample(),
            update_bytes: model.update_bytes(),
            upload_bytes: None,
        };
        print!("{n:>12}");
        let mut row = Vec::new();
        for &c in &cpus {
            let l = latency.nominal_latency(&task, c, 1_000_000.0);
            print!(" {l:>9.1}");
            row.push(l);
        }
        println!();
        rows.push((n, row));
    }

    // The two scaling laws of §3.3.
    let t_500_4 = rows[0].1[0];
    let t_5000_4 = rows[3].1[0];
    println!(
        "\nscaling with data (4 CPUs): 500 -> 5000 points = {:.1}x slower",
        t_5000_4 / t_500_4
    );
    let t_500_slowest = rows[0].1[4];
    println!(
        "scaling with CPU (500 points): 4 -> 1/5 CPUs = {:.1}x slower",
        t_500_slowest / t_500_4
    );

    args.maybe_dump_json(&rows);
}
