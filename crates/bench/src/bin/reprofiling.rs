//! §4.2 extension: periodic re-profiling under drifting device
//! performance.
//!
//! Plants a regime switch (the fastest hardware group slows 20x at
//! mid-run) and compares the `fast` policy with stale tiers against the
//! same policy with periodic re-profiling, plus vanilla for reference.

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;
use tifl_sim::DriftModel;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let rounds = args.rounds_or(200);

    let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
    cfg.rounds = rounds;
    // Devices of the fastest group (ids 0..10) slow down 20x halfway.
    let mut factors = vec![1.0; cfg.num_clients];
    for f in factors.iter_mut().take(cfg.num_clients / 5) {
        *f = 0.05;
    }
    cfg.drift = DriftModel::RegimeSwitch {
        at_round: rounds / 2,
        factors,
    };

    let mut runner = cfg.runner();
    eprintln!("[reprofiling] vanilla ...");
    let vanilla = runner.vanilla().run();
    eprintln!("[reprofiling] fast, stale tiers ...");
    let stale = runner.policy(&Policy::fast(5)).run();
    eprintln!(
        "[reprofiling] fast, re-profiling every {} rounds ...",
        rounds / 8
    );
    let fresh = runner.reprofile_every(rounds / 8).run();

    header(
        "re-profiling",
        &format!(
            "regime switch at round {} (fast group slows 20x)",
            rounds / 2
        ),
    );
    println!("{:<18} {:>12} {:>11}", "variant", "time [s]", "final acc");
    for r in [&vanilla, &stale, &fresh] {
        println!(
            "{:<18} {:>12.0} {:>11.3}",
            r.policy,
            r.total_time(),
            r.final_accuracy()
        );
    }
    println!(
        "\nstale tiers keep selecting the slowed devices after the switch;\nperiodic re-profiling re-tiers and recovers the speedup — the paper's\nrationale for running the profiler periodically (§4.2)."
    );

    args.maybe_dump_json(&[
        ("vanilla", vanilla.total_time(), vanilla.final_accuracy()),
        ("fast-stale", stale.total_time(), stale.final_accuracy()),
        ("fast-reprofile", fresh.total_time(), fresh.final_accuracy()),
    ]);
}
