//! §4.6 privacy-amplification accounting: vanilla `q` vs tiered `q_max`
//! for every static policy.

use tifl_bench::{header, HarnessArgs};
use tifl_core::policy::Policy;
use tifl_core::privacy::{compare, DpGuarantee};

fn main() {
    let args = HarnessArgs::parse();
    let _ = args.seed_or(42);
    let base = DpGuarantee::new(1.0, 1e-5);
    let k = 50;
    let c = 5;
    let tier_sizes = [10usize; 5];

    header(
        "Sec. 4.6",
        "client-level DP amplification: vanilla vs tiered selection",
    );
    println!(
        "base per-round guarantee: ({}, {})",
        base.epsilon, base.delta
    );
    println!(
        "pool |K| = {k}, per-round |C| = {c}, tiers = {:?}\n",
        tier_sizes
    );
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>14}",
        "policy", "q_vanilla", "q_max", "eps (tiered)", "delta (tiered)"
    );
    let mut rows = Vec::new();
    for policy in Policy::cifar_set(5).into_iter().skip(1) {
        let cmp = compare(base, k, c, &tier_sizes, &policy.probs);
        println!(
            "{:<10} {:>10.4} {:>12.4} {:>14.4} {:>14.2e}",
            policy.name, cmp.q_vanilla, cmp.q_max, cmp.tiered.epsilon, cmp.tiered.delta
        );
        rows.push((policy.name.clone(), cmp));
    }
    println!(
        "\nuniform tiering matches vanilla exactly (q_max = |C|/|K|); policies\nthat concentrate on one tier raise q_max and so weaken (but never\ninvalidate) the amplified guarantee — §4.6's compatibility claim."
    );

    args.maybe_dump_json(&rows);
}
