//! Fig. 9: LEAF/FEMNIST with default data heterogeneity plus resource
//! heterogeneity — all static policies and adaptive — §5.2.6.
//!
//! Paper scale is 182 clients x 2000 rounds; pass `--rounds 300` for a
//! quick shape check.

use tifl_bench::{
    header, print_accuracy_over_rounds, print_summary, print_time_bars, HarnessArgs, PolicyOutcome,
};
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;
use tifl_leaf::LeafExperiment;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let mut exp = LeafExperiment::paper(seed);
    exp.rounds = args.rounds_or(exp.rounds);

    let mut runner = exp.runner();
    let mut outcomes = Vec::new();
    for p in Policy::cifar_set(exp.tiering.num_tiers) {
        eprintln!("[fig9] {} ...", p.name);
        outcomes.push(PolicyOutcome::from(&runner.policy(&p).run()));
    }
    eprintln!("[fig9] adaptive ...");
    let mut a = PolicyOutcome::from(&runner.adaptive(None).run());
    a.policy = "TiFL".into();
    outcomes.push(a);

    header("Fig. 9(a)", "training time for 2000 rounds, LEAF/FEMNIST");
    print_time_bars(&outcomes);
    header("Fig. 9(b)", "accuracy over rounds, LEAF/FEMNIST");
    print_accuracy_over_rounds(&outcomes, 5);
    header("Fig. 9 summary", "per-policy totals");
    print_summary(&outcomes);

    let vanilla_t = outcomes[0].total_time;
    let tifl_t = outcomes.last().unwrap().total_time;
    println!(
        "\nadaptive speedup over vanilla: {:.1}x",
        vanilla_t / tifl_t
    );

    args.maybe_dump_json(&outcomes);
}
