//! §4.6 in practice: end-to-end training with client-level DP updates
//! (clip + Gaussian noise), comparing vanilla and uniform tier selection
//! across noise levels.
//!
//! The accounting side (q, q_max amplification) is printed by the
//! `privacy` binary; this one measures the accuracy cost of the
//! mechanism itself and verifies tiering composes with it.

use tifl_bench::{header, HarnessArgs};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;
use tifl_fl::client::DpNoiseConfig;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);

    header(
        "DP training",
        "accuracy under clip-and-noise client updates (clip = 1.0)",
    );
    println!(
        "{:<18} {:>10} {:>18} {:>18}",
        "noise multiplier", "policy", "final accuracy", "time [s]"
    );
    let mut rows = Vec::new();
    for z in [0.0f32, 0.01, 0.05, 0.2] {
        let mut cfg = ExperimentConfig::cifar10_resource_het(seed);
        cfg.rounds = args.rounds_or(200);
        cfg.client.dp = Some(DpNoiseConfig {
            clip: 1.0,
            noise_multiplier: z,
        });
        let mut runner = cfg.runner();
        for policy in [Policy::vanilla(), Policy::uniform(5)] {
            eprintln!("[dp] z={z} {} ...", policy.name);
            let report = runner.policy(&policy).run();
            println!(
                "{z:<18} {:>10} {:>18.3} {:>18.0}",
                report.policy,
                report.final_accuracy(),
                report.total_time()
            );
            rows.push((z, report.policy.clone(), report.final_accuracy()));
        }
    }
    println!(
        "\nExpected shape: accuracy degrades smoothly with the noise multiplier\nand tiered selection tracks vanilla at every level — tiering is\ncompatible with client-level DP (§4.6)."
    );

    args.maybe_dump_json(&rows);
}
