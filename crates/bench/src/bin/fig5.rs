//! Fig. 5: MNIST (column 1) and Fashion-MNIST (column 2) with resource
//! plus data heterogeneity, policies vanilla / uniform / fast1 / fast2 /
//! fast3 — §5.2.4.

use tifl_bench::{
    header, print_accuracy_over_rounds, print_summary, print_time_bars, HarnessArgs, PolicyOutcome,
};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_data::synth::SynthFamily;
use tifl_sweep::SweepBuilder;

fn run_column(family: SynthFamily, seed: u64, rounds: u64) -> Vec<PolicyOutcome> {
    // The policy family rides one sweep manifest (shared profiling
    // pass, parallel curves) instead of a hand-rolled runner loop.
    let cfg = ExperimentConfig::mnist_like_combined(family, seed);
    let sweep = SweepBuilder::new(cfg.clone())
        .rounds(rounds)
        .policies(&Policy::mnist_set(cfg.tiering.num_tiers))
        .run();
    assert!(sweep.profiles_computed <= 1, "profiled more than once");
    sweep
        .into_reports()
        .iter()
        .map(PolicyOutcome::from)
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed_or(42);
    let rounds = args.rounds_or(500);

    let mnist = run_column(SynthFamily::Mnist, seed, rounds);
    let fmnist = run_column(SynthFamily::FashionMnist, seed, rounds);

    header("Fig. 5(a)", "training time, MNIST");
    print_time_bars(&mnist);
    header("Fig. 5(b)", "training time, FMNIST");
    print_time_bars(&fmnist);
    header("Fig. 5(c)", "accuracy over rounds, MNIST");
    print_accuracy_over_rounds(&mnist, 5);
    header("Fig. 5(d)", "accuracy over rounds, FMNIST");
    print_accuracy_over_rounds(&fmnist, 5);
    header("Fig. 5 summary", "per-policy totals");
    println!("-- MNIST --");
    print_summary(&mnist);
    println!("-- FMNIST --");
    print_summary(&fmnist);

    args.maybe_dump_json(&(mnist, fmnist));
}
