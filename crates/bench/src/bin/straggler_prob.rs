//! §3.2 straggler-selection probability (Eqs. 2–5): closed form, the
//! Eq. 5 lower bound, and a Monte-Carlo check.

use tifl_bench::{header, HarnessArgs};
use tifl_core::analysis::{
    prob_hit_stragglers, prob_hit_stragglers_lower_bound, prob_hit_stragglers_monte_carlo,
};
use tifl_tensor::seed_rng;

fn main() {
    let args = HarnessArgs::parse();
    let mut rng = seed_rng(args.seed_or(42));

    header(
        "Eqs. 2-5",
        "probability that vanilla selection hits the slowest level",
    );
    println!(
        "{:>8} {:>8} {:>6} {:>12} {:>12} {:>12}",
        "|K|", "|tau_m|", "|C|", "exact Pr_s", "Eq.5 bound", "Monte-Carlo"
    );
    let cases: [(u64, u64, u64); 6] = [
        (50, 10, 5),   // the paper's synthetic testbed
        (182, 37, 10), // the LEAF deployment
        (1_000, 200, 50),
        (10_000, 2_000, 100),
        (100_000, 20_000, 500),
        (1_000_000, 200_000, 1_000),
    ];
    let mut rows = Vec::new();
    for (k, s, c) in cases {
        let exact = prob_hit_stragglers(k, s, c);
        let bound = prob_hit_stragglers_lower_bound(k, s, c);
        let mc = if k <= 10_000 {
            prob_hit_stragglers_monte_carlo(k, s, c, 20_000, &mut rng)
        } else {
            f64::NAN
        };
        println!("{k:>8} {s:>8} {c:>6} {exact:>12.6} {bound:>12.6} {mc:>12.6}");
        rows.push((k, s, c, exact, bound, mc));
    }
    println!(
        "\nAs |K| and |C| grow, Pr_s -> 1: vanilla FL almost always pays the\nstraggler penalty (the paper's motivation for tiering)."
    );

    args.maybe_dump_json(&rows);
}
