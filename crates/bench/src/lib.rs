//! Experiment-harness support for the per-figure binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin` (see DESIGN.md §4 for the index). Binaries accept:
//!
//! * `--rounds N` — override the number of global rounds (paper-scale
//!   defaults can take minutes; `--rounds 100` gives quick shape checks);
//! * `--seed S` — change the root seed;
//! * `--json PATH` — additionally dump the raw series as JSON.
//!
//! All "time" columns are **virtual seconds** from the simulated
//! testbed.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::fmt::Write as _;
use tifl_fl::TrainingReport;

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Override for the round count.
    pub rounds: Option<u64>,
    /// Override for the root seed.
    pub seed: Option<u64>,
    /// Optional JSON dump path.
    pub json: Option<String>,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--rounds" => {
                    let v = args.next().expect("--rounds needs a value");
                    out.rounds = Some(v.parse().expect("--rounds must be an integer"));
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    out.seed = Some(v.parse().expect("--seed must be an integer"));
                }
                "--json" => {
                    out.json = Some(args.next().expect("--json needs a path"));
                }
                other => panic!("unknown argument `{other}` (expected --rounds/--seed/--json)"),
            }
        }
        out
    }

    /// Round count to use given a paper-scale default.
    #[must_use]
    pub fn rounds_or(&self, default: u64) -> u64 {
        self.rounds.unwrap_or(default)
    }

    /// Seed to use given a default.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Write `value` as pretty JSON to the `--json` path, if given.
    pub fn maybe_dump_json<T: Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let s = serde_json::to_string_pretty(value).expect("serialisable");
            std::fs::write(path, s).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote raw series to {path}");
        }
    }
}

/// A labelled experiment outcome used by the tabular printers.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyOutcome {
    /// Policy name.
    pub policy: String,
    /// Total virtual training time (seconds).
    pub total_time: f64,
    /// Final global accuracy.
    pub final_accuracy: f64,
    /// Best global accuracy seen.
    pub best_accuracy: f64,
    /// `(round, accuracy)` curve.
    pub accuracy_over_rounds: Vec<(u64, f64)>,
    /// `(virtual time, accuracy)` curve.
    pub accuracy_over_time: Vec<(f64, f64)>,
}

impl From<&TrainingReport> for PolicyOutcome {
    fn from(r: &TrainingReport) -> Self {
        Self {
            policy: r.policy.clone(),
            total_time: r.total_time(),
            final_accuracy: r.final_accuracy(),
            best_accuracy: r.best_accuracy(),
            accuracy_over_rounds: r.accuracy_over_rounds(),
            accuracy_over_time: r.accuracy_over_time(),
        }
    }
}

/// Print a figure/table header.
pub fn header(id: &str, caption: &str) {
    println!("\n== {id} — {caption} ==");
}

/// Print the training-time bar chart (Figs. 3a/b, 5a/b, 6a/b, 7a, 9a):
/// one row per policy with total virtual training time.
pub fn print_time_bars(outcomes: &[PolicyOutcome]) {
    println!("{:<10} {:>16}", "policy", "train time [s]");
    for o in outcomes {
        println!("{:<10} {:>16.0}", o.policy, o.total_time);
    }
}

/// Print accuracy-over-rounds curves side by side, sampled every
/// `stride` evaluation points (Figs. 3c/d, 4, 5c/d, 8, 9b).
pub fn print_accuracy_over_rounds(outcomes: &[PolicyOutcome], stride: usize) {
    let mut line = format!("{:>7}", "round");
    for o in outcomes {
        let _ = write!(line, " {:>9}", truncate(&o.policy, 9));
    }
    println!("{line}");

    let longest = outcomes
        .iter()
        .map(|o| o.accuracy_over_rounds.len())
        .max()
        .unwrap_or(0);
    for i in (0..longest).step_by(stride.max(1)) {
        let round = outcomes
            .iter()
            .find_map(|o| o.accuracy_over_rounds.get(i).map(|&(r, _)| r));
        let Some(round) = round else { continue };
        let mut line = format!("{round:>7}");
        for o in outcomes {
            match o.accuracy_over_rounds.get(i) {
                Some(&(_, a)) => {
                    let _ = write!(line, " {a:>9.3}");
                }
                None => {
                    let _ = write!(line, " {:>9}", "-");
                }
            }
        }
        println!("{line}");
    }
}

/// Print accuracy-over-virtual-time curves (Figs. 3e/f, 6e/f): for a set
/// of common time checkpoints, the accuracy each policy had reached.
pub fn print_accuracy_over_time(outcomes: &[PolicyOutcome], checkpoints: usize) {
    let t_max = outcomes.iter().map(|o| o.total_time).fold(0.0f64, f64::max);
    let mut line = format!("{:>12}", "time [s]");
    for o in outcomes {
        let _ = write!(line, " {:>9}", truncate(&o.policy, 9));
    }
    println!("{line}");
    for i in 1..=checkpoints {
        let t = t_max * i as f64 / checkpoints as f64;
        let mut line = format!("{t:>12.0}");
        for o in outcomes {
            let acc = o
                .accuracy_over_time
                .iter()
                .take_while(|&&(tt, _)| tt <= t)
                .map(|&(_, a)| a)
                .last();
            match acc {
                Some(a) => {
                    let _ = write!(line, " {a:>9.3}");
                }
                None => {
                    let _ = write!(line, " {:>9}", "-");
                }
            }
        }
        println!("{line}");
    }
}

/// Print a summary row per policy: time, final and best accuracy.
pub fn print_summary(outcomes: &[PolicyOutcome]) {
    println!(
        "{:<10} {:>14} {:>11} {:>11}",
        "policy", "time [s]", "final acc", "best acc"
    );
    for o in outcomes {
        println!(
            "{:<10} {:>14.0} {:>11.3} {:>11.3}",
            o.policy, o.total_time, o.final_accuracy, o.best_accuracy
        );
    }
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_fl::RoundReport;

    fn outcome(name: &str) -> PolicyOutcome {
        let report = TrainingReport {
            policy: name.into(),
            rounds: vec![
                RoundReport {
                    round: 0,
                    time: 1.0,
                    latency: 1.0,
                    selected: vec![0],
                    aggregated: Vec::new(),
                    accuracy: Some(0.5),
                    loss: Some(1.0),
                    bytes_down: 0,
                    bytes_up: 0,
                },
                RoundReport {
                    round: 1,
                    time: 2.0,
                    latency: 1.0,
                    selected: vec![1],
                    aggregated: Vec::new(),
                    accuracy: Some(0.8),
                    loss: Some(0.5),
                    bytes_down: 0,
                    bytes_up: 0,
                },
            ],
        };
        PolicyOutcome::from(&report)
    }

    #[test]
    fn outcome_extracts_series() {
        let o = outcome("x");
        assert_eq!(o.total_time, 2.0);
        assert_eq!(o.final_accuracy, 0.8);
        assert_eq!(o.accuracy_over_rounds.len(), 2);
    }

    #[test]
    fn printers_do_not_panic() {
        let os = vec![outcome("vanilla"), outcome("uniform")];
        print_time_bars(&os);
        print_accuracy_over_rounds(&os, 1);
        print_accuracy_over_time(&os, 4);
        print_summary(&os);
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("abcdef", 3), "abc");
        assert_eq!(truncate("ab", 9), "ab");
    }
}
