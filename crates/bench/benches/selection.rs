//! Per-round selector overhead: vanilla random vs static tiered vs
//! adaptive. Scheduling must cost microseconds against rounds that take
//! (virtual) seconds to minutes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tifl_core::policy::Policy;
use tifl_core::scheduler::{AdaptiveConfig, AdaptiveTierSelector, StaticTierSelector};
use tifl_core::tiering::{TierAssignment, TieringConfig};
use tifl_fl::selector::{ClientSelector, RandomSelector};

fn assignment(clients: usize) -> TierAssignment {
    let latencies: Vec<Option<f64>> = (0..clients).map(|i| Some((i % 100) as f64 + 1.0)).collect();
    TierAssignment::from_latencies(&latencies, &TieringConfig::default())
}

fn bench_selectors(c: &mut Criterion) {
    let clients = 1_000;
    let mut g = c.benchmark_group("select_5_of_1000");

    let mut vanilla = RandomSelector::new(clients, 0);
    g.bench_function("vanilla", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            black_box(vanilla.select(r, 5))
        });
    });

    let mut stat = StaticTierSelector::new(assignment(clients), Policy::uniform(5), 0);
    g.bench_function("static_tiered", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            black_box(stat.select(r, 5))
        });
    });

    let mut adaptive = AdaptiveTierSelector::new(
        assignment(clients),
        AdaptiveConfig {
            interval: 10,
            credits_per_tier: u64::MAX / 2,
            gamma: 2.0,
        },
        0,
    );
    g.bench_function("adaptive", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            if (r + 1).is_multiple_of(10) {
                adaptive.observe(r, &[0.5, 0.6, 0.7, 0.8, 0.9]);
            }
            black_box(adaptive.select(r, 5))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
