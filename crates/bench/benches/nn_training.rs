//! Benchmarks of one local-training step for the experiment models —
//! what the simulator's `flops_per_sample` abstraction stands in for.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tifl_data::synth::{Generator, SynthFamily, SynthSpec};
use tifl_fl::client::{local_train, ClientConfig};
use tifl_nn::models::ModelSpec;

fn bench_local_train(c: &mut Criterion) {
    let gen = Generator::new(SynthSpec::family(SynthFamily::Cifar10), 0);
    let data = gen.generate_uniform(100, 0);
    let cfg = ClientConfig::paper_synthetic();

    let mut g = c.benchmark_group("local_train_100_samples");
    g.sample_size(30);
    for (label, spec) in [
        (
            "logistic",
            ModelSpec::Logistic {
                input: 64,
                classes: 10,
            },
        ),
        (
            "mlp_128",
            ModelSpec::Mlp {
                input: 64,
                hidden: 128,
                classes: 10,
            },
        ),
        (
            "cnn_4_8",
            ModelSpec::Cnn {
                side: 8,
                channels: (4, 8),
                hidden: 32,
                classes: 10,
            },
        ),
    ] {
        let global = spec.build(1).params();
        g.bench_function(label, |b| {
            b.iter(|| {
                local_train(
                    black_box(&spec),
                    black_box(&global),
                    black_box(&data),
                    &cfg,
                    0,
                    0,
                    42,
                )
            });
        });
    }
    g.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let gen = Generator::new(SynthSpec::family(SynthFamily::Cifar10), 0);
    let data = gen.generate_uniform(500, 0);
    let spec = ModelSpec::Mlp {
        input: 64,
        hidden: 128,
        classes: 10,
    };
    let mut model = spec.build(1);
    c.bench_function("evaluate_500_samples", |b| {
        b.iter(|| model.evaluate(black_box(&data.x), black_box(&data.y)));
    });
}

criterion_group!(benches, bench_local_train, bench_evaluate);
criterion_main!(benches);
