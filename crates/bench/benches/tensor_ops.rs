//! Micro-benchmarks for the tensor kernels that dominate local training.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tifl_tensor::{ops, Matrix};

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let v = (r as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(c as u64)
            .wrapping_add(seed);
        (v % 1000) as f32 / 1000.0 - 0.5
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128, 256] {
        let a = mat(n, n, 1);
        let b = mat(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(black_box(&a), black_box(&b)));
        });
    }
    g.finish();
}

fn bench_training_shapes(c: &mut Criterion) {
    // The exact GEMM shapes of a batch-10 step on the experiment MLP.
    let x = mat(10, 64, 1); // batch x input
    let w1 = mat(64, 128, 2);
    let dy = mat(10, 128, 3);
    let mut g = c.benchmark_group("mlp_step_shapes");
    g.bench_function("forward_10x64x128", |b| {
        b.iter(|| ops::matmul(black_box(&x), black_box(&w1)));
    });
    g.bench_function("grad_w_64x10x128", |b| {
        b.iter(|| ops::matmul_transpose_a(black_box(&x), black_box(&dy)));
    });
    g.bench_function("grad_x_10x128x64", |b| {
        // dX = dY * W^T; matmul_transpose_b takes W as stored (in x out)
        // and transposes it internally (exactly Dense::backward's call).
        b.iter(|| ops::matmul_transpose_b(black_box(&dy), black_box(&w1)));
    });
    g.finish();
}

fn bench_vector_ops(c: &mut Criterion) {
    let n = 9_738; // MLP(64,128,10) parameter count
    let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.001).collect();
    let mut out = vec![0.0f32; n];
    c.bench_function("axpy_param_vec", |b| {
        b.iter(|| ops::axpy(black_box(0.5), black_box(&x), black_box(&mut out)));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_training_shapes,
    bench_vector_ops
);
criterion_main!(benches);
