//! Cost of the profiler and the tiering algorithm — TiFL's added
//! machinery must stay negligible next to training (§4.1's
//! "non-intrusive" claim).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tifl_core::profiler::{Profiler, ProfilerConfig};
use tifl_core::tiering::{TierAssignment, TieringConfig};
use tifl_sim::latency::TrainingTask;
use tifl_sim::{Cluster, ClusterConfig};

fn bench_tier_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("tier_assignment");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let latencies: Vec<Option<f64>> = (0..n)
            .map(|i| Some(((i * 37) % 1000) as f64 / 10.0))
            .collect();
        let cfg = TieringConfig::default();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| TierAssignment::from_latencies(black_box(&latencies), &cfg));
        });
    }
    g.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiler");
    for &n in &[50usize, 500, 5_000] {
        let cluster = Cluster::new(&ClusterConfig::equal_groups(
            n,
            &tifl_sim::resource::profiles::CIFAR,
            7,
        ));
        let profiler = Profiler::new(ProfilerConfig::default());
        let task = TrainingTask {
            samples: 400,
            epochs: 1,
            flops_per_sample: 57_000,
            update_bytes: 39_000,
            upload_bytes: None,
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| profiler.profile(black_box(&cluster), |_| task));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tier_assignment, bench_profiler);
criterion_main!(benches);
