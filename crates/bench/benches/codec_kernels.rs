//! Hot-kernel microbenches for the codec/fold path, gated in CI.
//!
//! These are the kernels the allocation-free aggregation round spends
//! its time in: blocked `axpy`/`scale`, decode-side
//! `dequantize_i8_axpy`/`axpy_sparse`, encode-side `quantize_i8_into` /
//! `top_k_by_magnitude_into`, and one whole compensated fold round.
//!
//! The `calibration/axpy_scalar` entry is a host-speed probe: the perf
//! gate divides every time by it before comparing against the
//! checked-in `BENCH_codec_kernels.json`, so the gate measures
//! *relative* kernel cost and survives CI runners of different speeds.
//! Regenerate the baseline with:
//!
//! ```text
//! cargo bench --bench codec_kernels -- --save-baseline BENCH_codec_kernels.json
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tifl_comm::{CodecSpec, EncodeScratch, ErrorFeedback};
use tifl_fl::aggregator::{ClientUpdate, StreamingFold};
use tifl_tensor::{codec, ops, ParamVec};

/// One CIFAR-10-CNN-ish flattened model (order of the paper's models).
const N: usize = 65_536;

fn dense(seed: usize) -> Vec<f32> {
    (0..N)
        .map(|i| ((i * 7 + seed * 131) as f32 * 0.013).sin() * 2.0)
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let x = dense(1);
    let mut out = dense(2);

    // Host-speed probe: always the scalar reference, never gated.
    c.bench_function("calibration/axpy_scalar", |b| {
        b.iter(|| ops::axpy_scalar(black_box(0.25), black_box(&x), black_box(&mut out)));
    });

    c.bench_function("hot/axpy", |b| {
        b.iter(|| ops::axpy(black_box(0.25), black_box(&x), black_box(&mut out)));
    });
    c.bench_function("hot/scale", |b| {
        b.iter(|| ops::scale(black_box(0.999), black_box(&mut out)));
    });

    let (min, scale, codes) = codec::quantize_i8(&x);
    c.bench_function("hot/dequantize_i8_axpy", |b| {
        b.iter(|| {
            codec::dequantize_i8_axpy(
                black_box(0.25),
                black_box(min),
                black_box(scale),
                black_box(&codes),
                black_box(&mut out),
            );
        });
    });

    let picked = codec::top_k_by_magnitude(&x, N / 10);
    let indices: Vec<u32> = picked.iter().map(|&(i, _)| i).collect();
    let values: Vec<f32> = picked.iter().map(|&(_, v)| v).collect();
    let idx_delta = codec::delta_encode_indices(&indices);
    c.bench_function("hot/axpy_sparse", |b| {
        b.iter(|| {
            codec::axpy_sparse(
                black_box(0.25),
                black_box(&idx_delta),
                black_box(&values),
                black_box(&mut out),
            );
        });
    });

    c.bench_function("hot/minmax", |b| {
        b.iter(|| codec::minmax(black_box(&x)));
    });

    let mut code_buf: Vec<i8> = Vec::new();
    c.bench_function("hot/quantize_i8_into", |b| {
        b.iter(|| codec::quantize_i8_into(black_box(&x), black_box(&mut code_buf)));
    });

    let y = dense(9);
    let mut delta: Vec<f32> = Vec::new();
    let mut residual = vec![0.0f32; N];
    c.bench_function("hot/add_into_minmax", |b| {
        b.iter(|| codec::add_into_minmax(black_box(&x), black_box(&y), black_box(&mut delta)));
    });
    let (lo, hi) = codec::minmax(&x);
    c.bench_function("hot/quantize_i8_residual_into", |b| {
        b.iter(|| {
            codec::quantize_i8_residual_into(
                black_box(&x),
                black_box(lo),
                black_box(hi),
                black_box(&mut code_buf),
                black_box(&mut residual),
            );
        });
    });

    let (mut order, mut idx, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    c.bench_function("hot/top_k_into", |b| {
        b.iter(|| {
            codec::top_k_by_magnitude_into(
                black_box(&x),
                black_box(N / 10),
                black_box(&mut order),
                black_box(&mut idx),
                black_box(&mut vals),
            );
        });
    });
}

/// One full steady-state aggregation round per codec: compensated
/// encode + streaming fold + global swap, all on pooled buffers.
fn bench_round(c: &mut Criterion) {
    let clients = 5usize;
    let updates: Vec<ClientUpdate> = (0..clients)
        .map(|cl| ClientUpdate {
            client: cl,
            params: ParamVec(dense(cl + 3)),
            samples: 100 + cl * 17,
        })
        .collect();
    let weights: Vec<f32> = updates.iter().map(|u| u.samples as f32).collect();

    for (label, spec) in [
        ("round/fold_identity", CodecSpec::Identity),
        ("round/fold_quant_i8", CodecSpec::QuantizeI8),
        ("round/fold_topk_0.1", CodecSpec::TopK { frac: 0.1 }),
    ] {
        let mut global = ParamVec::zeros(N);
        let mut feedback = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();
        c.bench_function(label, |b| {
            b.iter(|| {
                let acc = scratch.take_zeroed(N);
                let mut fold = StreamingFold::with_acc(acc, &weights);
                for u in &updates {
                    fold.fold_compensated(&spec, u, &global, &mut feedback, &mut scratch);
                }
                let next = fold.finish_against(&global).expect("non-empty");
                let old = std::mem::replace(&mut global, next);
                scratch.recycle_dense(old);
            });
        });
    }
}

criterion_group!(benches, bench_kernels, bench_round);
criterion_main!(benches);
