//! End-to-end cost of one federated round (selection + parallel local
//! training + latency simulation + aggregation + evaluation) — the unit
//! of work every experiment repeats hundreds to thousands of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::Experiment;
use tifl_core::scheduler::StaticTierSelector;
use tifl_fl::selector::RandomSelector;

fn bench_round(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::tiny(7);
    cfg.rounds = u64::MAX / 2; // never stop; rounds are driven manually
    cfg.eval_every = 1;

    let mut g = c.benchmark_group("one_round");
    g.sample_size(20);

    let mut session = cfg.make_session();
    let mut vanilla = RandomSelector::new(cfg.num_clients, 0);
    g.bench_function("vanilla_tiny", |b| {
        b.iter(|| black_box(session.run_round(&mut vanilla)));
    });

    let (assignment, _) = cfg.profile_and_tier();
    let mut session2 = cfg.make_session();
    let mut tiered = StaticTierSelector::new(assignment, Policy::uniform(5), 0);
    g.bench_function("tiered_tiny", |b| {
        b.iter(|| black_box(session2.run_round(&mut tiered)));
    });

    g.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
