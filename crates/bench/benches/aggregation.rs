//! FedAvg aggregation scaling: cost vs number of client updates and
//! model size. The paper's aggregator must absorb updates from up to
//! `|C|` clients per round without becoming the bottleneck.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tifl_fl::aggregator::{aggregate_fedavg, ClientUpdate};
use tifl_tensor::ParamVec;

fn updates(clients: usize, params: usize) -> Vec<ClientUpdate> {
    (0..clients)
        .map(|c| ClientUpdate {
            client: c,
            params: ParamVec((0..params).map(|i| (i + c) as f32 * 1e-4).collect()),
            samples: 100 + c,
        })
        .collect()
}

fn bench_clients(c: &mut Criterion) {
    let mut g = c.benchmark_group("fedavg_by_clients");
    for &n in &[5usize, 10, 50, 200] {
        let ups = updates(n, 9_738);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| aggregate_fedavg(black_box(&ups)));
        });
    }
    g.finish();
}

fn bench_model_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fedavg_by_params");
    for &p in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let ups = updates(5, p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| aggregate_fedavg(black_box(&ups)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_clients, bench_model_size);
criterion_main!(benches);
