//! Client-side error-feedback residuals for lossy codecs.
//!
//! Plain lossy compression discards part of every update and the
//! discarded mass is gone forever; with aggressive sparsification
//! (`TopK` at small fractions) that loss compounds until training
//! stalls — exactly the accuracy collapse the comm sweep showed at
//! `topk(0.1)`. Error feedback (EF-SGD; Karimireddy et al., ICML 2019)
//! fixes this with one per-client vector: whatever the codec failed to
//! transmit this round is remembered and added back into what the
//! client *wants* to send next round, so every coordinate's error is
//! eventually flushed instead of dropped.
//!
//! The residual state lives with the simulation session (it is
//! client-side state in a real deployment), is keyed by client id, and
//! is updated in the canonical fold order both execution backends
//! share — so lockstep and event-driven runs stay bit-for-bit
//! equivalent with EF active. The lossless `Identity` codec bypasses EF
//! entirely, preserving every historical bit-for-bit pin.

use std::collections::BTreeMap;

use tifl_tensor::{codec as kernels, ParamVec};

use crate::codec::{CodecSpec, EncodeScratch, EncodedUpdate};

/// Per-client error-feedback residuals for lossy codecs.
///
/// [`ErrorFeedback::encode`] is a drop-in replacement for
/// [`CodecSpec::encode_with`] on the aggregation path: it compensates
/// the update with the client's residual before encoding, then stores
/// what the codec still failed to represent.
#[derive(Debug, Default)]
pub struct ErrorFeedback {
    residuals: BTreeMap<usize, Vec<f32>>,
}

impl ErrorFeedback {
    /// Empty state: every client's first encode is uncompensated.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients holding a residual.
    #[must_use]
    pub fn tracked_clients(&self) -> usize {
        self.residuals.len()
    }

    /// Drop all residual state (used when a session restores a
    /// checkpoint: residuals are not part of the checkpoint, so a
    /// restored lossy run restarts with clean compensation).
    pub fn reset(&mut self) {
        self.residuals.clear();
    }

    /// Encode `client`'s trained `params` against `base` with residual
    /// compensation.
    ///
    /// * `Identity` — lossless, no residual involved; identical to
    ///   [`CodecSpec::encode_with`].
    /// * `QuantizeI8` — quantizes `params + e`, then stores the new
    ///   quantization error as `e` (bounded by one step per element).
    /// * `TopK` — sparsifies the compensated delta
    ///   `(params − base) + e`, then stores the unsent coordinates of
    ///   that delta as `e`.
    ///
    /// Wire size is unchanged: compensation alters which bits ship, not
    /// how many.
    ///
    /// # Panics
    /// Panics if `params` and `base` differ in length, or if a client's
    /// model length changed between rounds.
    #[must_use]
    pub fn encode(
        &mut self,
        codec: CodecSpec,
        client: usize,
        params: &ParamVec,
        base: &ParamVec,
        scratch: &mut EncodeScratch,
    ) -> EncodedUpdate {
        assert_eq!(params.len(), base.len(), "codec base length mismatch");
        let enc = match codec {
            CodecSpec::Identity => codec.encode_with(params, base, scratch),
            CodecSpec::QuantizeI8 => {
                let e = self
                    .residuals
                    .entry(client)
                    .or_insert_with(|| vec![0.0; params.len()]);
                assert_eq!(e.len(), params.len(), "error-feedback length mismatch");
                // Two fused passes: compensate + range in one, quantize +
                // residual in the other (both bit-for-bit the separate
                // loops they replace).
                let (lo, hi) = kernels::add_into_minmax(params.as_slice(), e, &mut scratch.delta);
                let mut codes = scratch.take_codes();
                let (min, scale) =
                    kernels::quantize_i8_residual_into(&scratch.delta, lo, hi, &mut codes, e);
                EncodedUpdate::QuantI8 {
                    len: params.len(),
                    min,
                    scale,
                    codes,
                }
            }
            CodecSpec::TopK { frac } => {
                let e = self
                    .residuals
                    .entry(client)
                    .or_insert_with(|| vec![0.0; params.len()]);
                assert_eq!(e.len(), params.len(), "error-feedback length mismatch");
                scratch.delta.clear();
                scratch.delta.extend(
                    params
                        .as_slice()
                        .iter()
                        .zip(base.as_slice())
                        .zip(e.iter())
                        .map(|((&p, &b), &r)| (p - b) + r),
                );
                let k = CodecSpec::top_k_of(frac, scratch.delta.len());
                let mut values = scratch.take_vals();
                kernels::top_k_by_magnitude_into(
                    &scratch.delta,
                    k,
                    &mut scratch.order,
                    &mut scratch.indices,
                    &mut values,
                );
                // The residual is the compensated delta with the shipped
                // coordinates zeroed — take it by swapping buffers (the
                // values were already gathered) instead of copying n
                // floats; the old residual becomes next round's delta
                // scratch.
                std::mem::swap(e, &mut scratch.delta);
                for &i in &scratch.indices {
                    e[i as usize] = 0.0;
                }
                let mut idx_delta = scratch.take_idx();
                kernels::delta_encode_indices_into(&scratch.indices, &mut idx_delta);
                EncodedUpdate::SparseDelta {
                    len: scratch.delta.len(),
                    idx_delta,
                    values,
                }
            }
        };
        debug_assert_eq!(enc.wire_bytes(), codec.encoded_bytes(params.len()));
        enc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, seed: u64) -> ParamVec {
        ParamVec(
            (0..n)
                .map(|i| ((i as f32 + seed as f32) * 0.37).sin() * 2.5)
                .collect(),
        )
    }

    #[test]
    fn identity_bypasses_residuals() {
        let mut ef = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();
        let p = params(50, 1);
        let base = params(50, 2);
        let enc = ef.encode(CodecSpec::Identity, 0, &p, &base, &mut scratch);
        assert_eq!(enc, CodecSpec::Identity.encode(&p, &base));
        assert_eq!(ef.tracked_clients(), 0);
    }

    #[test]
    fn first_topk_encode_matches_uncompensated() {
        let mut ef = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();
        let p = params(200, 3);
        let base = params(200, 4);
        let spec = CodecSpec::TopK { frac: 0.1 };
        let enc = ef.encode(spec, 7, &p, &base, &mut scratch);
        assert_eq!(enc, spec.encode(&p, &base), "zero residual must be a no-op");
        assert_eq!(ef.tracked_clients(), 1);
    }

    #[test]
    fn topk_residual_flushes_dropped_coordinates_next_round() {
        // Round 1 drops most of the delta; round 2 must ship the part
        // that was dropped (compensated delta = residual when the new
        // delta is zero).
        let mut ef = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();
        let base = ParamVec::zeros(10);
        let p = ParamVec(vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.4, 0.3, 0.2, 0.1]);
        let spec = CodecSpec::TopK { frac: 0.2 };
        let enc1 = ef.encode(spec, 0, &p, &base, &mut scratch);
        let d1 = enc1.decode(&base);
        // Only the two largest coordinates shipped.
        assert_eq!(d1.0[0], 5.0);
        assert_eq!(d1.0[1], 4.0);
        assert_eq!(d1.0[2], 0.0);
        // Client trains to the same point again: the residual must push
        // the previously-dropped coordinates to the top.
        let enc2 = ef.encode(spec, 0, &p, &base, &mut scratch);
        let d2 = enc2.decode(&base);
        // Compensated delta is [5, 4, 6, 4, ...]: the dropped coord 2
        // (residual 3 + fresh delta 3 = 6) now outranks everything.
        assert_eq!(d2.0[2], 2.0 * 3.0, "residual 3.0 + fresh delta 3.0");
        assert_eq!(d2.0[0], 5.0);
        assert_eq!(
            d2.0[1], 0.0,
            "coord 1 loses its slot to the flushed coord 2"
        );
    }

    #[test]
    fn quantize_residual_is_bounded_by_one_step() {
        let mut ef = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();
        let base = ParamVec::zeros(300);
        let p = params(300, 5);
        for _ in 0..4 {
            let enc = ef.encode(CodecSpec::QuantizeI8, 3, &p, &base, &mut scratch);
            let EncodedUpdate::QuantI8 { scale, .. } = enc else {
                panic!("wrong payload");
            };
            // The stored residual never exceeds a quantization step, so
            // compensation cannot run away.
            let e = &ef.residuals[&3];
            for &r in e {
                assert!(r.abs() <= scale, "residual {r} exceeds step {scale}");
            }
            scratch.recycle(enc);
        }
    }

    #[test]
    fn residuals_are_per_client() {
        let mut ef = ErrorFeedback::new();
        let mut scratch = EncodeScratch::new();
        let base = ParamVec::zeros(40);
        let spec = CodecSpec::TopK { frac: 0.1 };
        let _ = ef.encode(spec, 0, &params(40, 6), &base, &mut scratch);
        // A fresh client's encode must match the uncompensated encode
        // even after another client accumulated a residual.
        let p = params(40, 7);
        let enc = ef.encode(spec, 1, &p, &base, &mut scratch);
        assert_eq!(enc, spec.encode(&p, &base));
        assert_eq!(ef.tracked_clients(), 2);
        ef.reset();
        assert_eq!(ef.tracked_clients(), 0);
    }
}
