//! Update codecs over [`ParamVec`].
//!
//! A codec shrinks what a client uploads after local training. Three
//! schemes cover the design space the compressed-FL literature spans:
//!
//! * [`CodecSpec::Identity`] — raw `f32` weights; the wire carries
//!   `4 * len` bytes and decoding is bit-for-bit lossless, so an
//!   Identity run is *exactly* the historical uncompressed run.
//! * [`CodecSpec::QuantizeI8`] — whole-update affine int8 over the
//!   absolute weights (~4x smaller); reconstruction error is bounded by
//!   one quantization step per element.
//! * [`CodecSpec::TopK`] — magnitude sparsification of the client's
//!   *delta* against the round's global model, shipped as
//!   delta-encoded indices + exact `f32` values; coordinates outside
//!   the top fraction fall back to the global model's values.
//!
//! Wire sizes are data-independent (fixed-width fields), so the latency
//! model can price an upload before training runs, and
//! [`EncodedUpdate::wire_bytes`] always equals
//! [`CodecSpec::encoded_bytes`] for the same parameter count.

use serde::{Deserialize, Serialize};
use tifl_tensor::{codec as kernels, ParamVec};

/// Buffers a recycled pool may hold per shape before excess buffers are
/// dropped (bounds memory when one scratch serves many payload shapes).
const POOL_CAP: usize = 8;

/// Reusable buffers for the encode/fold hot path.
///
/// Encoding a client update needs transient workspace (the dense delta,
/// the top-k selection order) plus the buffers that leave inside the
/// returned [`EncodedUpdate`] (codes, indices, values). A scratch arena
/// owns pools of both kinds so a steady-state round allocates nothing:
/// [`CodecSpec::encode_with`] draws buffers out, and the caller hands
/// them back with [`EncodeScratch::recycle`] once the payload has been
/// folded.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Dense f32 workspace: the delta (or error-compensated update)
    /// being encoded.
    pub(crate) delta: Vec<f32>,
    /// Top-k selection order scratch (packed magnitude-key words).
    pub(crate) order: Vec<u64>,
    /// Absolute-index scratch for sparse encodes.
    pub(crate) indices: Vec<u32>,
    dense_pool: Vec<Vec<f32>>,
    codes_pool: Vec<Vec<i8>>,
    idx_pool: Vec<Vec<u32>>,
    vals_pool: Vec<Vec<f32>>,
}

impl EncodeScratch {
    /// Empty arena; buffers grow to steady-state sizes on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn take_dense(&mut self) -> Vec<f32> {
        let mut b = self.dense_pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    pub(crate) fn take_codes(&mut self) -> Vec<i8> {
        let mut b = self.codes_pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    pub(crate) fn take_idx(&mut self) -> Vec<u32> {
        let mut b = self.idx_pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    pub(crate) fn take_vals(&mut self) -> Vec<f32> {
        let mut b = self.vals_pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    /// Pooled all-zeros vector of length `len` (a FedAvg accumulator or
    /// decode target). Return it via [`EncodeScratch::recycle_dense`].
    #[must_use]
    pub fn take_zeroed(&mut self, len: usize) -> ParamVec {
        let mut b = self.take_dense();
        b.resize(len, 0.0);
        ParamVec(b)
    }

    /// Pooled empty vector (capacity reused) for targets that overwrite
    /// their contents, e.g. `EncodedUpdate::decode_into`.
    #[must_use]
    pub fn take_empty(&mut self) -> ParamVec {
        ParamVec(self.take_dense())
    }

    /// Return a dense vector's buffer to the pool (e.g. the previous
    /// global model displaced by a round's new aggregate).
    pub fn recycle_dense(&mut self, p: ParamVec) {
        if self.dense_pool.len() < POOL_CAP {
            self.dense_pool.push(p.0);
        }
    }

    /// Return a folded payload's buffers to the pools so the next
    /// encode reuses them.
    pub fn recycle(&mut self, enc: EncodedUpdate) {
        match enc {
            EncodedUpdate::Dense(p) => self.recycle_dense(p),
            EncodedUpdate::QuantI8 { codes, .. } => {
                if self.codes_pool.len() < POOL_CAP {
                    self.codes_pool.push(codes);
                }
            }
            EncodedUpdate::SparseDelta {
                idx_delta, values, ..
            } => {
                if self.idx_pool.len() < POOL_CAP {
                    self.idx_pool.push(idx_delta);
                }
                if self.vals_pool.len() < POOL_CAP {
                    self.vals_pool.push(values);
                }
            }
        }
    }
}

/// Which compression scheme encodes client uploads.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum CodecSpec {
    /// Raw full-precision weights (lossless, 4 bytes/param).
    #[default]
    Identity,
    /// Affine int8 quantization of the weights with one
    /// `(min, scale)` pair over the whole flattened update
    /// (1 byte/param + an 8-byte header). A single outlier weight
    /// widens the shared step for every parameter — acceptable for
    /// the homogeneous MLP/CNN updates here; per-layer ranges would
    /// need layer boundaries, which `ParamVec` erases by design.
    QuantizeI8,
    /// Keep the `frac` largest-magnitude coordinates of the delta
    /// against the global model (8 bytes per kept coordinate:
    /// delta-encoded `u32` index + `f32` value).
    TopK {
        /// Fraction of coordinates kept, in (0, 1].
        frac: f64,
    },
}

impl CodecSpec {
    /// Number of coordinates a [`CodecSpec::TopK`] codec keeps for a
    /// `len`-parameter model.
    ///
    /// # Panics
    /// Panics if `frac` is outside (0, 1].
    #[must_use]
    pub fn top_k_of(frac: f64, len: usize) -> usize {
        assert!(
            frac > 0.0 && frac <= 1.0,
            "top-k fraction must be in (0, 1]"
        );
        ((len as f64 * frac).ceil() as usize).clamp(1, len.max(1))
    }

    /// Exact wire size of an encoded `len`-parameter update, in bytes.
    /// Data-independent, so round latency can be planned before any
    /// client trains.
    #[must_use]
    pub fn encoded_bytes(&self, len: usize) -> u64 {
        match *self {
            CodecSpec::Identity => 4 * len as u64,
            CodecSpec::QuantizeI8 => len as u64 + 8,
            CodecSpec::TopK { frac } => {
                if len == 0 {
                    0
                } else {
                    8 * Self::top_k_of(frac, len) as u64
                }
            }
        }
    }

    /// Encode `params` (a client's trained weights) against `base` (the
    /// global model the client trained from; only [`CodecSpec::TopK`]
    /// reads it). Allocates fresh payload buffers; the hot path uses
    /// [`CodecSpec::encode_with`] instead.
    ///
    /// # Panics
    /// Panics if `base` and `params` differ in length.
    #[must_use]
    pub fn encode(&self, params: &ParamVec, base: &ParamVec) -> EncodedUpdate {
        self.encode_with(params, base, &mut EncodeScratch::new())
    }

    /// [`CodecSpec::encode`] drawing every buffer from a reusable
    /// [`EncodeScratch`] arena: at steady state this allocates nothing.
    /// The payload's buffers go back to the arena via
    /// [`EncodeScratch::recycle`] after the fold.
    ///
    /// # Panics
    /// Panics if `base` and `params` differ in length.
    #[must_use]
    pub fn encode_with(
        &self,
        params: &ParamVec,
        base: &ParamVec,
        scratch: &mut EncodeScratch,
    ) -> EncodedUpdate {
        assert_eq!(params.len(), base.len(), "codec base length mismatch");
        let enc = match *self {
            CodecSpec::Identity => {
                let mut buf = scratch.take_dense();
                buf.extend_from_slice(params.as_slice());
                EncodedUpdate::Dense(ParamVec(buf))
            }
            CodecSpec::QuantizeI8 => {
                let mut codes = scratch.take_codes();
                let (min, scale) = kernels::quantize_i8_into(params.as_slice(), &mut codes);
                EncodedUpdate::QuantI8 {
                    len: params.len(),
                    min,
                    scale,
                    codes,
                }
            }
            CodecSpec::TopK { frac } => {
                scratch.delta.clear();
                scratch.delta.extend(
                    params
                        .as_slice()
                        .iter()
                        .zip(base.as_slice())
                        .map(|(&p, &b)| p - b),
                );
                let k = Self::top_k_of(frac, scratch.delta.len());
                let mut values = scratch.take_vals();
                kernels::top_k_by_magnitude_into(
                    &scratch.delta,
                    k,
                    &mut scratch.order,
                    &mut scratch.indices,
                    &mut values,
                );
                let mut idx_delta = scratch.take_idx();
                kernels::delta_encode_indices_into(&scratch.indices, &mut idx_delta);
                EncodedUpdate::SparseDelta {
                    len: scratch.delta.len(),
                    idx_delta,
                    values,
                }
            }
        };
        debug_assert_eq!(enc.wire_bytes(), self.encoded_bytes(params.len()));
        enc
    }

    /// Label decoration for run reports (`None` for the lossless
    /// Identity codec, matching its bit-for-bit equivalence to
    /// unannotated runs).
    #[must_use]
    pub fn label_suffix(&self) -> Option<String> {
        match *self {
            CodecSpec::Identity => None,
            CodecSpec::QuantizeI8 => Some("i8".to_string()),
            CodecSpec::TopK { frac } => Some(format!("topk({frac})")),
        }
    }
}

/// One encoded client upload: the wire format plus everything needed to
/// fold it into a FedAvg accumulator without materialising a dense
/// per-client intermediate.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedUpdate {
    /// Raw weights ([`CodecSpec::Identity`]).
    Dense(ParamVec),
    /// Affine int8 weights ([`CodecSpec::QuantizeI8`]).
    QuantI8 {
        /// Parameter count.
        len: usize,
        /// Dequantization offset.
        min: f32,
        /// Dequantization step.
        scale: f32,
        /// One signed byte per parameter.
        codes: Vec<i8>,
    },
    /// Sparse delta against the round's global model
    /// ([`CodecSpec::TopK`]).
    SparseDelta {
        /// Parameter count of the dense model.
        len: usize,
        /// Delta-encoded ascending coordinate indices.
        idx_delta: Vec<u32>,
        /// Exact `f32` delta values, aligned with `idx_delta`.
        values: Vec<f32>,
    },
}

impl EncodedUpdate {
    /// Dense parameter count this payload reconstructs to.
    #[must_use]
    pub fn param_len(&self) -> usize {
        match self {
            EncodedUpdate::Dense(p) => p.len(),
            EncodedUpdate::QuantI8 { len, .. } | EncodedUpdate::SparseDelta { len, .. } => *len,
        }
    }

    /// Exact bytes this payload occupies on the wire (fixed-width
    /// fields; headers smaller than a cache line are ignored, matching
    /// how `update_bytes` counts the dense format).
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        match self {
            EncodedUpdate::Dense(p) => 4 * p.len() as u64,
            EncodedUpdate::QuantI8 { codes, .. } => codes.len() as u64 + 8,
            EncodedUpdate::SparseDelta { values, .. } => 8 * values.len() as u64,
        }
    }

    /// True when the payload encodes a delta against the global model
    /// (the fold must add the base back in).
    #[must_use]
    pub fn is_delta(&self) -> bool {
        matches!(self, EncodedUpdate::SparseDelta { .. })
    }

    /// `acc += coeff * decode(self)` — without materialising the dense
    /// decoded vector. For a delta payload this folds *only the delta
    /// part*; the caller owes `acc += coeff * base` (accumulated across
    /// updates and applied once, see `StreamingFold::finish_against`).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn axpy_into(&self, coeff: f32, acc: &mut ParamVec) {
        assert_eq!(self.param_len(), acc.len(), "encoded fold length mismatch");
        match self {
            EncodedUpdate::Dense(p) => acc.axpy(coeff, p),
            EncodedUpdate::QuantI8 {
                min, scale, codes, ..
            } => kernels::dequantize_i8_axpy(coeff, *min, *scale, codes, &mut acc.0),
            EncodedUpdate::SparseDelta {
                idx_delta, values, ..
            } => kernels::axpy_sparse(coeff, idx_delta, values, &mut acc.0),
        }
    }

    /// Materialise the decoded weights (`base` is read only by delta
    /// payloads). Test/diagnostic path; the hot path folds via
    /// [`EncodedUpdate::axpy_into`] or decodes into a pooled buffer via
    /// [`EncodedUpdate::decode_into`].
    ///
    /// # Panics
    /// Panics on a length mismatch.
    #[must_use]
    pub fn decode(&self, base: &ParamVec) -> ParamVec {
        let mut out = ParamVec::default();
        self.decode_into(base, &mut out);
        out
    }

    /// [`EncodedUpdate::decode`] into a caller-owned buffer (cleared and
    /// resized first), bit-for-bit identical to the allocating form.
    ///
    /// # Panics
    /// Panics if a delta payload's `base` differs in length.
    pub fn decode_into(&self, base: &ParamVec, out: &mut ParamVec) {
        match self {
            EncodedUpdate::Dense(p) => {
                out.0.clear();
                out.0.extend_from_slice(p.as_slice());
            }
            EncodedUpdate::QuantI8 { len, .. } => {
                out.0.clear();
                out.0.resize(*len, 0.0);
                self.axpy_into(1.0, out);
            }
            EncodedUpdate::SparseDelta { len, .. } => {
                assert_eq!(base.len(), *len, "decode base length mismatch");
                out.0.clear();
                out.0.extend_from_slice(base.as_slice());
                self.axpy_into(1.0, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, seed: u64) -> ParamVec {
        ParamVec(
            (0..n)
                .map(|i| ((i as f32 + seed as f32) * 0.37).sin() * 2.5)
                .collect(),
        )
    }

    #[test]
    fn identity_round_trips_bit_for_bit() {
        let p = params(100, 1);
        let base = params(100, 2);
        let enc = CodecSpec::Identity.encode(&p, &base);
        assert_eq!(enc.decode(&base), p);
        assert_eq!(enc.wire_bytes(), 400);
    }

    #[test]
    fn quantize_error_bounded_by_step() {
        let p = params(500, 3);
        let base = ParamVec::zeros(500);
        let enc = CodecSpec::QuantizeI8.encode(&p, &base);
        let EncodedUpdate::QuantI8 { scale, .. } = &enc else {
            panic!("wrong payload");
        };
        let step = *scale;
        let decoded = enc.decode(&base);
        for (x, y) in p.as_slice().iter().zip(decoded.as_slice()) {
            assert!(
                (x - y).abs() <= step,
                "error {} > step {step}",
                (x - y).abs()
            );
        }
        assert_eq!(enc.wire_bytes(), 508);
    }

    #[test]
    fn topk_preserves_top_fraction_exactly_and_base_elsewhere() {
        let p = params(200, 4);
        let base = params(200, 9);
        let spec = CodecSpec::TopK { frac: 0.1 };
        let enc = spec.encode(&p, &base);
        let decoded = enc.decode(&base);
        let mut deltas: Vec<(usize, f32)> = p
            .as_slice()
            .iter()
            .zip(base.as_slice())
            .map(|(&a, &b)| a - b)
            .enumerate()
            .collect();
        deltas.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        let kept: Vec<usize> = deltas[..20].iter().map(|&(i, _)| i).collect();
        for i in 0..200 {
            if kept.contains(&i) {
                // Exact reconstruction at kept coordinates: base + delta
                // with the exact f32 delta.
                let expect = base.0[i] + (p.0[i] - base.0[i]);
                assert_eq!(decoded.0[i], expect, "coordinate {i}");
            } else {
                assert_eq!(decoded.0[i], base.0[i], "coordinate {i} must keep base");
            }
        }
        assert_eq!(enc.wire_bytes(), 8 * 20);
    }

    #[test]
    fn wire_bytes_match_planned_bytes() {
        for spec in [
            CodecSpec::Identity,
            CodecSpec::QuantizeI8,
            CodecSpec::TopK { frac: 0.25 },
            CodecSpec::TopK { frac: 1.0 },
        ] {
            for n in [1usize, 7, 256] {
                let p = params(n, 5);
                let enc = spec.encode(&p, &ParamVec::zeros(n));
                assert_eq!(
                    enc.wire_bytes(),
                    spec.encoded_bytes(n),
                    "{spec:?} at {n} params"
                );
            }
        }
    }

    #[test]
    fn lossy_codecs_are_smaller_than_identity() {
        let n = 1000;
        let id = CodecSpec::Identity.encoded_bytes(n);
        assert!(CodecSpec::QuantizeI8.encoded_bytes(n) < id);
        assert!(CodecSpec::TopK { frac: 0.1 }.encoded_bytes(n) < id);
    }

    #[test]
    fn dense_axpy_matches_param_axpy_bitwise() {
        // The Identity fold must be the exact historical axpy.
        let p = params(64, 6);
        let enc = CodecSpec::Identity.encode(&p, &ParamVec::zeros(64));
        let mut a = params(64, 7);
        let mut b = a.clone();
        a.axpy(0.375, &p);
        enc.axpy_into(0.375, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_decorate_only_lossy_codecs() {
        assert_eq!(CodecSpec::Identity.label_suffix(), None);
        assert_eq!(CodecSpec::QuantizeI8.label_suffix().unwrap(), "i8");
        assert_eq!(
            CodecSpec::TopK { frac: 0.1 }.label_suffix().unwrap(),
            "topk(0.1)"
        );
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn topk_rejects_zero_fraction() {
        let _ = CodecSpec::top_k_of(0.0, 10);
    }

    #[test]
    fn encode_with_scratch_is_identical_to_allocating_encode() {
        let p = params(257, 11);
        let base = params(257, 12);
        let mut scratch = EncodeScratch::new();
        for spec in [
            CodecSpec::Identity,
            CodecSpec::QuantizeI8,
            CodecSpec::TopK { frac: 0.1 },
        ] {
            // Round-trip twice so the second pass runs on recycled buffers.
            for _ in 0..2 {
                let enc = spec.encode_with(&p, &base, &mut scratch);
                assert_eq!(enc, spec.encode(&p, &base), "{spec:?}");
                scratch.recycle(enc);
            }
        }
    }

    #[test]
    fn scratch_reuses_recycled_buffers() {
        let p = params(100, 13);
        let base = ParamVec::zeros(100);
        let mut scratch = EncodeScratch::new();
        let enc = CodecSpec::QuantizeI8.encode_with(&p, &base, &mut scratch);
        let EncodedUpdate::QuantI8 { ref codes, .. } = enc else {
            panic!("wrong payload");
        };
        let ptr = codes.as_ptr();
        scratch.recycle(enc);
        let enc2 = CodecSpec::QuantizeI8.encode_with(&p, &base, &mut scratch);
        let EncodedUpdate::QuantI8 { ref codes, .. } = enc2 else {
            panic!("wrong payload");
        };
        assert_eq!(codes.as_ptr(), ptr, "codes buffer must come from the pool");
    }

    #[test]
    fn decode_into_matches_decode() {
        let p = params(64, 14);
        let base = params(64, 15);
        let mut out = ParamVec::default();
        for spec in [
            CodecSpec::Identity,
            CodecSpec::QuantizeI8,
            CodecSpec::TopK { frac: 0.25 },
        ] {
            let enc = spec.encode(&p, &base);
            enc.decode_into(&base, &mut out);
            assert_eq!(out, enc.decode(&base), "{spec:?}");
        }
    }
}
