//! Link models and transfer-cost accounting.

use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};
use tifl_sim::LinkQuality;
use tifl_tensor::split_seed;

/// Converts payload byte-counts into transfer seconds — the one unit
/// every communication cost in the system is expressed in (client
/// uplinks, model downlinks, aggregation planes).
pub trait CommCost {
    /// Seconds for client `c` to upload `bytes`.
    fn uplink_secs(&self, c: usize, bytes: u64) -> f64;
    /// Seconds for client `c` to download `bytes`.
    fn downlink_secs(&self, c: usize, bytes: u64) -> f64;
    /// Fixed per-transfer round-trip cost of client `c`.
    fn rtt_secs(&self, c: usize) -> f64;
}

/// Seconds to move `bytes` over a `bps` link — the scalar conversion
/// behind every [`CommCost`] implementation.
///
/// # Panics
/// Panics if `bps` is not positive.
#[must_use]
pub fn transfer_secs(bytes: u64, bps: f64) -> f64 {
    assert!(bps > 0.0, "bandwidth must be positive");
    bytes as f64 / bps
}

/// How per-client links are generated. All variants are deterministic
/// given a seed, like the CPU-share heterogeneity in
/// `tifl_sim::resource`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum LinkModel {
    /// Every device keeps its configured symmetric `bandwidth_bps` with
    /// zero RTT — bit-for-bit the legacy scalar model.
    #[default]
    ClusterDefault,
    /// One identical directional link for every client.
    Uniform {
        /// Uplink bandwidth in bytes/s.
        up_bps: f64,
        /// Downlink bandwidth in bytes/s.
        down_bps: f64,
        /// Per-transfer RTT in seconds.
        rtt_sec: f64,
    },
    /// Per-client lognormal heterogeneity around median bandwidths
    /// (mean-preserving, like the latency jitter): client `c` draws one
    /// multiplicative factor from `LogNormal(-sigma²/2, sigma)` seeded
    /// by `(seed, c)` and applies it to both directions.
    LogNormal {
        /// Median uplink bandwidth in bytes/s.
        median_up_bps: f64,
        /// Median downlink bandwidth in bytes/s.
        median_down_bps: f64,
        /// Lognormal sigma (0 collapses to `Uniform`).
        sigma: f64,
        /// Per-transfer RTT in seconds.
        rtt_sec: f64,
    },
    /// Bandwidth tiers mirroring the paper's hardware groups: clients
    /// split into `groups` equal contiguous groups, group `g` gets
    /// `up_bps * decay^g` / `down_bps * decay^g` — the
    /// bandwidth-heterogeneous analogue of the CPU-share profiles.
    GroupScaled {
        /// Number of equal-sized contiguous bandwidth groups.
        groups: usize,
        /// Group-0 uplink bandwidth in bytes/s.
        up_bps: f64,
        /// Group-0 downlink bandwidth in bytes/s.
        down_bps: f64,
        /// Per-group bandwidth decay factor in (0, 1].
        decay: f64,
        /// Per-transfer RTT in seconds.
        rtt_sec: f64,
    },
}

impl LinkModel {
    /// Materialise one link per device. `device_bps` supplies each
    /// device's configured scalar bandwidth (used by
    /// [`LinkModel::ClusterDefault`]); `seed` keys the heterogeneity
    /// draws.
    ///
    /// # Panics
    /// Panics on non-positive bandwidths, a negative RTT or sigma, a
    /// zero group count, or a decay outside (0, 1].
    #[must_use]
    pub fn materialize(&self, device_bps: &[f64], seed: u64) -> LinkAssignment {
        let n = device_bps.len();
        let links = match *self {
            LinkModel::ClusterDefault => device_bps
                .iter()
                .map(|&bps| LinkQuality::symmetric(bps))
                .collect(),
            LinkModel::Uniform {
                up_bps,
                down_bps,
                rtt_sec,
            } => {
                assert!(up_bps > 0.0 && down_bps > 0.0, "bandwidth must be positive");
                assert!(rtt_sec >= 0.0, "rtt must be >= 0");
                vec![
                    LinkQuality {
                        up_bps,
                        down_bps,
                        rtt_sec,
                    };
                    n
                ]
            }
            LinkModel::LogNormal {
                median_up_bps,
                median_down_bps,
                sigma,
                rtt_sec,
            } => {
                assert!(
                    median_up_bps > 0.0 && median_down_bps > 0.0,
                    "bandwidth must be positive"
                );
                assert!(sigma >= 0.0, "sigma must be >= 0");
                assert!(rtt_sec >= 0.0, "rtt must be >= 0");
                (0..n)
                    .map(|c| {
                        let factor = if sigma > 0.0 {
                            let dist = LogNormal::new(-sigma * sigma / 2.0, sigma)
                                .expect("valid lognormal");
                            let mut rng =
                                rand::rngs::StdRng::seed_from_u64(split_seed(seed, c as u64));
                            dist.sample(&mut rng)
                        } else {
                            1.0
                        };
                        LinkQuality {
                            up_bps: median_up_bps * factor,
                            down_bps: median_down_bps * factor,
                            rtt_sec,
                        }
                    })
                    .collect()
            }
            LinkModel::GroupScaled {
                groups,
                up_bps,
                down_bps,
                decay,
                rtt_sec,
            } => {
                assert!(groups > 0, "at least one bandwidth group");
                assert!(up_bps > 0.0 && down_bps > 0.0, "bandwidth must be positive");
                assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
                assert!(rtt_sec >= 0.0, "rtt must be >= 0");
                let per = n.div_ceil(groups).max(1);
                (0..n)
                    .map(|c| {
                        let g = (c / per).min(groups - 1) as i32;
                        let f = decay.powi(g);
                        LinkQuality {
                            up_bps: up_bps * f,
                            down_bps: down_bps * f,
                            rtt_sec,
                        }
                    })
                    .collect()
            }
        };
        LinkAssignment { links }
    }
}

/// The materialised per-client link table of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAssignment {
    links: Vec<LinkQuality>,
}

impl LinkAssignment {
    /// The per-client links, indexable by client id.
    #[must_use]
    pub fn links(&self) -> &[LinkQuality] {
        &self.links
    }

    /// Consume into the raw link table (for `Cluster::set_links`).
    #[must_use]
    pub fn into_links(self) -> Vec<LinkQuality> {
        self.links
    }
}

impl CommCost for LinkAssignment {
    fn uplink_secs(&self, c: usize, bytes: u64) -> f64 {
        transfer_secs(bytes, self.links[c].up_bps)
    }

    fn downlink_secs(&self, c: usize, bytes: u64) -> f64 {
        transfer_secs(bytes, self.links[c].down_bps)
    }

    fn rtt_secs(&self, c: usize) -> f64 {
        self.links[c].rtt_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_default_mirrors_device_bandwidths() {
        let a = LinkModel::ClusterDefault.materialize(&[1.0e6, 2.0e6], 0);
        assert_eq!(a.links()[0], LinkQuality::symmetric(1.0e6));
        assert_eq!(a.links()[1], LinkQuality::symmetric(2.0e6));
        assert_eq!(a.uplink_secs(0, 1_000_000), 1.0);
        assert_eq!(a.downlink_secs(1, 1_000_000), 0.5);
        assert_eq!(a.rtt_secs(0), 0.0);
    }

    #[test]
    fn uniform_ignores_device_bandwidths() {
        let m = LinkModel::Uniform {
            up_bps: 1.0e5,
            down_bps: 1.0e6,
            rtt_sec: 0.1,
        };
        let a = m.materialize(&[7.0, 9.0, 11.0], 3);
        assert!(a
            .links()
            .iter()
            .all(|l| l.up_bps == 1.0e5 && l.down_bps == 1.0e6 && l.rtt_sec == 0.1));
    }

    #[test]
    fn lognormal_is_seeded_heterogeneous_and_roughly_mean_preserving() {
        let m = LinkModel::LogNormal {
            median_up_bps: 1.0e6,
            median_down_bps: 4.0e6,
            sigma: 0.5,
            rtt_sec: 0.0,
        };
        let a = m.materialize(&vec![0.0; 2000], 42);
        let b = m.materialize(&vec![0.0; 2000], 42);
        assert_eq!(a, b, "same seed, same links");
        let c = m.materialize(&vec![0.0; 2000], 43);
        assert_ne!(a, c, "different seed, different links");
        let ups: Vec<f64> = a.links().iter().map(|l| l.up_bps).collect();
        assert!(ups.windows(2).any(|w| w[0] != w[1]), "heterogeneous");
        let mean = ups.iter().sum::<f64>() / ups.len() as f64;
        assert!(
            (mean / 1.0e6 - 1.0).abs() < 0.1,
            "mean uplink drifted: {mean}"
        );
        // Asymmetry preserved per client.
        assert!(a
            .links()
            .iter()
            .all(|l| (l.down_bps / l.up_bps - 4.0).abs() < 1e-9));
    }

    #[test]
    fn group_scaled_builds_bandwidth_tiers() {
        let m = LinkModel::GroupScaled {
            groups: 5,
            up_bps: 3.2e6,
            down_bps: 3.2e6,
            decay: 0.5,
            rtt_sec: 0.0,
        };
        let a = m.materialize(&[0.0; 10], 0);
        // 2 clients per group, halving per group: 3.2e6 ... 0.2e6.
        assert_eq!(a.links()[0].up_bps, 3.2e6);
        assert_eq!(a.links()[1].up_bps, 3.2e6);
        assert_eq!(a.links()[2].up_bps, 1.6e6);
        assert_eq!(a.links()[9].up_bps, 0.2e6);
    }

    #[test]
    fn transfer_secs_is_bytes_over_bps() {
        assert_eq!(transfer_secs(500, 1000.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transfer_rejects_zero_bandwidth() {
        let _ = transfer_secs(1, 0.0);
    }
}
