//! Communication modeling and update compression.
//!
//! The paper's central observation is that a client's response latency
//! is dominated by shipping model updates over heterogeneous links —
//! yet the prototype treats communication as a fixed scalar per client
//! and always transfers full-precision weights. This crate makes the
//! wire a first-class concern, in two halves:
//!
//! * **Network model** ([`link`]) — [`LinkModel`] describes per-client
//!   uplink/downlink bandwidth and RTT (uniform, lognormal-heterogeneous
//!   or tiered, seeded like the resource heterogeneity in `tifl_sim`);
//!   materialised into a [`LinkAssignment`] it implements [`CommCost`],
//!   the byte-count → transfer-seconds conversion every latency path
//!   shares (round latency, straggler deadlines, tier profiling,
//!   hierarchical aggregation planes).
//! * **Update codecs** ([`codec`]) — [`CodecSpec`] names a compression
//!   scheme over `ParamVec` updates ([`CodecSpec::Identity`],
//!   [`CodecSpec::QuantizeI8`], [`CodecSpec::TopK`]); encoding yields an
//!   [`EncodedUpdate`] that knows its exact wire byte-count and can fold
//!   itself into a FedAvg accumulator without materialising a dense
//!   intermediate per client.
//!
//! A [`CommSpec`] bundles one codec with one link model (plus an
//! optional hierarchical aggregation plane) and rides on
//! `RunSpec`/`SessionConfig`, so any scenario in the evaluation matrix
//! can become bandwidth-aware and compressed declaratively.

#![forbid(unsafe_code)]

pub mod codec;
pub mod feedback;
pub mod link;

pub use codec::{CodecSpec, EncodeScratch, EncodedUpdate};
pub use feedback::ErrorFeedback;
pub use link::{CommCost, LinkAssignment, LinkModel};

use serde::{Deserialize, Serialize};

/// A hierarchical aggregation plane (master/child aggregators): client
/// updates are absorbed by `ceil(|updates| / fan_out)` child
/// aggregators in parallel, whose dense partial aggregates the master
/// combines. Costs are in [`CommCost`] units — seconds per byte over
/// `plane_bps` (see `tifl_fl::hierarchy::AggregationTree::with_plane`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchySpec {
    /// Maximum client updates handled per child aggregator.
    pub fan_out: usize,
    /// Bandwidth of the aggregation plane in bytes/s.
    pub plane_bps: f64,
}

/// The communication axis of a run: which codec shrinks the uplink and
/// which link model times the transfers.
///
/// The default (`Identity` over [`LinkModel::ClusterDefault`]) is
/// bit-for-bit the historical uncompressed behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CommSpec {
    /// Update codec applied to every client upload.
    #[serde(default)]
    pub codec: CodecSpec,
    /// Link model the transfer times come from.
    #[serde(default)]
    pub link: LinkModel,
    /// Optional master/child aggregation hierarchy; its combine cost is
    /// added to each synchronous round's latency.
    #[serde(default)]
    pub hierarchy: Option<HierarchySpec>,
}

impl CommSpec {
    /// A spec with the given codec over the legacy link model.
    #[must_use]
    pub fn with_codec(codec: CodecSpec) -> Self {
        Self {
            codec,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_legacy_shape() {
        let spec = CommSpec::default();
        assert_eq!(spec.codec, CodecSpec::Identity);
        assert_eq!(spec.link, LinkModel::ClusterDefault);
        assert_eq!(spec.hierarchy, None);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CommSpec {
            codec: CodecSpec::TopK { frac: 0.125 },
            link: LinkModel::Uniform {
                up_bps: 1.0e5,
                down_bps: 1.0e6,
                rtt_sec: 0.05,
            },
            hierarchy: Some(HierarchySpec {
                fan_out: 100,
                plane_bps: 2.0e8,
            }),
        };
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: CommSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn sparse_json_uses_defaults() {
        let spec: CommSpec = serde_json::from_str("{}").expect("empty spec parses");
        assert_eq!(spec, CommSpec::default());
        let spec: CommSpec =
            serde_json::from_str(r#"{"codec": "QuantizeI8"}"#).expect("partial spec parses");
        assert_eq!(spec.codec, CodecSpec::QuantizeI8);
        assert_eq!(spec.link, LinkModel::ClusterDefault);
    }
}
