//! Synthetic image-classification data.
//!
//! Each class `c` owns a prototype vector `p_c`; a sample of class `c`
//! is `brightness * (p_c + style) + noise`, with per-sample Gaussian
//! noise and (for FEMNIST-like data) a per-writer style offset. The
//! *hardness* of a family is controlled by two knobs:
//!
//! * `noise`: per-pixel Gaussian noise scale — more noise, lower
//!   attainable accuracy;
//! * `overlap`: fraction of each prototype shared with a common
//!   direction — more overlap, more confusable classes.
//!
//! The presets reproduce the hardness *ordering* of the paper's corpora
//! (MNIST easiest, CIFAR-10 hardest), which is what the heterogeneity
//! experiments rely on.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use tifl_tensor::{seed_rng, split_seed, Matrix};

/// Named dataset families mirroring the paper's corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthFamily {
    /// MNIST-like: 10 well-separated classes (easy).
    Mnist,
    /// Fashion-MNIST-like: 10 classes, moderate overlap.
    FashionMnist,
    /// CIFAR-10-like: 10 classes, strong overlap and noise (hard).
    Cifar10,
    /// FEMNIST-like: 62 classes with per-writer style offsets.
    Femnist,
}

/// Full generator specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Image side length; feature count is `side * side`.
    pub side: usize,
    /// Number of classes.
    pub classes: usize,
    /// Per-pixel Gaussian noise scale.
    pub noise: f32,
    /// Fraction of each prototype shared with a common direction
    /// (`0.0` = orthogonal-ish classes, `-> 1.0` = nearly identical).
    pub overlap: f32,
    /// Scale of per-writer style offsets (0 disables writer styles).
    pub style_scale: f32,
    /// Brightness jitter half-range (`b ~ U(1-j, 1+j)`).
    pub brightness_jitter: f32,
}

impl SynthSpec {
    /// Preset matched to a named family at the default `8x8` size.
    #[must_use]
    pub fn family(family: SynthFamily) -> Self {
        match family {
            SynthFamily::Mnist => Self {
                side: 8,
                classes: 10,
                noise: 0.95,
                overlap: 0.35,
                style_scale: 0.0,
                brightness_jitter: 0.1,
            },
            SynthFamily::FashionMnist => Self {
                side: 8,
                classes: 10,
                noise: 1.2,
                overlap: 0.5,
                style_scale: 0.0,
                brightness_jitter: 0.2,
            },
            SynthFamily::Cifar10 => Self {
                side: 8,
                classes: 10,
                noise: 1.25,
                overlap: 0.55,
                style_scale: 0.0,
                brightness_jitter: 0.3,
            },
            SynthFamily::Femnist => Self {
                side: 8,
                classes: 62,
                noise: 1.1,
                overlap: 0.5,
                style_scale: 0.4,
                brightness_jitter: 0.2,
            },
        }
    }

    /// Feature count (`side * side`).
    #[must_use]
    pub fn features(&self) -> usize {
        self.side * self.side
    }
}

/// Deterministic sample generator for one [`SynthSpec`].
///
/// Prototypes are derived from the seed alone, so train and test sets
/// generated from the same `(spec, seed)` share the same class geometry
/// — independent draws from the same underlying distribution, exactly
/// like a held-out test split.
pub struct Generator {
    spec: SynthSpec,
    prototypes: Matrix,
    seed: u64,
}

impl Generator {
    /// Build the generator (computes class prototypes).
    #[must_use]
    pub fn new(spec: SynthSpec, seed: u64) -> Self {
        let dim = spec.features();
        let mut rng = seed_rng(split_seed(seed, 0xB007));
        let normal = Normal::new(0.0f32, 1.0).expect("valid normal");
        // Common direction shared by all prototypes (controls overlap).
        let common: Vec<f32> = (0..dim).map(|_| normal.sample(&mut rng)).collect();
        let mut prototypes = Matrix::zeros(spec.classes, dim);
        for c in 0..spec.classes {
            let row = prototypes.row_mut(c);
            for (j, v) in row.iter_mut().enumerate() {
                let own = normal.sample(&mut rng);
                *v = spec.overlap * common[j] + (1.0 - spec.overlap) * own;
            }
        }
        Self {
            spec,
            prototypes,
            seed,
        }
    }

    /// The generator's specification.
    #[must_use]
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Class prototypes (`classes x features`), exposed for tests.
    #[must_use]
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Draw one sample of class `label` with optional writer `style`.
    fn sample_into(&self, label: usize, style: Option<&[f32]>, rng: &mut StdRng, out: &mut [f32]) {
        let normal = Normal::new(0.0f32, self.spec.noise).expect("valid normal");
        let j = self.spec.brightness_jitter;
        let brightness = if j > 0.0 {
            rng.gen_range(1.0 - j..1.0 + j)
        } else {
            1.0
        };
        let proto = self.prototypes.row(label);
        for (i, o) in out.iter_mut().enumerate() {
            let s = style.map_or(0.0, |st| st[i]);
            *o = brightness * (proto[i] + s) + normal.sample(rng);
        }
    }

    /// Generate `labels.len()` samples with the given labels, using the
    /// RNG stream labelled by `stream` (e.g. a client id).
    #[must_use]
    pub fn generate_with_labels(&self, labels: &[usize], stream: u64) -> Dataset {
        self.generate_with_labels_and_style(labels, None, stream)
    }

    /// As [`Generator::generate_with_labels`] but with a writer style
    /// offset added to every sample (FEMNIST-like writers).
    #[must_use]
    pub fn generate_with_labels_and_style(
        &self,
        labels: &[usize],
        style: Option<&[f32]>,
        stream: u64,
    ) -> Dataset {
        let dim = self.spec.features();
        let mut rng = seed_rng(split_seed(self.seed, stream));
        let mut x = Matrix::zeros(labels.len(), dim);
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < self.spec.classes, "label {label} out of range");
            self.sample_into(label, style, &mut rng, x.row_mut(i));
        }
        Dataset::new(x, labels.to_vec(), self.spec.classes)
    }

    /// Generate `n` samples with uniform-random labels (stream-seeded).
    #[must_use]
    pub fn generate_uniform(&self, n: usize, stream: u64) -> Dataset {
        let mut rng = seed_rng(split_seed(self.seed, split_seed(stream, 0x1AB)));
        let labels: Vec<usize> = (0..n)
            .map(|_| rng.gen_range(0..self.spec.classes))
            .collect();
        self.generate_with_labels(&labels, stream)
    }

    /// Generate a balanced set: `per_class` samples of every class, in
    /// label order (callers shuffle if needed).
    #[must_use]
    pub fn generate_balanced(&self, per_class: usize, stream: u64) -> Dataset {
        let labels: Vec<usize> = (0..self.spec.classes)
            .flat_map(|c| std::iter::repeat_n(c, per_class))
            .collect();
        self.generate_with_labels(&labels, stream)
    }

    /// Draw a writer style vector (for FEMNIST-like clients).
    #[must_use]
    pub fn draw_style(&self, writer: u64) -> Vec<f32> {
        let mut rng = seed_rng(split_seed(self.seed, split_seed(writer, 0x577)));
        let normal = Normal::new(0.0f32, self.spec.style_scale).expect("valid normal");
        (0..self.spec.features())
            .map(|_| normal.sample(&mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_order_hardness_by_noise_and_overlap() {
        let m = SynthSpec::family(SynthFamily::Mnist);
        let f = SynthSpec::family(SynthFamily::FashionMnist);
        let c = SynthSpec::family(SynthFamily::Cifar10);
        assert!(m.noise < f.noise && f.noise < c.noise);
        assert!(m.overlap < f.overlap && f.overlap < c.overlap);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::family(SynthFamily::Mnist);
        let g1 = Generator::new(spec, 7);
        let g2 = Generator::new(spec, 7);
        assert_eq!(g1.generate_uniform(10, 3), g2.generate_uniform(10, 3));
    }

    #[test]
    fn different_streams_give_different_samples() {
        let g = Generator::new(SynthSpec::family(SynthFamily::Mnist), 7);
        assert_ne!(g.generate_uniform(10, 0).x, g.generate_uniform(10, 1).x);
    }

    #[test]
    fn balanced_set_has_equal_counts() {
        let g = Generator::new(SynthSpec::family(SynthFamily::Mnist), 1);
        let d = g.generate_balanced(5, 0);
        assert!(d.class_counts().iter().all(|&c| c == 5));
    }

    #[test]
    fn samples_cluster_around_their_prototype() {
        let g = Generator::new(SynthSpec::family(SynthFamily::Mnist), 3);
        let d = g.generate_with_labels(&vec![2; 200], 0);
        let dim = g.spec().features();
        // Mean of many samples should be close to the prototype (scaled by
        // mean brightness = 1).
        let mut mean = vec![0.0f32; dim];
        for i in 0..d.len() {
            for (m, &v) in mean.iter_mut().zip(d.x.row(i)) {
                *m += v / d.len() as f32;
            }
        }
        let proto = g.prototypes().row(2);
        let err: f32 = mean
            .iter()
            .zip(proto)
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / dim as f32;
        assert!(err < 0.15, "mean deviates from prototype by {err}");
    }

    #[test]
    fn style_offsets_shift_samples() {
        let g = Generator::new(SynthSpec::family(SynthFamily::Femnist), 5);
        let style = g.draw_style(1);
        assert!(style.iter().any(|&v| v.abs() > 1e-3));
        let plain = g.generate_with_labels(&[0; 4], 9);
        let styled = g.generate_with_labels_and_style(&[0; 4], Some(&style), 9);
        assert_ne!(plain.x, styled.x);
    }

    #[test]
    fn femnist_has_62_classes() {
        let spec = SynthSpec::family(SynthFamily::Femnist);
        assert_eq!(spec.classes, 62);
    }

    /// A nearest-prototype classifier should do well on MNIST-like data
    /// and clearly worse on CIFAR-10-like data: the hardness ordering the
    /// substitution must preserve.
    #[test]
    fn hardness_ordering_is_observable() {
        let acc = |family: SynthFamily| {
            let g = Generator::new(SynthSpec::family(family), 11);
            let d = g.generate_uniform(400, 0);
            let protos = g.prototypes();
            let mut correct = 0usize;
            for i in 0..d.len() {
                let xi = d.x.row(i);
                let best = (0..protos.rows())
                    .min_by(|&a, &b| {
                        let da: f32 = protos
                            .row(a)
                            .iter()
                            .zip(xi)
                            .map(|(&p, &v)| (p - v) * (p - v))
                            .sum();
                        let db: f32 = protos
                            .row(b)
                            .iter()
                            .zip(xi)
                            .map(|(&p, &v)| (p - v) * (p - v))
                            .sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                if best == d.y[i] {
                    correct += 1;
                }
            }
            correct as f64 / d.len() as f64
        };
        let mnist = acc(SynthFamily::Mnist);
        let cifar = acc(SynthFamily::Cifar10);
        assert!(mnist > 0.9, "mnist-like nearest-prototype accuracy {mnist}");
        assert!(
            cifar < mnist,
            "cifar ({cifar}) should be harder than mnist ({mnist})"
        );
    }
}
