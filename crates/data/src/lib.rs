//! Synthetic federated datasets and non-IID partitioners.
//!
//! The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10 and FEMNIST.
//! Those corpora are not available offline, so this crate generates
//! *synthetic equivalents*: Gaussian class-prototype images whose
//! hardness is tuned per dataset family (see [`synth`]). What the TiFL
//! experiments actually exercise — learnable class structure, a hardness
//! ordering, and sensitivity to skewed partitions — is preserved; see
//! DESIGN.md §2 for the substitution argument.
//!
//! [`partition`] implements the partitioning strategies of §5.1: IID,
//! shard-based sort-by-label (McMahan et al.), class-limited non-IID(k)
//! (Zhao et al.), and the 10/15/20/25/30 % quantity-skew split.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod federated;
pub mod partition;
pub mod synth;

pub use dataset::Dataset;
pub use federated::FederatedDataset;
pub use synth::{SynthFamily, SynthSpec};
