//! Labelled dataset container.

use tifl_tensor::Matrix;

/// A labelled classification dataset: one sample per matrix row.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Features, `samples x features`.
    pub x: Matrix,
    /// Integer labels, one per row of `x`.
    pub y: Vec<usize>,
    /// Number of classes in the label space.
    pub classes: usize,
}

impl Dataset {
    /// Build a dataset, validating shapes and label range.
    ///
    /// # Panics
    /// Panics if `x.rows() != y.len()` or a label is `>= classes`.
    #[must_use]
    pub fn new(x: Matrix, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(
            y.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Self { x, y, classes }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    #[must_use]
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Copy the samples at `indices` into a new dataset.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let x = self.x.gather_rows(indices);
        let y = indices.iter().map(|&i| self.y[i]).collect();
        Dataset {
            x,
            y,
            classes: self.classes,
        }
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }

    /// Number of distinct classes actually present.
    #[must_use]
    pub fn distinct_classes(&self) -> usize {
        self.class_counts().iter().filter(|&&c| c > 0).count()
    }

    /// Split off the first `n` samples as one dataset and the rest as
    /// another (deterministic; callers shuffle indices beforehand if they
    /// want a random split).
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(
            n <= self.len(),
            "split_at({n}) beyond {} samples",
            self.len()
        );
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }

    /// Concatenate datasets with identical feature width and class space.
    ///
    /// # Panics
    /// Panics if `parts` is empty or shapes/classes disagree.
    #[must_use]
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of zero datasets");
        let features = parts[0].features();
        let classes = parts[0].classes;
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut x = Matrix::zeros(total, features);
        let mut y = Vec::with_capacity(total);
        let mut row = 0;
        for d in parts {
            assert_eq!(d.features(), features, "concat feature mismatch");
            assert_eq!(d.classes, classes, "concat class-space mismatch");
            for i in 0..d.len() {
                x.row_mut(row).copy_from_slice(d.x.row(i));
                y.push(d.y[i]);
                row += 1;
            }
        }
        Dataset { x, y, classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let x = Matrix::from_fn(4, 2, |r, _| r as f32);
        Dataset::new(x, vec![0, 1, 0, 2], 3)
    }

    #[test]
    fn new_validates_labels() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.features(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_bad_label() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }

    #[test]
    fn subset_preserves_pairing() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.y, vec![0, 0]);
        assert_eq!(s.x.row(0), &[2.0, 2.0]);
        assert_eq!(s.x.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn class_counts_and_distinct() {
        let d = tiny();
        assert_eq!(d.class_counts(), vec![2, 1, 1]);
        assert_eq!(d.distinct_classes(), 3);
    }

    #[test]
    fn split_at_partitions() {
        let d = tiny();
        let (a, b) = d.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.y, vec![1, 0, 2]);
    }

    #[test]
    fn concat_round_trips_split() {
        let d = tiny();
        let (a, b) = d.split_at(2);
        let c = Dataset::concat(&[&a, &b]);
        assert_eq!(c, d);
    }
}
