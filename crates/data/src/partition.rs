//! Partitioning strategies (§5.1 "Heterogeneous Data Distribution").
//!
//! A partition assigns sample *labels* to clients; the synthetic
//! [`crate::synth::Generator`] then materialises each client's samples.
//! Working in label space keeps the partitioners exact (every client gets
//! precisely the class mix the strategy prescribes) and matches how the
//! paper describes its splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-client label assignment produced by a partitioner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `labels[c]` is the list of sample labels owned by client `c`.
    pub labels: Vec<Vec<usize>>,
    /// Number of classes in the label space.
    pub classes: usize,
}

impl Partition {
    /// Number of clients.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.labels.len()
    }

    /// Total number of samples across clients.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Per-client sample counts.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.labels.iter().map(Vec::len).collect()
    }

    /// Number of distinct classes held by client `c`.
    #[must_use]
    pub fn distinct_classes(&self, c: usize) -> usize {
        let mut seen = vec![false; self.classes];
        for &l in &self.labels[c] {
            seen[l] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

/// IID: every client draws `per_client` labels uniformly from all classes.
#[must_use]
pub fn iid(clients: usize, per_client: usize, classes: usize, rng: &mut StdRng) -> Partition {
    let labels = (0..clients)
        .map(|_| (0..per_client).map(|_| rng.gen_range(0..classes)).collect())
        .collect();
    Partition { labels, classes }
}

/// Shard-based non-IID split of McMahan et al. (used for MNIST/FMNIST in
/// §5.1): sort `total` samples by label, cut into `shards` equal shards,
/// give each client `shards_per_client` shards. With 2 shards per client
/// most clients hold samples from at most two classes.
///
/// # Panics
/// Panics unless `shards == clients * shards_per_client` and shards
/// divide the total evenly.
#[must_use]
pub fn shards(
    clients: usize,
    total: usize,
    classes: usize,
    shards: usize,
    shards_per_client: usize,
    rng: &mut StdRng,
) -> Partition {
    assert_eq!(
        shards,
        clients * shards_per_client,
        "shards must equal clients * shards_per_client"
    );
    assert_eq!(
        total % shards,
        0,
        "total samples must divide evenly into shards"
    );
    let shard_size = total / shards;

    // Balanced label pool sorted by value (the "sort by label" step).
    let mut pool: Vec<usize> = (0..total).map(|i| i * classes / total).collect();
    pool.sort_unstable();

    let mut shard_ids: Vec<usize> = (0..shards).collect();
    shard_ids.shuffle(rng);

    let labels = (0..clients)
        .map(|c| {
            let mut mine = Vec::with_capacity(shards_per_client * shard_size);
            for s in 0..shards_per_client {
                let shard = shard_ids[c * shards_per_client + s];
                mine.extend_from_slice(&pool[shard * shard_size..(shard + 1) * shard_size]);
            }
            mine.shuffle(rng);
            mine
        })
        .collect();
    Partition { labels, classes }
}

/// Class-limited non-IID(k) of Zhao et al. (used for CIFAR-10 in §3.3 and
/// §5.1): every client holds an equal number of samples drawn from
/// exactly `k` classes (chosen per client), `per_client / k` samples per
/// class.
///
/// # Panics
/// Panics if `k == 0`, `k > classes`, or `k` does not divide `per_client`.
#[must_use]
pub fn class_limit(
    clients: usize,
    per_client: usize,
    classes: usize,
    k: usize,
    rng: &mut StdRng,
) -> Partition {
    assert!(k > 0 && k <= classes, "k must be in 1..=classes");
    assert_eq!(per_client % k, 0, "k must divide per_client");
    let per_class = per_client / k;

    let labels = (0..clients)
        .map(|c| {
            // Rotate through classes so coverage is even across clients,
            // then add random extra classes.
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            let start = (c * k) % classes;
            for j in 0..k {
                chosen.push((start + j) % classes);
            }
            // Random swap-in to avoid a fully deterministic pattern.
            if classes > k {
                let replace = rng.gen_range(0..k);
                let candidate = rng.gen_range(0..classes);
                if !chosen.contains(&candidate) {
                    chosen[replace] = candidate;
                }
            }
            let mut mine: Vec<usize> = chosen
                .iter()
                .flat_map(|&cl| std::iter::repeat_n(cl, per_class))
                .collect();
            mine.shuffle(rng);
            mine
        })
        .collect();
    Partition { labels, classes }
}

/// Quantity-skew split (§5.1): group `g` of `groups` receives
/// `fractions[g]` of `total` samples, divided evenly among the clients of
/// that group; labels are drawn uniformly (IID content, skewed volume).
///
/// The paper's default is `[0.10, 0.15, 0.20, 0.25, 0.30]`.
///
/// # Panics
/// Panics unless `clients % fractions.len() == 0` and fractions sum to ~1.
#[must_use]
pub fn quantity_skew(
    clients: usize,
    total: usize,
    classes: usize,
    fractions: &[f64],
    rng: &mut StdRng,
) -> Partition {
    let groups = fractions.len();
    assert!(
        groups > 0 && clients.is_multiple_of(groups),
        "clients must divide into groups"
    );
    let sum: f64 = fractions.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "fractions must sum to 1, got {sum}"
    );
    let per_group = clients / groups;

    let labels = (0..clients)
        .map(|c| {
            let g = c / per_group;
            let n = (total as f64 * fractions[g] / per_group as f64).round() as usize;
            (0..n).map(|_| rng.gen_range(0..classes)).collect()
        })
        .collect();
    Partition { labels, classes }
}

/// Compose quantity skew with class limiting: group `g` gets
/// `fractions[g]` of the volume AND every client holds only `k` classes.
/// This is the paper's "Combine" scenario (Fig. 6 column 2, Fig. 7).
#[must_use]
pub fn quantity_skew_class_limit(
    clients: usize,
    total: usize,
    classes: usize,
    fractions: &[f64],
    k: usize,
    rng: &mut StdRng,
) -> Partition {
    let base = quantity_skew(clients, total, classes, fractions, rng);
    let labels = base
        .labels
        .iter()
        .enumerate()
        .map(|(c, mine)| {
            let start = (c * k) % classes;
            let chosen: Vec<usize> = (0..k).map(|j| (start + j) % classes).collect();
            let mut out: Vec<usize> = mine
                .iter()
                .enumerate()
                .map(|(i, _)| chosen[i % k])
                .collect();
            out.shuffle(rng);
            out
        })
        .collect();
    Partition {
        labels,
        classes: base.classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_tensor::seed_rng;

    #[test]
    fn iid_sizes_uniform() {
        let p = iid(10, 100, 10, &mut seed_rng(0));
        assert_eq!(p.num_clients(), 10);
        assert!(p.sizes().iter().all(|&s| s == 100));
        assert_eq!(p.total_samples(), 1000);
    }

    #[test]
    fn iid_covers_many_classes() {
        let p = iid(4, 500, 10, &mut seed_rng(1));
        for c in 0..4 {
            assert_eq!(p.distinct_classes(c), 10, "client {c} missing classes");
        }
    }

    #[test]
    fn shards_two_per_client_limits_classes() {
        // 50 clients, 100 shards, 10k samples: the §5.1 MNIST setting.
        let p = shards(50, 10_000, 10, 100, 2, &mut seed_rng(2));
        assert_eq!(p.total_samples(), 10_000);
        for c in 0..50 {
            let k = p.distinct_classes(c);
            assert!(k <= 3, "client {c} has {k} classes (2 shards can span <=3)");
        }
    }

    #[test]
    fn shards_conserves_class_totals() {
        let p = shards(10, 1000, 10, 20, 2, &mut seed_rng(3));
        let mut counts = vec![0usize; 10];
        for mine in &p.labels {
            for &l in mine {
                counts[l] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 100), "counts {counts:?}");
    }

    #[test]
    #[should_panic(expected = "shards must equal")]
    fn shards_rejects_inconsistent_counts() {
        let _ = shards(10, 1000, 10, 15, 2, &mut seed_rng(4));
    }

    #[test]
    fn class_limit_exact_k() {
        for k in [2usize, 5, 10] {
            let p = class_limit(20, 100, 10, k, &mut seed_rng(5));
            for c in 0..20 {
                assert!(
                    p.distinct_classes(c) <= k,
                    "client {c}: {} classes > k={k}",
                    p.distinct_classes(c)
                );
            }
        }
    }

    #[test]
    fn class_limit_all_clients_equal_size() {
        let p = class_limit(20, 100, 10, 5, &mut seed_rng(6));
        assert!(p.sizes().iter().all(|&s| s == 100));
    }

    #[test]
    fn class_limit_union_covers_all_classes() {
        let p = class_limit(20, 100, 10, 2, &mut seed_rng(7));
        let mut seen = vec![false; 10];
        for mine in &p.labels {
            for &l in mine {
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not all classes covered: {seen:?}");
    }

    #[test]
    fn quantity_skew_matches_paper_fractions() {
        let fr = [0.10, 0.15, 0.20, 0.25, 0.30];
        let p = quantity_skew(50, 50_000, 10, &fr, &mut seed_rng(8));
        let sizes = p.sizes();
        // Group g has 10 clients each with total*fr[g]/10 samples.
        for (g, &f) in fr.iter().enumerate() {
            let expect = (50_000.0 * f / 10.0).round() as usize;
            for (c, &size) in sizes.iter().enumerate().skip(g * 10).take(10) {
                assert_eq!(size, expect, "client {c}");
            }
        }
    }

    #[test]
    fn quantity_skew_class_limit_composes_both() {
        let fr = [0.10, 0.15, 0.20, 0.25, 0.30];
        let p = quantity_skew_class_limit(50, 50_000, 10, &fr, 5, &mut seed_rng(9));
        // volume skew preserved
        assert!(p.labels[0].len() < p.labels[49].len());
        // class limit enforced
        for c in 0..50 {
            assert!(p.distinct_classes(c) <= 5);
        }
    }

    #[test]
    fn partitions_deterministic_under_seed() {
        let a = class_limit(10, 50, 10, 2, &mut seed_rng(10));
        let b = class_limit(10, 50, 10, 2, &mut seed_rng(10));
        assert_eq!(a, b);
    }
}
