//! Federated view: one dataset per client plus test data.

use crate::dataset::Dataset;
use crate::partition::Partition;
use crate::synth::Generator;
use rand::seq::SliceRandom;
use tifl_tensor::{seed_rng, split_seed};

/// One client's local data.
#[derive(Debug, Clone)]
pub struct ClientData {
    /// Local training samples (never leave the client).
    pub train: Dataset,
    /// Local held-out samples drawn from the *same* label distribution as
    /// the client's training data. The adaptive scheduler evaluates the
    /// global model on the union of these within a tier (`TestData_t` in
    /// Algorithm 2), so they must mirror each client's skew.
    pub test: Dataset,
}

/// A complete federated dataset: per-client data plus a balanced global
/// test set for reporting headline accuracy.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    /// Per-client local data, indexed by client id.
    pub clients: Vec<ClientData>,
    /// Balanced global test set (the server-side metric of Figs. 3–9).
    pub global_test: Dataset,
    /// Number of classes.
    pub classes: usize,
}

impl FederatedDataset {
    /// Materialise a federated dataset from a partition.
    ///
    /// * `test_fraction` — size of each client's holdout relative to its
    ///   training set (labels resampled from the client's own empirical
    ///   label distribution, so skew is mirrored);
    /// * `global_test_per_class` — samples per class in the global test
    ///   set.
    ///
    /// # Panics
    /// Panics if `test_fraction` is not in `[0, 1]` or a client has no
    /// samples.
    #[must_use]
    pub fn materialize(
        gen: &Generator,
        partition: &Partition,
        test_fraction: f64,
        global_test_per_class: usize,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&test_fraction),
            "test_fraction out of range"
        );
        let clients = partition
            .labels
            .iter()
            .enumerate()
            .map(|(cid, labels)| {
                assert!(!labels.is_empty(), "client {cid} has no samples");
                let style = if gen.spec().style_scale > 0.0 {
                    Some(gen.draw_style(cid as u64))
                } else {
                    None
                };
                let train = gen.generate_with_labels_and_style(
                    labels,
                    style.as_deref(),
                    split_seed(seed, 2 * cid as u64),
                );
                // Holdout labels: resample from the client's empirical
                // label distribution.
                let n_test = ((labels.len() as f64 * test_fraction).round() as usize).max(1);
                let mut rng = seed_rng(split_seed(seed, 0xE5C0 ^ cid as u64));
                let test_labels: Vec<usize> = (0..n_test)
                    .map(|_| *labels.choose(&mut rng).expect("non-empty"))
                    .collect();
                let test = gen.generate_with_labels_and_style(
                    &test_labels,
                    style.as_deref(),
                    split_seed(seed, 2 * cid as u64 + 1),
                );
                ClientData { train, test }
            })
            .collect();
        let global_test = gen.generate_balanced(global_test_per_class, split_seed(seed, 0x6E57));
        Self {
            clients,
            global_test,
            classes: partition.classes,
        }
    }

    /// Number of clients.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Per-client training-set sizes (the FedAvg aggregation weights).
    #[must_use]
    pub fn train_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.train.len()).collect()
    }

    /// Union of the holdout sets of the given clients (a tier's
    /// `TestData_t`).
    ///
    /// # Panics
    /// Panics if `client_ids` is empty.
    #[must_use]
    pub fn tier_test_set(&self, client_ids: &[usize]) -> Dataset {
        let parts: Vec<&Dataset> = client_ids.iter().map(|&c| &self.clients[c].test).collect();
        Dataset::concat(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use crate::synth::{SynthFamily, SynthSpec};

    fn build(seed: u64) -> FederatedDataset {
        let gen = Generator::new(SynthSpec::family(SynthFamily::Mnist), seed);
        let part = partition::class_limit(10, 50, 10, 2, &mut seed_rng(seed));
        FederatedDataset::materialize(&gen, &part, 0.2, 10, seed)
    }

    #[test]
    fn materialize_counts() {
        let fed = build(0);
        assert_eq!(fed.num_clients(), 10);
        assert!(fed.train_sizes().iter().all(|&s| s == 50));
        for c in &fed.clients {
            assert_eq!(c.test.len(), 10); // 20% of 50
        }
        assert_eq!(fed.global_test.len(), 100);
    }

    #[test]
    fn holdout_mirrors_client_skew() {
        let fed = build(1);
        for c in &fed.clients {
            // class_limit(k=2): holdout must use only the client's classes.
            let train_classes: Vec<usize> = c
                .train
                .class_counts()
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, _)| i)
                .collect();
            for (cls, &n) in c.test.class_counts().iter().enumerate() {
                if n > 0 {
                    assert!(
                        train_classes.contains(&cls),
                        "holdout class {cls} absent from training data"
                    );
                }
            }
        }
    }

    #[test]
    fn global_test_is_balanced() {
        let fed = build(2);
        assert!(fed.global_test.class_counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn tier_test_set_unions_holdouts() {
        let fed = build(3);
        let t = fed.tier_test_set(&[0, 1, 2]);
        assert_eq!(t.len(), 30);
    }

    #[test]
    fn materialize_is_deterministic() {
        let a = build(4);
        let b = build(4);
        assert_eq!(a.global_test, b.global_test);
        assert_eq!(a.clients[3].train, b.clients[3].train);
    }

    use tifl_tensor::seed_rng;
}
