//! Matrix and vector kernels.
//!
//! `matmul` parallelises over output rows with rayon once the problem is
//! large enough to amortise the fork-join overhead; everything else is
//! simple, cache-friendly sequential code (batch sizes in the TiFL
//! experiments are small, so the GEMMs dominate).

use crate::Matrix;
use rayon::prelude::*;

/// Problems smaller than this many multiply-adds run sequentially.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// `a (m x k) * b (k x n) -> (m x n)`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = Matrix::zeros(m, n);
    let b_data = b.as_slice();

    let kernel = |(row_idx, out_row): (usize, &mut [f32])| {
        let a_row = a.row(row_idx);
        // ikj loop order: streams through b rows, vectorises the inner j loop.
        for (ki, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let b_row = &b_data[ki * n..(ki + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o += a_v * b_v;
            }
        }
    };

    if m * n * k >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    } else {
        out.as_mut_slice()
            .chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    }
    out
}

/// `a * b^T` without materialising the transpose.
///
/// Shape: `a (m x k) * b (n x k) -> (m x n)`. This is the backward-pass
/// workhorse (`dX = dY * W^T`).
#[must_use]
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(
        k, k2,
        "matmul_transpose_b inner dimension mismatch: {k} vs {k2}"
    );

    let mut out = Matrix::zeros(m, n);
    let kernel = |(row_idx, out_row): (usize, &mut [f32])| {
        let a_row = a.row(row_idx);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    };

    if m * n * k >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    } else {
        out.as_mut_slice()
            .chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    }
    out
}

/// `a^T * b` without materialising the transpose.
///
/// Shape: `a (k x m) * b (k x n) -> (m x n)`. This is the weight-gradient
/// workhorse (`dW = X^T * dY`).
#[must_use]
pub fn matmul_transpose_a(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(
        k, k2,
        "matmul_transpose_a inner dimension mismatch: {k} vs {k2}"
    );

    let mut out = Matrix::zeros(m, n);
    // Accumulate rank-1 updates; sequential over k keeps this deterministic.
    for ki in 0..k {
        let a_row = a.row(ki);
        let b_row = b.row(ki);
        for (i, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o += a_v * b_v;
            }
        }
    }
    out
}

/// Reference implementation of [`axpy`]: the plain element-order loop.
///
/// The blocked/SIMD variants are pinned bit-for-bit against this in the
/// equivalence proptests — `axpy` is element-wise (no reassociated
/// reduction), so unrolling cannot change any result bit.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_scalar(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy length mismatch");
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Element-wise `out[i] += alpha * x[i]` on flat slices.
///
/// 8-wide unrolled (SSE2 when the `simd` feature is on); bit-for-bit
/// identical to [`axpy_scalar`] because each lane computes the exact
/// scalar expression `o + alpha * v` with no fused multiply-add.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd::axpy(alpha, x, out);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let mut xs = x.chunks_exact(8);
        let mut os = out.chunks_exact_mut(8);
        for (o, v) in (&mut os).zip(&mut xs) {
            o[0] += alpha * v[0];
            o[1] += alpha * v[1];
            o[2] += alpha * v[2];
            o[3] += alpha * v[3];
            o[4] += alpha * v[4];
            o[5] += alpha * v[5];
            o[6] += alpha * v[6];
            o[7] += alpha * v[7];
        }
        for (o, &v) in os.into_remainder().iter_mut().zip(xs.remainder()) {
            *o += alpha * v;
        }
    }
}

/// Reference implementation of [`scale`]: the plain element-order loop.
pub fn scale_scalar(alpha: f32, out: &mut [f32]) {
    for o in out.iter_mut() {
        *o *= alpha;
    }
}

/// Element-wise scale in place (8-wide unrolled, bit-for-bit identical
/// to [`scale_scalar`]).
pub fn scale(alpha: f32, out: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd::scale(alpha, out);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let mut os = out.chunks_exact_mut(8);
        for o in &mut os {
            o[0] *= alpha;
            o[1] *= alpha;
            o[2] *= alpha;
            o[3] *= alpha;
            o[4] *= alpha;
            o[5] *= alpha;
            o[6] *= alpha;
            o[7] *= alpha;
        }
        for o in os.into_remainder() {
            *o *= alpha;
        }
    }
}

/// SSE2 lanes for the element-wise hot kernels.
///
/// Every intrinsic used here (`mulps`/`addps`) performs the same IEEE 754
/// single-rounding operation per lane as the scalar expression, and no
/// FMA contraction is involved, so results are bit-for-bit identical to
/// the scalar references. SSE2 is part of the x86_64 baseline, so no
/// runtime feature detection is needed.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    use std::arch::x86_64::{_mm_add_ps, _mm_loadu_ps, _mm_mul_ps, _mm_set1_ps, _mm_storeu_ps};

    pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), out.len());
        let n4 = x.len() - x.len() % 4;
        // SAFETY: loads/stores stay within `..n4 <= len` for both slices,
        // which hold plain f32s with no alignment requirement (unaligned
        // loadu/storeu).
        unsafe {
            let a = _mm_set1_ps(alpha);
            let mut i = 0;
            while i < n4 {
                let xv = _mm_loadu_ps(x.as_ptr().add(i));
                let ov = _mm_loadu_ps(out.as_ptr().add(i));
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_add_ps(ov, _mm_mul_ps(a, xv)));
                i += 4;
            }
        }
        for (o, &v) in out[n4..].iter_mut().zip(&x[n4..]) {
            *o += alpha * v;
        }
    }

    pub fn scale(alpha: f32, out: &mut [f32]) {
        let n4 = out.len() - out.len() % 4;
        // SAFETY: loads/stores stay within `..n4 <= len`; unaligned
        // loadu/storeu impose no alignment requirement.
        unsafe {
            let a = _mm_set1_ps(alpha);
            let mut i = 0;
            while i < n4 {
                let ov = _mm_loadu_ps(out.as_ptr().add(i));
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_mul_ps(ov, a));
                i += 4;
            }
        }
        for o in &mut out[n4..] {
            *o *= alpha;
        }
    }
}

/// Dot product of two flat slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Squared L2 norm of a flat slice.
#[must_use]
pub fn norm_sq(x: &[f32]) -> f32 {
    x.iter().map(|&v| v * v).sum()
}

/// Add a row-vector `bias` (len `n`) to every row of `m (rows x n)`.
///
/// # Panics
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols(), "bias length mismatch");
    let n = m.cols();
    for row in m.as_mut_slice().chunks_mut(n) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// Column-wise sum of `m` into a `cols`-length vector (bias gradient).
#[must_use]
pub fn col_sum(m: &Matrix) -> Vec<f32> {
    let n = m.cols();
    let mut out = vec![0.0f32; n];
    for row in m.as_slice().chunks(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

/// Row-wise argmax of each row of `m` (predicted class per sample).
#[must_use]
pub fn row_argmax(m: &Matrix) -> Vec<usize> {
    let n = m.cols();
    m.as_slice()
        .chunks(n)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(&x, &y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_fn(3, 4, |r, c| (r as f32) - (c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r as f32) * 0.25 + c as f32);
        assert!(approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_matches_naive_above_parallel_threshold() {
        let a = Matrix::from_fn(70, 70, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(70, 70, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        assert!(approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-2));
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 3, |r, c| (r * 2 + c) as f32);
        let expected = naive_matmul(&a, &b.transpose());
        assert!(approx_eq(&matmul_transpose_b(&a, &b), &expected, 1e-5));
    }

    #[test]
    fn matmul_transpose_a_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * 3 + c) as f32);
        let expected = naive_matmul(&a.transpose(), &b);
        assert!(approx_eq(&matmul_transpose_a(&a, &b), &expected, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 2.0];
        axpy(0.5, &[2.0, 4.0], &mut out);
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let mut m = Matrix::zeros(2, 3);
        add_bias(&mut m, &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sum_sums_rows() {
        let m = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        assert_eq!(col_sum(&m), vec![3.0, 6.0]);
    }

    #[test]
    fn row_argmax_picks_max_per_row() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.7]);
        assert_eq!(row_argmax(&m), vec![1, 2]);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut v = vec![1.0, -2.0, 4.0];
        scale(0.5, &mut v);
        assert_eq!(v, vec![0.5, -1.0, 2.0]);
    }

    #[test]
    fn blocked_axpy_is_bitwise_equal_to_scalar_on_awkward_lengths() {
        // Cover remainders 0..7 around the 8-wide blocking.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100] {
            let x: Vec<f32> = (0..n).map(|i| ((i * 37) as f32).sin() * 3.7).collect();
            let mut a: Vec<f32> = (0..n).map(|i| ((i * 13) as f32).cos()).collect();
            let mut b = a.clone();
            axpy(0.3337, &x, &mut a);
            axpy_scalar(0.3337, &x, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy diverged from scalar reference at n={n}"
            );
        }
    }

    #[test]
    fn blocked_scale_is_bitwise_equal_to_scalar_on_awkward_lengths() {
        for n in [0usize, 1, 5, 8, 11, 16, 23, 100] {
            let mut a: Vec<f32> = (0..n).map(|i| ((i * 7) as f32).sin() * 9.1).collect();
            let mut b = a.clone();
            scale(0.77, &mut a);
            scale_scalar(0.77, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "scale diverged from scalar reference at n={n}"
            );
        }
    }
}
