//! Matrix and vector kernels.
//!
//! `matmul` parallelises over output rows with rayon once the problem is
//! large enough to amortise the fork-join overhead; everything else is
//! simple, cache-friendly sequential code (batch sizes in the TiFL
//! experiments are small, so the GEMMs dominate).

use crate::Matrix;
use rayon::prelude::*;

/// Problems smaller than this many multiply-adds run sequentially.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// `a (m x k) * b (k x n) -> (m x n)`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = Matrix::zeros(m, n);
    let b_data = b.as_slice();

    let kernel = |(row_idx, out_row): (usize, &mut [f32])| {
        let a_row = a.row(row_idx);
        // ikj loop order: streams through b rows, vectorises the inner j loop.
        for (ki, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let b_row = &b_data[ki * n..(ki + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o += a_v * b_v;
            }
        }
    };

    if m * n * k >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    } else {
        out.as_mut_slice()
            .chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    }
    out
}

/// `a * b^T` without materialising the transpose.
///
/// Shape: `a (m x k) * b (n x k) -> (m x n)`. This is the backward-pass
/// workhorse (`dX = dY * W^T`).
#[must_use]
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(
        k, k2,
        "matmul_transpose_b inner dimension mismatch: {k} vs {k2}"
    );

    let mut out = Matrix::zeros(m, n);
    let kernel = |(row_idx, out_row): (usize, &mut [f32])| {
        let a_row = a.row(row_idx);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    };

    if m * n * k >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    } else {
        out.as_mut_slice()
            .chunks_mut(n)
            .enumerate()
            .for_each(kernel);
    }
    out
}

/// `a^T * b` without materialising the transpose.
///
/// Shape: `a (k x m) * b (k x n) -> (m x n)`. This is the weight-gradient
/// workhorse (`dW = X^T * dY`).
#[must_use]
pub fn matmul_transpose_a(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(
        k, k2,
        "matmul_transpose_a inner dimension mismatch: {k} vs {k2}"
    );

    let mut out = Matrix::zeros(m, n);
    // Accumulate rank-1 updates; sequential over k keeps this deterministic.
    for ki in 0..k {
        let a_row = a.row(ki);
        let b_row = b.row(ki);
        for (i, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o += a_v * b_v;
            }
        }
    }
    out
}

/// Element-wise `out[i] += alpha * x[i]` on flat slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "axpy length mismatch");
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Element-wise scale in place.
pub fn scale(alpha: f32, out: &mut [f32]) {
    for o in out.iter_mut() {
        *o *= alpha;
    }
}

/// Dot product of two flat slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Squared L2 norm of a flat slice.
#[must_use]
pub fn norm_sq(x: &[f32]) -> f32 {
    x.iter().map(|&v| v * v).sum()
}

/// Add a row-vector `bias` (len `n`) to every row of `m (rows x n)`.
///
/// # Panics
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols(), "bias length mismatch");
    let n = m.cols();
    for row in m.as_mut_slice().chunks_mut(n) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// Column-wise sum of `m` into a `cols`-length vector (bias gradient).
#[must_use]
pub fn col_sum(m: &Matrix) -> Vec<f32> {
    let n = m.cols();
    let mut out = vec![0.0f32; n];
    for row in m.as_slice().chunks(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

/// Row-wise argmax of each row of `m` (predicted class per sample).
#[must_use]
pub fn row_argmax(m: &Matrix) -> Vec<usize> {
    let n = m.cols();
    m.as_slice()
        .chunks(n)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(&x, &y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_fn(3, 4, |r, c| (r as f32) - (c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r as f32) * 0.25 + c as f32);
        assert!(approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_matches_naive_above_parallel_threshold() {
        let a = Matrix::from_fn(70, 70, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(70, 70, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        assert!(approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-2));
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 3, |r, c| (r * 2 + c) as f32);
        let expected = naive_matmul(&a, &b.transpose());
        assert!(approx_eq(&matmul_transpose_b(&a, &b), &expected, 1e-5));
    }

    #[test]
    fn matmul_transpose_a_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * 3 + c) as f32);
        let expected = naive_matmul(&a.transpose(), &b);
        assert!(approx_eq(&matmul_transpose_a(&a, &b), &expected, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 2.0];
        axpy(0.5, &[2.0, 4.0], &mut out);
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let mut m = Matrix::zeros(2, 3);
        add_bias(&mut m, &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sum_sums_rows() {
        let m = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        assert_eq!(col_sum(&m), vec![3.0, 6.0]);
    }

    #[test]
    fn row_argmax_picks_max_per_row() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.7]);
        assert_eq!(row_argmax(&m), vec![1, 2]);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut v = vec![1.0, -2.0, 4.0];
        scale(0.5, &mut v);
        assert_eq!(v, vec![0.5, -1.0, 2.0]);
    }
}
