//! Weight initialisers.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for dense layers.
#[must_use]
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// He/Kaiming uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Preferred in front of ReLU activations.
#[must_use]
pub fn he_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / rows as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Uniform initialisation over `[lo, hi)`.
#[must_use]
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed_rng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seed_rng(1);
        let m = xavier_uniform(100, 50, &mut rng);
        let a = (6.0 / 150.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v >= -a && v < a));
    }

    #[test]
    fn he_respects_bound() {
        let mut rng = seed_rng(2);
        let m = he_uniform(64, 32, &mut rng);
        let a = (6.0 / 64.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v >= -a && v < a));
    }

    #[test]
    fn init_deterministic_under_seed() {
        let a = xavier_uniform(8, 8, &mut seed_rng(7));
        let b = xavier_uniform(8, 8, &mut seed_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn init_mean_is_near_zero() {
        let mut rng = seed_rng(3);
        let m = xavier_uniform(200, 200, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
    }
}
