//! Row-major dense `f32` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f32`.
///
/// The workhorse container of the NN substrate: activations are
/// `batch x features` matrices, dense-layer weights are
/// `in_features x out_features`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled `rows x cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * cols`.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat read-only view of the backing buffer (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Read-only view of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy the rows at `indices` into a new matrix (gather).
    ///
    /// Used to assemble mini-batches from a client's sample indices.
    #[must_use]
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Consume the matrix and return the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
    }

    #[test]
    fn gather_rows_selects_and_orders() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = m.gather_rows(&[3, 1, 1]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
        assert_eq!(g.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(m[(1, 0)], 5.0);
        assert_eq!(m[(1, 1)], 6.0);
    }
}
