//! Dense `f32` tensor primitives for the TiFL reproduction.
//!
//! This crate deliberately implements only what the federated-learning
//! stack above it needs: a row-major [`Matrix`] with rayon-parallel
//! matrix multiplication, element-wise kernels, deterministic RNG
//! utilities, weight initialisers, and flat [`ParamVec`] views used by
//! FedAvg-style aggregation.
//!
//! Everything is deterministic given a seed: there is no global RNG and
//! no use of system entropy anywhere in the workspace.
//!
//! This is the only workspace crate allowed to contain `unsafe` (the
//! SSE2 SIMD lanes in [`ops`] and [`codec`]); every block carries a
//! `// SAFETY:` contract, enforced by `tifl-lint`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod codec;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod param;
pub mod rng;

pub use matrix::Matrix;
pub use param::ParamVec;
pub use rng::{seed_rng, split_seed, SeedStream};
