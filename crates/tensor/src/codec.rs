//! Low-level update-compression kernels.
//!
//! The communication subsystem (`tifl_comm`) shrinks model updates
//! before they cross the simulated wire. The numeric kernels live here,
//! next to the other flat-slice primitives, so they can be benchmarked
//! and tested against the same `f32` conventions as `ops`:
//!
//! * whole-slice affine int8 quantization ([`quantize_i8`] /
//!   [`dequantize_i8_axpy`]) — 4x smaller, error bounded by one
//!   quantization step per element;
//! * magnitude top-k selection ([`top_k_by_magnitude`]) with
//!   delta-encoded indices ([`axpy_sparse`]) — the classic sparsified
//!   gradient/update format.
//!
//! All kernels are deterministic: ties in the top-k selection break
//! toward the lower index, and every accumulation order is fixed. The
//! decode-side kernels are unrolled for throughput and pinned bit-for-bit
//! against their `_scalar` references; the encode-side kernels have
//! `_into` variants that write into caller-owned buffers so the per-round
//! hot path allocates nothing.
//!
//! # Non-finite inputs
//!
//! Encode kernels never let a stray NaN or infinity poison the whole
//! update; the mapping is explicit and documented per kernel:
//!
//! * [`minmax`] ranges over the *finite* elements only;
//! * [`quantize_i8`] encodes NaN and `-inf` as the `min` endpoint's code
//!   and clamps `+inf` to the `max` endpoint's;
//! * [`top_k_by_magnitude`] treats a NaN magnitude as smaller than every
//!   real magnitude, so NaN elements genuinely lose selection.

/// Minimum and maximum over the *finite* elements of a flat slice
/// (`(0.0, 0.0)` when the slice is empty or contains no finite element).
///
/// NaNs and ±∞ are skipped outright so one bad element cannot blow the
/// quantization range up to infinity.
#[must_use]
pub fn minmax(xs: &[f32]) -> (f32, f32) {
    let mut lo_k = i32::MAX;
    let mut hi_k = i32::MIN;
    for &x in xs {
        let (kl, kh) = minmax_keys(x);
        lo_k = lo_k.min(kl);
        hi_k = hi_k.max(kh);
    }
    minmax_from_keys(lo_k, hi_k)
}

/// All-ones exponent field: the bit pattern shared by ±∞ and every NaN.
const EXP_MASK: u32 = 0x7F80_0000;

/// Branch-free per-element step of the finite min/max reduction.
///
/// Maps `x` to an `i32` *order key* — the standard sign-flip transform
/// under which ascending `i32` order equals ascending float order
/// (an involution; [`order_key`] inverts itself) — and substitutes the
/// reduction's neutral element for non-finite inputs, so the `min`/`max`
/// fold skips them without a branch. The two selects and the integer
/// `min`/`max` all vectorize, unlike a float reduction guarded by
/// `is_finite` (NaN-aware float `min` also defeats the vectorizer).
///
/// The keyed reduction returns the same floats as the old
/// `if x.is_finite() { lo.min(x) … }` loop: the key order agrees with
/// float order on every finite value (it additionally orders
/// `-0.0 < +0.0`, where IEEE `minNum` may return either zero — the two
/// are `==` and behave identically as the quantization offset, so no
/// downstream bit changes).
///
/// Neutral keys are unreachable for finite inputs: `i32::MAX` and
/// `i32::MIN` are the keys of the NaN patterns `0x7FFF_FFFF` and
/// `0xFFFF_FFFF`.
#[inline]
fn minmax_keys(x: f32) -> (i32, i32) {
    let b = x.to_bits();
    let finite = (b & EXP_MASK) != EXP_MASK;
    let k = order_key(b);
    (
        if finite { k } else { i32::MAX },
        if finite { k } else { i32::MIN },
    )
}

/// Sign-flip transform: negative floats get their magnitude bits
/// inverted, so `i32` comparison of keys matches float comparison.
/// Self-inverse (the key's sign bit equals the float's).
#[inline]
fn order_key(b: u32) -> i32 {
    let b = b as i32;
    b ^ (((b >> 31) as u32) >> 1) as i32
}

/// Finish a keyed min/max reduction: `(0.0, 0.0)` when no finite
/// element updated either accumulator, else the keys mapped back to
/// floats.
#[inline]
fn minmax_from_keys(lo_k: i32, hi_k: i32) -> (f32, f32) {
    if lo_k > hi_k {
        (0.0, 0.0)
    } else {
        (
            f32::from_bits(order_key(lo_k as u32) as u32),
            f32::from_bits(order_key(hi_k as u32) as u32),
        )
    }
}

/// Affine int8 quantization over one flat slice: returns
/// `(min, scale, codes)`
/// with `x ≈ min + scale * (code + 128)` and
/// `scale = (max - min) / 255`.
///
/// A constant slice gets `scale = 0` and decodes exactly to `min`. The
/// reconstruction error is at most `scale` per element (round-to-nearest
/// guarantees `scale / 2`; the bound tested downstream is the full
/// step).
///
/// Non-finite inputs follow the module contract: the range spans the
/// finite elements only, NaN and `-inf` take the `min` endpoint's code
/// (decoding to `min`), and `+inf` saturates to the `max` endpoint's.
#[must_use]
pub fn quantize_i8(xs: &[f32]) -> (f32, f32, Vec<i8>) {
    let mut codes = Vec::new();
    let (min, scale) = quantize_i8_into(xs, &mut codes);
    (min, scale, codes)
}

/// [`quantize_i8`] writing codes into a caller-owned buffer (cleared
/// first); the allocation-free form used by the encode hot path.
pub fn quantize_i8_into(xs: &[f32], codes: &mut Vec<i8>) -> (f32, f32) {
    codes.clear();
    let (lo, hi) = minmax(xs);
    let range = hi - lo;
    if range <= 0.0 {
        codes.resize(xs.len(), -128);
        return (lo, 0.0);
    }
    let scale = range / 255.0;
    let inv_scale = 255.0 / range;
    codes.extend(xs.iter().map(|&x| quantize_one(x, lo, inv_scale)));
    (lo, scale)
}

/// The per-element affine-quantize step shared by every i8 encode
/// kernel: `round((x − lo) · inv_scale)` clamped to `[0, 255]`, shifted
/// to the i8 code range.
///
/// One multiply instead of a divide, and rounding is `+ 0.5` then
/// truncate — exact because the quotient is non-negative for every
/// finite input (`lo` is the finite minimum). The clamp runs in the
/// *float* domain with `max`/`min`, which implements the non-finite
/// contract for free (IEEE `maxNum`/`minNum` against a constant drop
/// NaN → 0.0 → the min code; −∞ → 0.0; +∞ → 255.0 → the max code) and
/// guarantees the cast operand is always in `[0, 255]` — so the
/// unchecked cast is sound, and the optimizer emits one plain vector
/// truncation instead of the saturating cast's per-lane NaN/overflow
/// fixups (which cost more than the quantize arithmetic itself).
#[inline]
// Not `clamp`: it propagates NaN, and the whole point of the max/min
// chain is that NaN falls out as 0.0 before the unchecked cast.
#[allow(clippy::manual_clamp)]
fn quantize_one(x: f32, lo: f32, inv_scale: f32) -> i8 {
    let t = ((x - lo) * inv_scale + 0.5).max(0.0).min(255.0);
    // SAFETY: `max`/`min` against finite constants return a finite
    // value in [0.0, 255.0] for every input, including NaN and ±∞.
    let q: i32 = unsafe { t.to_int_unchecked() };
    (q - 128) as i8
}

/// Fused compensate-and-range kernel for the error-feedback encode
/// path: `out[i] = a[i] + b[i]`, returning the finite min/max of the
/// sums in the same pass.
///
/// Bit-for-bit identical to `extend`-ing the sums and then calling
/// [`minmax`] — same element order, same `min`/`max` sequence, same
/// finite-only skip — it just avoids re-reading the sums from memory.
///
/// The fusion is blocked rather than instruction-level: a stateful
/// closure inside `extend` defeats the loop vectorizer, so instead each
/// `FUSE_BLOCK`-element block gets one pure vectorized sum pass and
/// one pure vectorized key-reduction pass while it is still L1-hot.
///
/// # Panics
/// Panics if `a` and `b` differ in length.
pub fn add_into_minmax(a: &[f32], b: &[f32], out: &mut Vec<f32>) -> (f32, f32) {
    assert_eq!(a.len(), b.len(), "add_into_minmax length mismatch");
    out.clear();
    let mut lo_k = i32::MAX;
    let mut hi_k = i32::MIN;
    let mut i = 0;
    while i < a.len() {
        let end = (i + FUSE_BLOCK).min(a.len());
        out.extend(a[i..end].iter().zip(&b[i..end]).map(|(&x, &y)| x + y));
        for &v in &out[i..end] {
            let (kl, kh) = minmax_keys(v);
            lo_k = lo_k.min(kl);
            hi_k = hi_k.max(kh);
        }
        i = end;
    }
    minmax_from_keys(lo_k, hi_k)
}

/// Block length for cache-level kernel fusion: 2048 f32 = 8 KiB per
/// array, so two or three blocks stay resident in a 32 KiB L1d between
/// the passes a fused kernel runs over them.
const FUSE_BLOCK: usize = 2048;

/// Fused quantize-and-residual kernel for the error-feedback encode
/// path: quantizes `xs` over the caller-supplied `(lo, hi)` range
/// (from [`add_into_minmax`]) and writes each element's quantization
/// error `xs[i] − decode(code[i])` into `residual` in the same pass.
///
/// Codes are bit-for-bit [`quantize_i8_into`]'s and the residual is the
/// exact expression a separate pass would compute:
/// `x − (min + scale · (code + 128))`.
///
/// # Panics
/// Panics if `xs` and `residual` differ in length.
pub fn quantize_i8_residual_into(
    xs: &[f32],
    lo: f32,
    hi: f32,
    codes: &mut Vec<i8>,
    residual: &mut [f32],
) -> (f32, f32) {
    assert_eq!(
        xs.len(),
        residual.len(),
        "quantize residual length mismatch"
    );
    codes.clear();
    let range = hi - lo;
    if range <= 0.0 {
        codes.resize(xs.len(), -128);
        for (r, &x) in residual.iter_mut().zip(xs) {
            *r = x - (lo + 0.0 * (f32::from(-128i8) + 128.0));
        }
        return (lo, 0.0);
    }
    let scale = range / 255.0;
    let inv_scale = 255.0 / range;
    // Blocked fusion (see [`add_into_minmax`]): per block, one pure
    // quantize pass and one pure dequantize-and-subtract pass, each a
    // vectorizable elementwise loop, with the block's codes and inputs
    // still L1-resident for the second pass.
    let mut i = 0;
    while i < xs.len() {
        let end = (i + FUSE_BLOCK).min(xs.len());
        codes.extend(xs[i..end].iter().map(|&x| quantize_one(x, lo, inv_scale)));
        for ((r, &c), &x) in residual[i..end]
            .iter_mut()
            .zip(&codes[i..end])
            .zip(&xs[i..end])
        {
            *r = x - (lo + scale * (f32::from(c) + 128.0));
        }
        i = end;
    }
    (lo, scale)
}

/// Reference implementation of [`dequantize_i8_axpy`]: the plain
/// element-order loop the unrolled kernel is pinned against.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dequantize_i8_axpy_scalar(alpha: f32, min: f32, scale: f32, codes: &[i8], out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequantize_i8_axpy length mismatch");
    for (o, &q) in out.iter_mut().zip(codes) {
        *o += alpha * (min + scale * (f32::from(q) + 128.0));
    }
}

/// `out[i] += alpha * (min + scale * (codes[i] + 128))`: fold a
/// quantized tensor into an accumulator without materialising the
/// dequantized vector.
///
/// 8-wide unrolled; each lane evaluates the exact scalar expression, so
/// the result is bit-for-bit identical to
/// [`dequantize_i8_axpy_scalar`].
///
/// # Panics
/// Panics if the lengths differ.
pub fn dequantize_i8_axpy(alpha: f32, min: f32, scale: f32, codes: &[i8], out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequantize_i8_axpy length mismatch");
    let mut cs = codes.chunks_exact(8);
    let mut os = out.chunks_exact_mut(8);
    for (o, c) in (&mut os).zip(&mut cs) {
        o[0] += alpha * (min + scale * (f32::from(c[0]) + 128.0));
        o[1] += alpha * (min + scale * (f32::from(c[1]) + 128.0));
        o[2] += alpha * (min + scale * (f32::from(c[2]) + 128.0));
        o[3] += alpha * (min + scale * (f32::from(c[3]) + 128.0));
        o[4] += alpha * (min + scale * (f32::from(c[4]) + 128.0));
        o[5] += alpha * (min + scale * (f32::from(c[5]) + 128.0));
        o[6] += alpha * (min + scale * (f32::from(c[6]) + 128.0));
        o[7] += alpha * (min + scale * (f32::from(c[7]) + 128.0));
    }
    for (o, &q) in os.into_remainder().iter_mut().zip(cs.remainder()) {
        *o += alpha * (min + scale * (f32::from(q) + 128.0));
    }
}

/// Selection key for [`top_k_by_magnitude`]: non-negative IEEE-754
/// floats are order-isomorphic to their bit patterns, so `|x|` compares
/// as the low 31 bits. Real magnitudes map to `bits + 1` (so `+0.0`
/// gets key 1, `±inf` the largest key) and NaN magnitudes (payloads
/// above the `+inf` pattern) map to 0 — NaN elements genuinely lose to
/// everything, using only integer compares.
#[inline]
fn magnitude_key(x: f32) -> u32 {
    let mag = x.to_bits() & 0x7FFF_FFFF;
    if mag > 0x7F80_0000 {
        0
    } else {
        mag + 1
    }
}

/// Indices and values of the `k` largest-magnitude elements of `xs`,
/// returned in ascending index order. Ties in magnitude break toward
/// the lower index, so the selection is deterministic.
///
/// NaN elements genuinely lose selection (their magnitude sorts below
/// every real magnitude, including `-inf`'s); they are only picked when
/// `k` exceeds the number of non-NaN elements, lowest indices first.
///
/// # Panics
/// Panics if `k` is zero or exceeds `xs.len()`.
#[must_use]
pub fn top_k_by_magnitude(xs: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut order = Vec::new();
    let mut indices = Vec::new();
    let mut values = Vec::new();
    top_k_by_magnitude_into(xs, k, &mut order, &mut indices, &mut values);
    indices.into_iter().zip(values).collect()
}

/// [`top_k_by_magnitude`] writing into caller-owned buffers (all cleared
/// first): `order` is selection scratch, `indices`/`values` receive the
/// winners in ascending index order. The allocation-free form used by
/// the encode hot path.
///
/// # Panics
/// Panics if `k` is zero or exceeds `xs.len()`.
pub fn top_k_by_magnitude_into(
    xs: &[f32],
    k: usize,
    order: &mut Vec<u64>,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    assert!(k > 0 && k <= xs.len(), "top-k of {k} from {}", xs.len());
    order.clear();
    indices.clear();
    values.clear();
    if k == xs.len() {
        // Everything wins; ascending index order is the natural order.
        indices.extend(0..k as u32);
        values.extend_from_slice(xs);
        return;
    }
    // Ascending order on the packed word `(!magnitude_key << 32) | index`
    // is (magnitude desc, index asc): the complemented magnitude key
    // makes larger magnitudes compare smaller, and equal magnitudes fall
    // through to the raw index in the low half. That total order lets
    // `select_nth_unstable` partition with plain `u64` compares — no
    // float comparator on the hot path — while selecting exactly the
    // winners a full sort would. (A histogram pre-select that only
    // materializes candidate words was tried and measured slower on
    // both sweep- and bench-sized inputs: gradient magnitudes cluster
    // into few exponent buckets, so the counting and collection passes
    // cost more than the partition they save.)
    order.extend(
        xs.iter()
            .enumerate()
            .map(|(i, &x)| (u64::from(!magnitude_key(x)) << 32) | i as u64),
    );
    order.select_nth_unstable(k - 1);
    let picked = &mut order[..k];
    picked.sort_unstable_by_key(|&p| p as u32);
    indices.extend(picked.iter().map(|&p| p as u32));
    values.extend(indices.iter().map(|&i| xs[i as usize]));
}

/// Reference implementation of [`axpy_sparse`]: the plain walk the
/// unrolled kernel is pinned against.
///
/// # Panics
/// Panics if the arrays differ in length or an index lands out of
/// bounds.
pub fn axpy_sparse_scalar(alpha: f32, idx_delta: &[u32], values: &[f32], out: &mut [f32]) {
    assert_eq!(idx_delta.len(), values.len(), "axpy_sparse length mismatch");
    let mut idx = 0usize;
    for (pos, (&d, &v)) in idx_delta.iter().zip(values).enumerate() {
        idx = if pos == 0 {
            d as usize
        } else {
            idx + d as usize
        };
        out[idx] += alpha * v;
    }
}

/// `out[idx] += alpha * value` over a delta-encoded sparse vector:
/// `idx_delta[0]` is the first absolute index, every later entry the
/// gap to its predecessor.
///
/// 4-wide unrolled: the running prefix index is resolved inside each
/// block so the four scatter-adds pipeline, and each add is the exact
/// scalar expression in the same order — bit-for-bit identical to
/// [`axpy_sparse_scalar`].
///
/// # Panics
/// Panics if the arrays differ in length or an index lands out of
/// bounds.
pub fn axpy_sparse(alpha: f32, idx_delta: &[u32], values: &[f32], out: &mut [f32]) {
    assert_eq!(idx_delta.len(), values.len(), "axpy_sparse length mismatch");
    let Some((&d0, rest_d)) = idx_delta.split_first() else {
        return;
    };
    let (&v0, rest_v) = values.split_first().expect("same length as idx_delta");
    let mut idx = d0 as usize;
    out[idx] += alpha * v0;
    let mut ds = rest_d.chunks_exact(4);
    let mut vs = rest_v.chunks_exact(4);
    for (d, v) in (&mut ds).zip(&mut vs) {
        let i0 = idx + d[0] as usize;
        let i1 = i0 + d[1] as usize;
        let i2 = i1 + d[2] as usize;
        let i3 = i2 + d[3] as usize;
        out[i0] += alpha * v[0];
        out[i1] += alpha * v[1];
        out[i2] += alpha * v[2];
        out[i3] += alpha * v[3];
        idx = i3;
    }
    for (&d, &v) in ds.remainder().iter().zip(vs.remainder()) {
        idx += d as usize;
        out[idx] += alpha * v;
    }
}

/// Delta-encode ascending absolute indices (inverse of the walk in
/// [`axpy_sparse`]).
///
/// # Panics
/// Panics if the indices are not strictly ascending.
#[must_use]
pub fn delta_encode_indices(indices: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    delta_encode_indices_into(indices, &mut out);
    out
}

/// [`delta_encode_indices`] writing into a caller-owned buffer (cleared
/// first); the allocation-free form used by the encode hot path.
///
/// # Panics
/// Panics if the indices are not strictly ascending.
pub fn delta_encode_indices_into(indices: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(indices.len());
    let mut prev = 0u32;
    for (pos, &i) in indices.iter().enumerate() {
        if pos == 0 {
            out.push(i);
        } else {
            assert!(i > prev, "indices must be strictly ascending");
            out.push(i - prev);
        }
        prev = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_finds_extremes() {
        assert_eq!(minmax(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
        assert_eq!(minmax(&[]), (0.0, 0.0));
    }

    #[test]
    fn minmax_ignores_non_finite_elements() {
        assert_eq!(
            minmax(&[f32::NAN, 3.0, f32::INFINITY, -1.0, f32::NEG_INFINITY]),
            (-1.0, 3.0)
        );
        assert_eq!(minmax(&[f32::NAN, f32::INFINITY]), (0.0, 0.0));
    }

    #[test]
    fn quantize_error_is_within_one_step() {
        let xs: Vec<f32> = (0..1000).map(|i| ((i * 37) as f32).sin() * 4.2).collect();
        let (min, scale, codes) = quantize_i8(&xs);
        let mut out = vec![0.0f32; xs.len()];
        dequantize_i8_axpy(1.0, min, scale, &codes, &mut out);
        for (x, x_hat) in xs.iter().zip(&out) {
            assert!(
                (x - x_hat).abs() <= scale,
                "error {} exceeds step {scale}",
                (x - x_hat).abs()
            );
        }
    }

    #[test]
    fn quantize_constant_slice_is_exact() {
        let xs = vec![2.5f32; 17];
        let (min, scale, codes) = quantize_i8(&xs);
        assert_eq!(scale, 0.0);
        let mut out = vec![0.0f32; 17];
        dequantize_i8_axpy(1.0, min, scale, &codes, &mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn quantize_maps_non_finite_inputs_per_contract() {
        let xs = [f32::NAN, -4.0, f32::NEG_INFINITY, 6.0, f32::INFINITY];
        let (min, scale, codes) = quantize_i8(&xs);
        // Range spans the finite elements only.
        assert_eq!(min, -4.0);
        assert!((scale - 10.0 / 255.0).abs() < 1e-6);
        // NaN and -inf land on the min endpoint, +inf on the max.
        assert_eq!(codes[0], -128);
        assert_eq!(codes[2], -128);
        assert_eq!(codes[4], 127);
        let mut out = vec![0.0f32; xs.len()];
        dequantize_i8_axpy(1.0, min, scale, &codes, &mut out);
        assert_eq!(out[0], min);
        assert_eq!(out[2], min);
        assert!((out[4] - 6.0).abs() <= scale);
    }

    #[test]
    fn quantize_all_non_finite_decodes_to_zero() {
        let xs = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let (min, scale, codes) = quantize_i8(&xs);
        assert_eq!((min, scale), (0.0, 0.0));
        assert_eq!(codes, vec![-128; 3]);
    }

    #[test]
    fn top_k_picks_largest_magnitudes_in_index_order() {
        let xs = [0.1, -5.0, 0.0, 3.0, -0.2];
        let picked = top_k_by_magnitude(&xs, 2);
        assert_eq!(picked, vec![(1, -5.0), (3, 3.0)]);
    }

    #[test]
    fn top_k_ties_break_toward_lower_index() {
        let xs = [1.0, -1.0, 1.0];
        let picked = top_k_by_magnitude(&xs, 2);
        assert_eq!(picked, vec![(0, 1.0), (1, -1.0)]);
    }

    #[test]
    fn top_k_nan_elements_lose_selection() {
        // A single NaN must not win over any real magnitude — not even
        // over exact zeros.
        let xs = [0.0, f32::NAN, 0.1, -0.2, 0.0];
        let picked = top_k_by_magnitude(&xs, 4);
        assert_eq!(
            picked.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 2, 3, 4]
        );
        // Only when k exceeds the non-NaN count does NaN get picked.
        let all = top_k_by_magnitude(&xs, 5);
        assert_eq!(all.len(), 5);
        assert!(all[1].1.is_nan());
    }

    #[test]
    fn top_k_infinite_magnitudes_still_win() {
        let xs = [1.0, f32::NEG_INFINITY, f32::NAN, 2.0];
        let picked = top_k_by_magnitude(&xs, 1);
        assert_eq!(picked[0].0, 1);
    }

    #[test]
    fn top_k_into_matches_allocating_wrapper() {
        let xs: Vec<f32> = (0..300).map(|i| ((i * 29) as f32).sin() * 7.0).collect();
        let expected = top_k_by_magnitude(&xs, 30);
        let (mut order, mut idx, mut vals) = (Vec::new(), Vec::new(), Vec::new());
        top_k_by_magnitude_into(&xs, 30, &mut order, &mut idx, &mut vals);
        assert_eq!(idx.len(), 30);
        for ((i, v), (&i2, &v2)) in expected.iter().zip(idx.iter().zip(&vals)) {
            assert_eq!(*i, i2);
            assert_eq!(v.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn unrolled_dequantize_matches_scalar_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 100] {
            let codes: Vec<i8> = (0..n).map(|i| ((i * 37) % 256) as u8 as i8).collect();
            let mut a: Vec<f32> = (0..n).map(|i| ((i * 11) as f32).sin()).collect();
            let mut b = a.clone();
            dequantize_i8_axpy(0.21, -1.5, 0.013, &codes, &mut a);
            dequantize_i8_axpy_scalar(0.21, -1.5, 0.013, &codes, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "dequantize diverged from scalar reference at n={n}"
            );
        }
    }

    #[test]
    fn unrolled_axpy_sparse_matches_scalar_bitwise() {
        for n in [0usize, 1, 2, 4, 5, 9, 40] {
            let indices: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
            let deltas = delta_encode_indices(&indices);
            let values: Vec<f32> = (0..n).map(|i| ((i * 13) as f32).cos() * 2.0).collect();
            let mut a = vec![0.1f32; n * 3 + 2];
            let mut b = a.clone();
            axpy_sparse(0.8, &deltas, &values, &mut a);
            axpy_sparse_scalar(0.8, &deltas, &values, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy_sparse diverged from scalar reference at n={n}"
            );
        }
    }

    #[test]
    fn sparse_round_trip_via_delta_indices() {
        let indices = vec![2u32, 5, 6, 40];
        let values = vec![1.0f32, -2.0, 3.0, 0.5];
        let deltas = delta_encode_indices(&indices);
        assert_eq!(deltas, vec![2, 3, 1, 34]);
        let mut out = vec![0.0f32; 41];
        axpy_sparse(2.0, &deltas, &values, &mut out);
        for (i, &v) in indices.iter().zip(&values) {
            assert_eq!(out[*i as usize], 2.0 * v);
        }
        assert_eq!(out.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn delta_encode_rejects_unsorted() {
        let _ = delta_encode_indices(&[3, 2]);
    }
}
