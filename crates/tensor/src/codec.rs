//! Low-level update-compression kernels.
//!
//! The communication subsystem (`tifl_comm`) shrinks model updates
//! before they cross the simulated wire. The numeric kernels live here,
//! next to the other flat-slice primitives, so they can be benchmarked
//! and tested against the same `f32` conventions as `ops`:
//!
//! * whole-slice affine int8 quantization ([`quantize_i8`] /
//!   [`dequantize_i8_axpy`]) — 4x smaller, error bounded by one
//!   quantization step per element;
//! * magnitude top-k selection ([`top_k_by_magnitude`]) with
//!   delta-encoded indices ([`axpy_sparse`]) — the classic sparsified
//!   gradient/update format.
//!
//! All kernels are deterministic: ties in the top-k selection break
//! toward the lower index, and every accumulation order is fixed.

/// Minimum and maximum of a flat slice (`(0.0, 0.0)` when empty).
#[must_use]
pub fn minmax(xs: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Affine int8 quantization over one flat slice: returns
/// `(min, scale, codes)`
/// with `x ≈ min + scale * (code + 128)` and
/// `scale = (max - min) / 255`.
///
/// A constant slice gets `scale = 0` and decodes exactly to `min`. The
/// reconstruction error is at most `scale` per element (round-to-nearest
/// guarantees `scale / 2`; the bound tested downstream is the full
/// step).
#[must_use]
pub fn quantize_i8(xs: &[f32]) -> (f32, f32, Vec<i8>) {
    let (lo, hi) = minmax(xs);
    let range = hi - lo;
    if range <= 0.0 {
        return (lo, 0.0, vec![-128; xs.len()]);
    }
    let scale = range / 255.0;
    let codes = xs
        .iter()
        .map(|&x| {
            let q = ((x - lo) / scale).round();
            let q = q.clamp(0.0, 255.0) as i16;
            (q - 128) as i8
        })
        .collect();
    (lo, scale, codes)
}

/// `out[i] += alpha * (min + scale * (codes[i] + 128))`: fold a
/// quantized tensor into an accumulator without materialising the
/// dequantized vector.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dequantize_i8_axpy(alpha: f32, min: f32, scale: f32, codes: &[i8], out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequantize_i8_axpy length mismatch");
    for (o, &q) in out.iter_mut().zip(codes) {
        *o += alpha * (min + scale * (f32::from(q) + 128.0));
    }
}

/// Indices and values of the `k` largest-magnitude elements of `xs`,
/// returned in ascending index order. Ties in magnitude break toward
/// the lower index, so the selection is deterministic.
///
/// # Panics
/// Panics if `k` is zero or exceeds `xs.len()`.
#[must_use]
pub fn top_k_by_magnitude(xs: &[f32], k: usize) -> Vec<(u32, f32)> {
    assert!(k > 0 && k <= xs.len(), "top-k of {k} from {}", xs.len());
    let mut order: Vec<u32> = (0..xs.len() as u32).collect();
    // (magnitude desc, index asc) is a total order (NaNs sort last via
    // total_cmp on the absolute value), so an O(n) partition around the
    // k-th element selects exactly the winners a full sort would.
    let cmp = |&a: &u32, &b: &u32| {
        let ma = xs[a as usize].abs();
        let mb = xs[b as usize].abs();
        mb.total_cmp(&ma).then_with(|| a.cmp(&b))
    };
    if k < order.len() {
        order.select_nth_unstable_by(k - 1, cmp);
    }
    let mut picked = order[..k].to_vec();
    picked.sort_unstable();
    picked.into_iter().map(|i| (i, xs[i as usize])).collect()
}

/// `out[idx] += alpha * value` over a delta-encoded sparse vector:
/// `idx_delta[0]` is the first absolute index, every later entry the
/// gap to its predecessor.
///
/// # Panics
/// Panics if the arrays differ in length or an index lands out of
/// bounds.
pub fn axpy_sparse(alpha: f32, idx_delta: &[u32], values: &[f32], out: &mut [f32]) {
    assert_eq!(idx_delta.len(), values.len(), "axpy_sparse length mismatch");
    let mut idx = 0usize;
    for (pos, (&d, &v)) in idx_delta.iter().zip(values).enumerate() {
        idx = if pos == 0 {
            d as usize
        } else {
            idx + d as usize
        };
        out[idx] += alpha * v;
    }
}

/// Delta-encode ascending absolute indices (inverse of the walk in
/// [`axpy_sparse`]).
///
/// # Panics
/// Panics if the indices are not strictly ascending.
#[must_use]
pub fn delta_encode_indices(indices: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(indices.len());
    let mut prev = 0u32;
    for (pos, &i) in indices.iter().enumerate() {
        if pos == 0 {
            out.push(i);
        } else {
            assert!(i > prev, "indices must be strictly ascending");
            out.push(i - prev);
        }
        prev = i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_finds_extremes() {
        assert_eq!(minmax(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
        assert_eq!(minmax(&[]), (0.0, 0.0));
    }

    #[test]
    fn quantize_error_is_within_one_step() {
        let xs: Vec<f32> = (0..1000).map(|i| ((i * 37) as f32).sin() * 4.2).collect();
        let (min, scale, codes) = quantize_i8(&xs);
        let mut out = vec![0.0f32; xs.len()];
        dequantize_i8_axpy(1.0, min, scale, &codes, &mut out);
        for (x, x_hat) in xs.iter().zip(&out) {
            assert!(
                (x - x_hat).abs() <= scale,
                "error {} exceeds step {scale}",
                (x - x_hat).abs()
            );
        }
    }

    #[test]
    fn quantize_constant_slice_is_exact() {
        let xs = vec![2.5f32; 17];
        let (min, scale, codes) = quantize_i8(&xs);
        assert_eq!(scale, 0.0);
        let mut out = vec![0.0f32; 17];
        dequantize_i8_axpy(1.0, min, scale, &codes, &mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn top_k_picks_largest_magnitudes_in_index_order() {
        let xs = [0.1, -5.0, 0.0, 3.0, -0.2];
        let picked = top_k_by_magnitude(&xs, 2);
        assert_eq!(picked, vec![(1, -5.0), (3, 3.0)]);
    }

    #[test]
    fn top_k_ties_break_toward_lower_index() {
        let xs = [1.0, -1.0, 1.0];
        let picked = top_k_by_magnitude(&xs, 2);
        assert_eq!(picked, vec![(0, 1.0), (1, -1.0)]);
    }

    #[test]
    fn sparse_round_trip_via_delta_indices() {
        let indices = vec![2u32, 5, 6, 40];
        let values = vec![1.0f32, -2.0, 3.0, 0.5];
        let deltas = delta_encode_indices(&indices);
        assert_eq!(deltas, vec![2, 3, 1, 34]);
        let mut out = vec![0.0f32; 41];
        axpy_sparse(2.0, &deltas, &values, &mut out);
        for (i, &v) in indices.iter().zip(&values) {
            assert_eq!(out[*i as usize], 2.0 * v);
        }
        assert_eq!(out.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn delta_encode_rejects_unsorted() {
        let _ = delta_encode_indices(&[3, 2]);
    }
}
