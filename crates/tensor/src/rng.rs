//! Deterministic RNG plumbing.
//!
//! All stochastic components in the workspace are seeded explicitly so
//! every experiment is reproducible bit-for-bit. [`split_seed`] derives
//! independent child seeds from a parent seed and a stream label, which
//! lets each client, round, or dataset own a decorrelated generator
//! without any shared mutable state (important when local training runs
//! in parallel under rayon).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create a [`StdRng`] from a raw 64-bit seed.
pub fn seed_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from `(parent, stream)` with a SplitMix64 finaliser.
///
/// SplitMix64 is a bijective avalanche mix, so distinct `(parent, stream)`
/// pairs map to well-separated child seeds even when the inputs are small
/// consecutive integers (client ids, round numbers, ...).
#[must_use]
pub fn split_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A labelled stream of child seeds derived from one parent seed.
///
/// Successive calls to [`SeedStream::next_seed`] return decorrelated
/// seeds; [`SeedStream::named`] derives a substream for a component.
#[derive(Debug, Clone)]
pub struct SeedStream {
    parent: u64,
    counter: u64,
}

impl SeedStream {
    /// Start a stream rooted at `parent`.
    #[must_use]
    pub fn new(parent: u64) -> Self {
        Self { parent, counter: 0 }
    }

    /// Next child seed in the stream.
    pub fn next_seed(&mut self) -> u64 {
        let s = split_seed(self.parent, self.counter);
        self.counter += 1;
        s
    }

    /// Next child RNG in the stream.
    pub fn next_rng(&mut self) -> StdRng {
        seed_rng(self.next_seed())
    }

    /// Derive an independent substream labelled by `stream`.
    ///
    /// Substreams with different labels never collide with each other or
    /// with seeds produced by `next_seed` on the parent (the label space
    /// is mixed through SplitMix64 twice).
    #[must_use]
    pub fn named(&self, stream: u64) -> SeedStream {
        SeedStream::new(split_seed(
            split_seed(self.parent, u64::MAX ^ stream),
            stream,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }

    #[test]
    fn split_seed_separates_streams() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn seed_stream_yields_distinct_seeds() {
        let mut s = SeedStream::new(1);
        let seeds: Vec<u64> = (0..100).map(|_| s.next_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn named_substreams_are_independent() {
        let root = SeedStream::new(99);
        let mut a = root.named(0);
        let mut b = root.named(1);
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn rng_reproducible_across_instances() {
        let mut r1 = seed_rng(7);
        let mut r2 = seed_rng(7);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }
}
