//! Flat parameter vectors.
//!
//! FedAvg aggregates whole models as weighted means of their parameters.
//! [`ParamVec`] is the wire/aggregation format: every model can flatten
//! itself into one and load itself back from one, so the FL layer never
//! needs to know a model's internal structure.

use crate::ops;
use serde::{Deserialize, Serialize};

/// A model's parameters flattened into a single `Vec<f32>`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamVec(pub Vec<f32>);

impl ParamVec {
    /// Zero vector of length `n`.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self(vec![0.0; n])
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Read-only view.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &ParamVec) {
        ops::axpy(alpha, &other.0, &mut self.0);
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        ops::scale(alpha, &mut self.0);
    }

    /// Euclidean distance to another parameter vector.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn l2_distance(&self, other: &ParamVec) -> f32 {
        assert_eq!(self.len(), other.len(), "l2_distance length mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Weighted mean of parameter vectors: `Σ w_i v_i / Σ w_i`.
    ///
    /// This is exactly line 8 of the paper's Algorithm 1 (FedAvg), with
    /// `w_i` the training-set size of client `i`.
    ///
    /// # Panics
    /// Panics if `items` is empty, lengths differ, or all weights are zero.
    #[must_use]
    pub fn weighted_mean(items: &[(ParamVec, f32)]) -> ParamVec {
        Self::weighted_mean_ref(&items.iter().map(|(v, w)| (v, *w)).collect::<Vec<_>>())
    }

    /// [`ParamVec::weighted_mean`] over borrowed vectors (avoids clones).
    #[must_use]
    pub fn weighted_mean_ref(items: &[(&ParamVec, f32)]) -> ParamVec {
        assert!(!items.is_empty(), "weighted_mean of zero vectors");
        let n = items[0].0.len();
        let total: f64 = items.iter().map(|(_, w)| f64::from(*w)).sum();
        assert!(total > 0.0, "weighted_mean with zero total weight");
        let mut out = ParamVec::zeros(n);
        for (v, w) in items {
            assert_eq!(v.len(), n, "weighted_mean length mismatch");
            let coeff = (f64::from(*w) / total) as f32;
            out.axpy(coeff, v);
        }
        out
    }
}

impl From<Vec<f32>> for ParamVec {
    fn from(v: Vec<f32>) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_equal_weights_is_mean() {
        let a = ParamVec(vec![1.0, 2.0]);
        let b = ParamVec(vec![3.0, 6.0]);
        let m = ParamVec::weighted_mean(&[(a, 1.0), (b, 1.0)]);
        assert_eq!(m.0, vec![2.0, 4.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let a = ParamVec(vec![0.0]);
        let b = ParamVec(vec![10.0]);
        let m = ParamVec::weighted_mean(&[(a, 1.0), (b, 3.0)]);
        assert!((m.0[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_mean_single_identity() {
        let a = ParamVec(vec![1.5, -2.5]);
        let m = ParamVec::weighted_mean(&[(a.clone(), 123.0)]);
        for (x, y) in m.0.iter().zip(&a.0) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn weighted_mean_rejects_zero_weights() {
        let _ = ParamVec::weighted_mean(&[(ParamVec(vec![1.0]), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn weighted_mean_rejects_empty() {
        let _ = ParamVec::weighted_mean(&[]);
    }

    #[test]
    fn l2_distance_basic() {
        let a = ParamVec(vec![0.0, 0.0]);
        let b = ParamVec(vec![3.0, 4.0]);
        assert!((a.l2_distance(&b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = ParamVec(vec![1.0, 1.0]);
        a.axpy(2.0, &ParamVec(vec![1.0, 2.0]));
        assert_eq!(a.0, vec![3.0, 5.0]);
        a.scale(0.5);
        assert_eq!(a.0, vec![1.5, 2.5]);
    }
}
