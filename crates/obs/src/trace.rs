//! Trace events, the sink trait, and the preallocated ring recorder.
//!
//! A trace is a sequence of [`TraceRecord`]s: a monotone sequence
//! number, a **virtual-time** stamp, and a scalar-only [`TraceEvent`]
//! payload. Virtual time is the only clock core code may touch (the
//! `wall-clock-in-core` lint enforces this); wall-clock measurements
//! stay outside the traced stream, in the sweep scheduler's sidecar
//! summary.
//!
//! The recording path is engineered for the workspace's allocation
//! gate: [`TraceEvent`] is `Copy` with no heap payloads, and
//! [`RingRecorder`] writes into a buffer preallocated at construction
//! — steady-state recording performs zero allocations (pinned by the
//! root `tests/alloc_regression.rs`).

use serde::{Deserialize, Serialize};

/// One structured trace event.
///
/// Payloads are scalars only (`Copy`, no strings) so that recording an
/// event never allocates. All client/round identifiers are widened
/// from `usize` at the emission site; wire sizes are bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A §4.2 profiling pass completed: `clients` were probed,
    /// `dropouts` never responded, and the pass consumed
    /// `profiling_sec` of virtual time.
    ProfilePass {
        /// Clients probed by the pass.
        clients: u32,
        /// Clients that dropped out (no response within the cutoff).
        dropouts: u32,
        /// Virtual seconds the pass consumed.
        profiling_sec: f64,
    },
    /// A training round began with `selected` clients chosen.
    RoundStart {
        /// Round index (0-based).
        round: u64,
        /// Number of clients selected this round.
        selected: u32,
    },
    /// The aggregator dispatched the global model to a client.
    Dispatch {
        /// Round index.
        round: u64,
        /// Client identifier.
        client: u32,
    },
    /// A client's update arrived within the round deadline.
    Complete {
        /// Round index.
        round: u64,
        /// Client identifier.
        client: u32,
    },
    /// A client hit the round timeout `T_max` without responding.
    TimedOut {
        /// Round index.
        round: u64,
        /// Client identifier.
        client: u32,
    },
    /// A straggler was cancelled when the first-`k` quorum closed the
    /// round before it finished.
    Cancelled {
        /// Round index.
        round: u64,
        /// Client identifier.
        client: u32,
    },
    /// A contributor's update was folded into the global aggregate,
    /// shipping `wire_bytes` over the uplink.
    Fold {
        /// Round index.
        round: u64,
        /// Client identifier.
        client: u32,
        /// Encoded (post-codec) upload size in bytes.
        wire_bytes: u64,
    },
    /// The round's held-out evaluation ran.
    Eval {
        /// Round index.
        round: u64,
    },
    /// The round closed after `latency` virtual seconds (Eq. 1).
    RoundEnd {
        /// Round index.
        round: u64,
        /// Round latency `max_i L_i` in virtual seconds.
        latency: f64,
        /// Clients whose updates were aggregated.
        contributors: u32,
        /// Total uplink bytes this round (wire-encoded).
        bytes_up: u64,
        /// Total downlink bytes this round.
        bytes_down: u64,
    },
    /// Asynchronous mode: an update arrived with the given staleness;
    /// `fresh` updates beat the staleness bound and were folded.
    AsyncArrival {
        /// Client identifier.
        client: u32,
        /// Rounds elapsed since the client's model snapshot.
        staleness: u64,
        /// Whether the update was folded (`true`) or discarded.
        fresh: bool,
    },
    /// Asynchronous mode: the global timeout fired.
    AsyncTimeout,
}

/// A recorded event: sequence number, virtual-time stamp, payload.
///
/// `seq` is the global emission index (monotone from 0 per run), so a
/// rotated ring still tells you how far into the run a record falls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global emission index, monotone from 0.
    pub seq: u64,
    /// Virtual timestamp in seconds.
    pub vt: f64,
    /// The event payload.
    pub event: TraceEvent,
}

/// Destination for trace events.
///
/// Implementations must not introduce nondeterminism: no wall-clock
/// reads, no thread-dependent state. The engine emits events in a
/// canonical order derived from the round plans, so a faithful sink
/// observes the same stream on every backend.
pub trait TraceSink {
    /// Record one event at virtual time `vt`.
    fn record(&mut self, vt: f64, event: TraceEvent);
}

/// A sink that drops everything: the explicit disabled path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _vt: f64, _event: TraceEvent) {}
}

/// Fixed-capacity ring recorder, preallocated at construction.
///
/// Stores the **most recent** `capacity` records; older records are
/// overwritten and counted in [`RingRecorder::dropped`]. A capacity of
/// zero disables storage entirely (every record is dropped) while
/// still maintaining the sequence counter — the mode the sweep
/// scheduler uses to collect metrics without buffering a trace.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl RingRecorder {
    /// Create a recorder holding at most `capacity` records. The
    /// buffer is allocated here, once; recording never reallocates.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity the ring was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records overwritten (or discarded, for a zero-capacity ring).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// The held records in emission (`seq`) order. Allocates — export
    /// path only, not for the hot loop.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Consume the ring, returning records in emission order.
    #[must_use]
    pub fn into_records(mut self) -> Vec<TraceRecord> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, vt: f64, event: TraceEvent) {
        let rec = TraceRecord {
            seq: self.next_seq,
            vt,
            event,
        };
        self.next_seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.dropped += 1;
            if self.cap > 0 {
                self.buf[self.head] = rec;
                self.head += 1;
                if self.head == self.cap {
                    self.head = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> TraceEvent {
        TraceEvent::Eval { round }
    }

    #[test]
    fn ring_keeps_the_most_recent_records_in_seq_order() {
        let mut ring = RingRecorder::new(3);
        for i in 0..5 {
            ring.record(i as f64, ev(i));
        }
        let recs = ring.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.into_records().last().unwrap().event, ev(4));
    }

    #[test]
    fn zero_capacity_ring_counts_but_stores_nothing() {
        let mut ring = RingRecorder::new(0);
        for i in 0..4 {
            ring.record(i as f64, ev(i));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.total(), 4);
        assert!(ring.records().is_empty());
    }

    #[test]
    fn recording_within_capacity_never_reallocates() {
        let mut ring = RingRecorder::new(8);
        let ptr = ring.buf.as_ptr();
        for i in 0..100 {
            ring.record(i as f64, ev(i));
        }
        assert_eq!(ring.buf.as_ptr(), ptr);
        assert_eq!(ring.len(), 8);
    }

    #[test]
    fn records_round_trip_through_json() {
        let rec = TraceRecord {
            seq: 7,
            vt: 12.5,
            event: TraceEvent::Fold {
                round: 3,
                client: 9,
                wire_bytes: 4096,
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
