//! Content digests and per-round digest chains.
//!
//! The workspace's determinism contract says a run is a pure function
//! of its request — so two artifacts that disagree are evidence of
//! corruption, staleness, or a broken backend. This module provides
//! the primitive that makes such disagreement *localizable*: a 128-bit
//! FNV-1a content digest ([`Digest128`]) of any canonically-serialized
//! value, and a [`DigestChain`] that folds a sequence of digests (one
//! per training round) into a running head.
//!
//! Two properties make the chain useful for auditing:
//!
//! * **Order sensitivity** — the fold mixes the previous head into
//!   every step, so swapping two (distinct) rounds changes the head;
//! * **Prefix property** — the head after `k` folds depends only on
//!   the first `k` items, so the chain over a completed run extends
//!   the chain over any prefix of it. Comparing two runs round by
//!   round therefore localizes the *first* divergent round in
//!   O(rounds), without re-running anything.
//!
//! The hash family is the same two-pass 64+64-bit FNV-1a the sweep
//! crate keys its artifacts with (`RunKey`), chosen for speed and
//! freedom from external deps — it is a *content check against
//! accident* (bit rot, truncation, nondeterminism bugs), not a
//! cryptographic commitment against an adversary.

use serde::{Deserialize, Serialize};

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a 64-bit offset basis (lower half of the key).
const FNV_BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
/// An independent basis for the upper half (the FNV-1a *128-bit*
/// offset basis truncated to 64 bits).
const FNV_BASIS_HI: u64 = 0x6c62_272e_07bb_0142;

fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 128-bit content digest: two independent 64-bit FNV-1a passes over
/// the same bytes. Rendered (and serialized) as 32 lowercase hex
/// digits, exactly like the sweep crate's `RunKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest128(pub u128);

impl Digest128 {
    /// Digest raw bytes.
    #[must_use]
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let lo = fnv1a64(bytes, FNV_BASIS_LO);
        let hi = fnv1a64(bytes, FNV_BASIS_HI);
        Digest128((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Digest a canonical JSON string (the interchange form every
    /// serializable value in the workspace renders to
    /// deterministically).
    #[must_use]
    pub fn of_json(canonical_json: &str) -> Self {
        Self::of_bytes(canonical_json.as_bytes())
    }

    /// Digest any serializable value via its compact canonical JSON.
    ///
    /// The vendored serializer renders object fields in declaration
    /// order and floats in shortest-round-trip form, so equal values
    /// always produce equal digests and distinct values are separated
    /// by their serialized content.
    #[must_use]
    pub fn of_value<T: Serialize>(value: &T) -> Self {
        let json = serde_json::to_string(value).expect("digested values serialize");
        Self::of_json(&json)
    }

    /// Parse the 32-hex-digit rendering back into a digest.
    #[must_use]
    pub fn parse(hex: &str) -> Option<Self> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Digest128)
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Serialize for Digest128 {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for Digest128 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => {
                Digest128::parse(s).ok_or_else(|| serde::Error::custom(format!("bad digest `{s}`")))
            }
            other => Err(serde::Error::expected("digest string", other)),
        }
    }
}

/// A running fold over a sequence of [`Digest128`]s: each step hashes
/// `head ‖ item`, so the head after `k` folds commits to the first `k`
/// items *and their order*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestChain {
    head: Digest128,
    len: u64,
}

impl Default for DigestChain {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestChain {
    /// The empty chain (head = digest of the empty byte string).
    #[must_use]
    pub fn new() -> Self {
        Self {
            head: Digest128::of_bytes(&[]),
            len: 0,
        }
    }

    /// Fold one item in; returns the new head.
    pub fn fold(&mut self, item: Digest128) -> Digest128 {
        let mut bytes = [0u8; 32];
        bytes[..16].copy_from_slice(&self.head.0.to_le_bytes());
        bytes[16..].copy_from_slice(&item.0.to_le_bytes());
        self.head = Digest128::of_bytes(&bytes);
        self.len += 1;
        self.head
    }

    /// The current head.
    #[must_use]
    pub fn head(&self) -> Digest128 {
        self.head
    }

    /// Items folded so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been folded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The head after folding every item of `items`, in order.
    #[must_use]
    pub fn of(items: impl IntoIterator<Item = Digest128>) -> Digest128 {
        let mut chain = Self::new();
        for item in items {
            chain.fold(item);
        }
        chain.head()
    }

    /// Every intermediate head: `heads(items)[k]` is the chain head
    /// after folding `items[..=k]` — the prefix observable a diff
    /// walks to localize the first divergent position.
    #[must_use]
    pub fn heads(items: impl IntoIterator<Item = Digest128>) -> Vec<Digest128> {
        let mut chain = Self::new();
        items.into_iter().map(|item| chain.fold(item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_separate_content() {
        assert_eq!(Digest128::of_bytes(b"abc"), Digest128::of_bytes(b"abc"));
        assert_ne!(Digest128::of_bytes(b"abc"), Digest128::of_bytes(b"abd"));
        assert_ne!(Digest128::of_bytes(b""), Digest128::of_bytes(b"\0"));
    }

    #[test]
    fn digests_render_parse_and_serialize_as_hex() {
        let d = Digest128(0x0123_4567_89ab_cdef_0f0f_0f0f_0f0f_0f0f);
        let hex = d.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest128::parse(&hex), Some(d));
        assert_eq!(Digest128::parse("nope"), None);
        let json = serde_json::to_string(&d).expect("serializes");
        let back: Digest128 = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, d);
    }

    #[test]
    fn chain_is_order_sensitive() {
        let a = Digest128::of_bytes(b"a");
        let b = Digest128::of_bytes(b"b");
        assert_ne!(DigestChain::of([a, b]), DigestChain::of([b, a]));
        assert_ne!(DigestChain::of([a]), DigestChain::of([a, a]));
        assert_ne!(DigestChain::of([]), DigestChain::of([a]));
    }

    #[test]
    fn chain_heads_are_prefix_computations() {
        let items: Vec<Digest128> = (0u8..5).map(|i| Digest128::of_bytes(&[i])).collect();
        let heads = DigestChain::heads(items.clone());
        assert_eq!(heads.len(), 5);
        for k in 0..items.len() {
            assert_eq!(
                heads[k],
                DigestChain::of(items[..=k].iter().copied()),
                "head {k} must equal the chain over the first {}",
                k + 1
            );
        }
    }

    #[test]
    fn value_digests_follow_canonical_json() {
        assert_eq!(
            Digest128::of_value(&vec![1u64, 2]),
            Digest128::of_json("[1,2]")
        );
        assert_ne!(
            Digest128::of_value(&vec![1u64, 2]),
            Digest128::of_value(&vec![2u64, 1])
        );
    }
}
