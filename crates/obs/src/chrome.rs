//! Chrome trace-event JSON export.
//!
//! Converts a recorded trace into the [trace-event format] consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! JSON array of `"X"` (complete) spans and `"i"` (instant) events.
//! Virtual seconds map to the format's microsecond timestamps, so one
//! simulated second reads as one millisecond-scale tick in the viewer
//! and a whole CIFAR-10 run fits on screen.
//!
//! Track layout: the virtual-time lane is process 1 — thread 0
//! carries round spans, profiling passes, folds and evals; each
//! client gets its own thread (`tid = client + 1`) carrying its
//! per-round training span from `Dispatch` to
//! `Complete`/`Cancelled`/`TimedOut`, so stragglers gating `max_i
//! L_i` (Eq. 1) are visible as the long bars that pin the round span
//! open. [`host_chrome_trace`] renders host-time phase spans as a
//! second process (`pid = 2`) so `tifl trace --host` shows both
//! clocks side by side — same viewer, two lanes, two epochs.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde::Serialize;

use crate::prof::HostSpan;
use crate::trace::{TraceEvent, TraceRecord};

/// One event in Chrome trace-event JSON form.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChromeEvent {
    /// Display name.
    pub name: String,
    /// Comma-free category tag (used for filtering in the viewer).
    pub cat: String,
    /// Phase: `"X"` complete span or `"i"` instant.
    pub ph: String,
    /// Start timestamp in microseconds (virtual seconds × 1e6).
    pub ts: f64,
    /// Span duration in microseconds (0 for instants).
    pub dur: f64,
    /// Process id: 1 for the virtual-time lane, 2 for the host lane.
    pub pid: u64,
    /// Thread id: 0 for round-level events, `client + 1` for clients.
    pub tid: u64,
}

const US: f64 = 1e6;

fn span(name: String, cat: &str, start: f64, end: f64, tid: u64) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts: start * US,
        dur: (end - start) * US,
        pid: 1,
        tid,
    }
}

fn instant(name: String, cat: &str, at: f64, tid: u64) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "i".to_string(),
        ts: at * US,
        dur: 0.0,
        pid: 1,
        tid,
    }
}

/// Convert a recorded trace into Chrome trace-event JSON events.
///
/// Serialize the result with `serde_json` and load the file directly
/// in `chrome://tracing` or Perfetto (both accept a bare event
/// array). Dispatches with no matching terminal event (trace cut off
/// mid-round by ring rotation) are dropped; unmatched terminal
/// events render as instants.
#[must_use]
pub fn chrome_trace(records: &[TraceRecord]) -> Vec<ChromeEvent> {
    let mut out = Vec::with_capacity(records.len());
    // Open spans awaiting their terminal event, linear-scanned: the
    // working set is one round's dispatches plus open rounds.
    let mut open_clients: Vec<(u64, u32, f64)> = Vec::new(); // (round, client, start)
    let mut open_rounds: Vec<(u64, f64)> = Vec::new(); // (round, start)

    let close_client = |open: &mut Vec<(u64, u32, f64)>,
                        out: &mut Vec<ChromeEvent>,
                        round: u64,
                        client: u32,
                        end: f64,
                        cat: &str| {
        let name = format!("client {client} r{round}");
        match open.iter().position(|&(r, c, _)| r == round && c == client) {
            Some(i) => {
                let (_, _, start) = open.swap_remove(i);
                out.push(span(name, cat, start, end, u64::from(client) + 1));
            }
            None => out.push(instant(name, cat, end, u64::from(client) + 1)),
        }
    };

    for rec in records {
        match rec.event {
            TraceEvent::ProfilePass {
                clients,
                dropouts,
                profiling_sec,
            } => out.push(span(
                format!("profile {clients} clients ({dropouts} dropouts)"),
                "profile",
                rec.vt,
                rec.vt + profiling_sec,
                0,
            )),
            TraceEvent::RoundStart { round, .. } => open_rounds.push((round, rec.vt)),
            TraceEvent::Dispatch { round, client } => {
                open_clients.push((round, client, rec.vt));
            }
            TraceEvent::Complete { round, client } => {
                close_client(&mut open_clients, &mut out, round, client, rec.vt, "train");
            }
            TraceEvent::TimedOut { round, client } => {
                close_client(
                    &mut open_clients,
                    &mut out,
                    round,
                    client,
                    rec.vt,
                    "timeout",
                );
            }
            TraceEvent::Cancelled { round, client } => {
                close_client(
                    &mut open_clients,
                    &mut out,
                    round,
                    client,
                    rec.vt,
                    "cancelled",
                );
            }
            TraceEvent::Fold {
                round,
                client,
                wire_bytes,
            } => out.push(instant(
                format!("fold c{client} r{round} ({wire_bytes} B)"),
                "fold",
                rec.vt,
                0,
            )),
            TraceEvent::Eval { round } => {
                out.push(instant(format!("eval r{round}"), "eval", rec.vt, 0));
            }
            TraceEvent::RoundEnd { round, .. } => {
                match open_rounds.iter().position(|&(r, _)| r == round) {
                    Some(i) => {
                        let (_, start) = open_rounds.swap_remove(i);
                        out.push(span(format!("round {round}"), "round", start, rec.vt, 0));
                    }
                    None => out.push(instant(format!("round {round}"), "round", rec.vt, 0)),
                }
                // A closed round closes its clients: anything still
                // open from this round was cut off by ring rotation.
                open_clients.retain(|&(r, _, _)| r != round);
            }
            TraceEvent::AsyncArrival {
                client, staleness, ..
            } => out.push(instant(
                format!("arrival c{client} s{staleness}"),
                "async",
                rec.vt,
                u64::from(client) + 1,
            )),
            TraceEvent::AsyncTimeout => {
                out.push(instant("async timeout".to_string(), "async", rec.vt, 0));
            }
        }
    }
    out
}

/// Process id of the virtual-time lane.
pub const VIRTUAL_PID: u64 = 1;
/// Process id of the host-time lane.
pub const HOST_PID: u64 = 2;

/// Render host-time phase spans as a second trace process.
///
/// Host spans carry their own epoch (the profiler clock's), so they
/// get their own `pid` ([`HOST_PID`]) rather than sharing the virtual
/// lane's timeline; the viewer shows the two processes stacked. Each
/// span becomes one `"X"` event on thread 0, named `<phase> r<round>`
/// and categorized `host:<phase>` for filtering. Concatenate with
/// [`chrome_trace`]'s output for the merged `tifl trace --host` file.
#[must_use]
pub fn host_chrome_trace(spans: &[HostSpan]) -> Vec<ChromeEvent> {
    spans
        .iter()
        .map(|s| ChromeEvent {
            name: format!("{} r{}", s.phase.name(), s.round),
            cat: format!("host:{}", s.phase.name()),
            ph: "X".to_string(),
            ts: s.start * US,
            dur: s.dur() * US,
            pid: HOST_PID,
            tid: 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::Phase;

    fn rec(seq: u64, vt: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, vt, event }
    }

    #[test]
    fn spans_pair_dispatch_with_terminal_events() {
        let records = vec![
            rec(
                0,
                0.0,
                TraceEvent::RoundStart {
                    round: 0,
                    selected: 2,
                },
            ),
            rec(
                1,
                0.0,
                TraceEvent::Dispatch {
                    round: 0,
                    client: 3,
                },
            ),
            rec(
                2,
                0.0,
                TraceEvent::Dispatch {
                    round: 0,
                    client: 5,
                },
            ),
            rec(
                3,
                2.0,
                TraceEvent::Complete {
                    round: 0,
                    client: 3,
                },
            ),
            rec(
                4,
                4.0,
                TraceEvent::Cancelled {
                    round: 0,
                    client: 5,
                },
            ),
            rec(
                5,
                4.0,
                TraceEvent::RoundEnd {
                    round: 0,
                    latency: 4.0,
                    contributors: 1,
                    bytes_up: 10,
                    bytes_down: 20,
                },
            ),
        ];
        let events = chrome_trace(&records);
        let trains: Vec<_> = events.iter().filter(|e| e.cat == "train").collect();
        assert_eq!(trains.len(), 1);
        assert_eq!(trains[0].tid, 4);
        assert!((trains[0].dur - 2.0 * 1e6).abs() < 1e-6);
        let round: Vec<_> = events.iter().filter(|e| e.cat == "round").collect();
        assert_eq!(round.len(), 1);
        assert_eq!(round[0].ph, "X");
        assert!((round[0].dur - 4.0 * 1e6).abs() < 1e-6);
        assert!(events.iter().any(|e| e.cat == "cancelled"));
    }

    #[test]
    fn truncated_traces_degrade_to_instants() {
        // Ring rotation ate the Dispatch: the Complete still renders.
        let records = vec![rec(
            10,
            7.0,
            TraceEvent::Complete {
                round: 2,
                client: 0,
            },
        )];
        let events = chrome_trace(&records);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, "i");
    }

    #[test]
    fn host_lane_gets_its_own_pid() {
        let spans = vec![
            HostSpan {
                phase: Phase::Plan,
                round: 0,
                start: 0.0,
                end: 1.0,
            },
            HostSpan {
                phase: Phase::Train,
                round: 0,
                start: 2.0,
                end: 5.0,
            },
        ];
        let host = host_chrome_trace(&spans);
        assert_eq!(host.len(), 2);
        assert!(host.iter().all(|e| e.pid == HOST_PID && e.ph == "X"));
        assert_eq!(host[0].name, "plan r0");
        assert_eq!(host[1].cat, "host:train");
        assert!((host[1].dur - 3.0 * 1e6).abs() < 1e-6);
        // Virtual-lane events keep pid 1, so a merged file has two
        // distinct processes.
        let virt = chrome_trace(&[rec(0, 1.0, TraceEvent::Eval { round: 0 })]);
        assert!(virt.iter().all(|e| e.pid == VIRTUAL_PID));
    }
}
