//! [`RunObserver`]: the sink a runner attaches to a training session.
//!
//! Couples a [`RingRecorder`] with a pre-registered
//! [`MetricsRegistry`], folding every trace event into both. All
//! metric handles are registered at construction, so the per-event
//! path is allocation-free (ring write + counter bumps).

use crate::metrics::{CounterId, GaugeId, HistId, MetricsRegistry, MetricsSnapshot};
use crate::trace::{RingRecorder, TraceEvent, TraceRecord, TraceSink};

/// Fixed bucket bounds (virtual seconds) for the round-latency
/// histogram. Chosen to straddle the paper's CIFAR-10 round latencies
/// across tiers (§5.2: seconds for the fast tier, thousands for the
/// slow one).
pub const LATENCY_BUCKETS_SEC: [f64; 10] = [
    1.0, 5.0, 20.0, 60.0, 180.0, 600.0, 1800.0, 3600.0, 10800.0, 43200.0,
];

struct Ids {
    profile_passes: CounterId,
    rounds: CounterId,
    dispatches: CounterId,
    completes: CounterId,
    timeouts: CounterId,
    cancels: CounterId,
    folds: CounterId,
    evals: CounterId,
    bytes_up: CounterId,
    bytes_down: CounterId,
    async_arrivals: CounterId,
    async_stale: CounterId,
    async_timeouts: CounterId,
    virtual_time_sec: GaugeId,
    round_latency_sec: HistId,
}

/// Ring recorder + metrics registry driven by one event stream.
///
/// Create with the desired trace capacity (`0` keeps metrics but
/// stores no records — the sweep scheduler's mode), attach to a
/// session, then [`RunObserver::finish`] to harvest the trace and the
/// snapshot.
pub struct RunObserver {
    ring: RingRecorder,
    metrics: MetricsRegistry,
    ids: Ids,
}

impl RunObserver {
    /// Build an observer whose ring holds up to `ring_capacity`
    /// records. All allocation happens here.
    #[must_use]
    pub fn new(ring_capacity: usize) -> Self {
        let mut metrics = MetricsRegistry::new();
        let ids = Ids {
            profile_passes: metrics.counter("profile_passes"),
            rounds: metrics.counter("rounds"),
            dispatches: metrics.counter("dispatches"),
            completes: metrics.counter("completes"),
            timeouts: metrics.counter("timeouts"),
            cancels: metrics.counter("cancels"),
            folds: metrics.counter("folds"),
            evals: metrics.counter("evals"),
            bytes_up: metrics.counter("bytes_up"),
            bytes_down: metrics.counter("bytes_down"),
            async_arrivals: metrics.counter("async_arrivals"),
            async_stale: metrics.counter("async_stale"),
            async_timeouts: metrics.counter("async_timeouts"),
            virtual_time_sec: metrics.gauge("virtual_time_sec"),
            round_latency_sec: metrics.histogram("round_latency_sec", &LATENCY_BUCKETS_SEC),
        };
        Self {
            ring: RingRecorder::new(ring_capacity),
            metrics,
            ids,
        }
    }

    /// The ring recorder (e.g. to inspect drop counts).
    #[must_use]
    pub fn ring(&self) -> &RingRecorder {
        &self.ring
    }

    /// Snapshot the metrics without consuming the observer.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Consume the observer: the recorded trace (emission order) and
    /// the final metrics snapshot.
    #[must_use]
    pub fn finish(self) -> (Vec<TraceRecord>, MetricsSnapshot) {
        let snapshot = self.metrics.snapshot();
        (self.ring.into_records(), snapshot)
    }
}

impl TraceSink for RunObserver {
    fn record(&mut self, vt: f64, event: TraceEvent) {
        self.ring.record(vt, event);
        let m = &mut self.metrics;
        let ids = &self.ids;
        match event {
            TraceEvent::ProfilePass { .. } => m.inc(ids.profile_passes, 1),
            TraceEvent::RoundStart { .. } => {}
            TraceEvent::Dispatch { .. } => m.inc(ids.dispatches, 1),
            TraceEvent::Complete { .. } => m.inc(ids.completes, 1),
            TraceEvent::TimedOut { .. } => m.inc(ids.timeouts, 1),
            TraceEvent::Cancelled { .. } => m.inc(ids.cancels, 1),
            TraceEvent::Fold { .. } => m.inc(ids.folds, 1),
            TraceEvent::Eval { .. } => m.inc(ids.evals, 1),
            TraceEvent::RoundEnd {
                latency,
                bytes_up,
                bytes_down,
                ..
            } => {
                m.inc(ids.rounds, 1);
                m.inc(ids.bytes_up, bytes_up);
                m.inc(ids.bytes_down, bytes_down);
                m.set(ids.virtual_time_sec, vt);
                m.observe(ids.round_latency_sec, latency);
            }
            TraceEvent::AsyncArrival { fresh, .. } => {
                m.inc(ids.async_arrivals, 1);
                if !fresh {
                    m.inc(ids.async_stale, 1);
                }
            }
            TraceEvent::AsyncTimeout => m.inc(ids.async_timeouts, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_folds_events_into_trace_and_metrics() {
        let mut obs = RunObserver::new(64);
        obs.record(
            0.0,
            TraceEvent::RoundStart {
                round: 0,
                selected: 2,
            },
        );
        for client in 0..2u32 {
            obs.record(0.0, TraceEvent::Dispatch { round: 0, client });
        }
        obs.record(
            3.0,
            TraceEvent::Complete {
                round: 0,
                client: 0,
            },
        );
        obs.record(
            5.0,
            TraceEvent::TimedOut {
                round: 0,
                client: 1,
            },
        );
        obs.record(
            5.0,
            TraceEvent::Fold {
                round: 0,
                client: 0,
                wire_bytes: 100,
            },
        );
        obs.record(
            5.0,
            TraceEvent::RoundEnd {
                round: 0,
                latency: 5.0,
                contributors: 1,
                bytes_up: 100,
                bytes_down: 200,
            },
        );
        let (records, snap) = obs.finish();
        assert_eq!(records.len(), 7);
        assert_eq!(snap.counter("rounds"), Some(1));
        assert_eq!(snap.counter("dispatches"), Some(2));
        assert_eq!(snap.counter("completes"), Some(1));
        assert_eq!(snap.counter("timeouts"), Some(1));
        assert_eq!(snap.counter("bytes_up"), Some(100));
        assert_eq!(snap.counter("bytes_down"), Some(200));
        assert_eq!(snap.gauge("virtual_time_sec"), Some(5.0));
        assert_eq!(snap.histogram("round_latency_sec").unwrap().total, 1);
    }

    #[test]
    fn zero_capacity_observer_still_counts() {
        let mut obs = RunObserver::new(0);
        obs.record(
            1.0,
            TraceEvent::RoundEnd {
                round: 0,
                latency: 1.0,
                contributors: 1,
                bytes_up: 10,
                bytes_down: 20,
            },
        );
        let (records, snap) = obs.finish();
        assert!(records.is_empty());
        assert_eq!(snap.counter("rounds"), Some(1));
    }
}
