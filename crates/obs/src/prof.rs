//! Host-time phase profiler: where *real* CPU seconds go.
//!
//! Everything else in this crate is stamped with virtual time and is
//! bit-for-bit deterministic. This module is the one sanctioned home
//! for wall-clock measurement, and it keeps the determinism contract
//! by construction rather than by discipline:
//!
//! - every host-clock read in the workspace goes through the
//!   [`HostClock`] trait — [`RealClock`] (a monotonic `Instant`) in
//!   production, [`FrozenClock`] (a deterministic tick counter) in
//!   tests, so span *structure* is pinnable even though durations
//!   aren't;
//! - host time flows one way: out of the run, into operator-facing
//!   sidecars (sweep summaries, progress logs, the Chrome host lane).
//!   It never feeds simulated state, `RunKey` hashing, or
//!   deterministic artifact bytes;
//! - the recording path mirrors the trace ring: [`HostSpan`] is
//!   `Copy`, the span ring is preallocated at construction, and the
//!   per-phase totals live in fixed arrays — steady-state profiling
//!   performs zero allocations (pinned by `tests/alloc_regression.rs`).
//!
//! The phase vocabulary is the canonical per-round pipeline: profile,
//! plan, client train, encode, fold/decode, eval, store write.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The canonical host-time phases of a run.
///
/// `Copy`, fixed-count, and index-stable: the profiler's totals live
/// in `[f64; Phase::COUNT]` arrays keyed by [`Phase::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// The §4.2 profiling pass (latency probe + tiering).
    Profile,
    /// Client selection + response sampling + latency resolution.
    Plan,
    /// Local client training (one batch span per round, coordinator
    /// side — parallel workers are not individually attributed).
    Train,
    /// Codec encode of the global broadcast (downlink roundtrip).
    Encode,
    /// Decode-and-fold of contributor updates into the aggregate.
    Fold,
    /// Held-out evaluation of the global model.
    Eval,
    /// Persisting a run artifact into the sweep store.
    StoreWrite,
}

impl Phase {
    /// Number of phases (the size of every per-phase array).
    pub const COUNT: usize = 7;

    /// All phases, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Profile,
        Phase::Plan,
        Phase::Train,
        Phase::Encode,
        Phase::Fold,
        Phase::Eval,
        Phase::StoreWrite,
    ];

    /// Stable array index of this phase.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lowercase display name (used in trace lanes and JSON keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Profile => "profile",
            Phase::Plan => "plan",
            Phase::Train => "train",
            Phase::Encode => "encode",
            Phase::Fold => "fold",
            Phase::Eval => "eval",
            Phase::StoreWrite => "store_write",
        }
    }
}

/// A monotonic host clock, in seconds from an arbitrary epoch.
///
/// This trait is the only lawful wall-clock surface in the workspace:
/// the `wall-clock-in-core` lint bans raw `Instant::now()` everywhere
/// outside `bench`, and the single waiver lives on [`RealClock`].
/// Code that needs host time takes an injected `Arc<dyn HostClock>`,
/// which tests replace with a [`FrozenClock`] to pin structure.
pub trait HostClock: Send + Sync {
    /// Seconds elapsed since the clock's epoch. Must be monotone
    /// non-decreasing across calls.
    fn now_sec(&self) -> f64;
}

/// The production clock: monotonic seconds since construction.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            // tifl-lint: allow(wall-clock-in-core) — the one sanctioned wall-clock read; every other host-time consumer goes through HostClock
            origin: Instant::now(),
        }
    }

    /// A shareable production clock.
    #[must_use]
    pub fn shared() -> Arc<dyn HostClock> {
        Arc::new(Self::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl HostClock for RealClock {
    fn now_sec(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A deterministic test clock: each read returns the next tick.
///
/// Reads return `0, step, 2·step, …` in call order, so a profiled run
/// produces a fully reproducible span timeline — what the
/// span-structure pins in `tests/obs.rs` rely on. The counter is
/// atomic so the clock can be shared across sweep workers; under
/// concurrency the *set* of ticks is still exact even though their
/// assignment to readers is scheduling-dependent.
#[derive(Debug, Default)]
pub struct FrozenClock {
    ticks: AtomicU64,
    step: f64,
}

impl FrozenClock {
    /// A frozen clock advancing one second per read.
    #[must_use]
    pub fn new() -> Self {
        Self::with_step(1.0)
    }

    /// A frozen clock advancing `step` seconds per read.
    #[must_use]
    pub fn with_step(step: f64) -> Self {
        Self {
            ticks: AtomicU64::new(0),
            step,
        }
    }

    /// A shareable frozen clock (one second per read).
    #[must_use]
    pub fn shared() -> Arc<dyn HostClock> {
        Arc::new(Self::new())
    }

    /// Reads served so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }
}

impl HostClock for FrozenClock {
    fn now_sec(&self) -> f64 {
        let tick = self.ticks.fetch_add(1, Ordering::SeqCst);
        tick as f64 * self.step
    }
}

/// One closed host-time span: a phase, the round it served, and its
/// clock-relative start/end stamps. `Copy`, scalar-only — recording
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostSpan {
    /// Which pipeline phase this span measured.
    pub phase: Phase,
    /// Round the phase served (0 for pre-round work like profiling).
    pub round: u64,
    /// Start stamp, in the profiler clock's seconds.
    pub start: f64,
    /// End stamp, in the profiler clock's seconds.
    pub end: f64,
}

impl HostSpan {
    /// Span duration in seconds.
    #[must_use]
    pub fn dur(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-phase host-seconds, in serialization-friendly named-field form.
///
/// This is the shape that lands in `sweep_summary.json` and the
/// progress log; [`PhaseTotals::merge`] aggregates per-run totals into
/// a sweep-level breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// Host seconds in the profiling pass.
    #[serde(default)]
    pub profile_sec: f64,
    /// Host seconds planning rounds.
    #[serde(default)]
    pub plan_sec: f64,
    /// Host seconds training clients.
    #[serde(default)]
    pub train_sec: f64,
    /// Host seconds encoding the global broadcast.
    #[serde(default)]
    pub encode_sec: f64,
    /// Host seconds decoding and folding updates.
    #[serde(default)]
    pub fold_sec: f64,
    /// Host seconds evaluating the global model.
    #[serde(default)]
    pub eval_sec: f64,
    /// Host seconds writing artifacts to the run store.
    #[serde(default)]
    pub store_write_sec: f64,
}

impl PhaseTotals {
    /// Seconds attributed to `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Profile => self.profile_sec,
            Phase::Plan => self.plan_sec,
            Phase::Train => self.train_sec,
            Phase::Encode => self.encode_sec,
            Phase::Fold => self.fold_sec,
            Phase::Eval => self.eval_sec,
            Phase::StoreWrite => self.store_write_sec,
        }
    }

    /// Add `sec` to `phase`'s bucket.
    pub fn add(&mut self, phase: Phase, sec: f64) {
        let slot = match phase {
            Phase::Profile => &mut self.profile_sec,
            Phase::Plan => &mut self.plan_sec,
            Phase::Train => &mut self.train_sec,
            Phase::Encode => &mut self.encode_sec,
            Phase::Fold => &mut self.fold_sec,
            Phase::Eval => &mut self.eval_sec,
            Phase::StoreWrite => &mut self.store_write_sec,
        };
        *slot += sec;
    }

    /// Fold another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTotals) {
        for phase in Phase::ALL {
            self.add(phase, other.get(phase));
        }
    }

    /// Sum across all phases.
    #[must_use]
    pub fn total(&self) -> f64 {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }
}

/// Scoped host-time phase profiler.
///
/// Usage is begin/end rather than RAII guards so the owner can hold
/// `&mut self` across a phase without borrow gymnastics:
///
/// ```
/// use tifl_obs::prof::{FrozenClock, HostProfiler, Phase};
///
/// let mut prof = HostProfiler::with_clock(64, FrozenClock::shared());
/// let t0 = prof.begin();
/// // ... the phase body ...
/// prof.end(Phase::Plan, 0, t0);
/// assert_eq!(prof.spans().len(), 1);
/// assert!(prof.totals().plan_sec > 0.0);
/// ```
///
/// Spans land in a fixed-capacity ring (oldest overwritten, counted
/// in [`HostProfiler::dropped`]); totals and counts accumulate in
/// fixed per-phase arrays regardless of ring rotation.
#[derive(Clone)]
pub struct HostProfiler {
    clock: Arc<dyn HostClock>,
    buf: Vec<HostSpan>,
    cap: usize,
    head: usize,
    total_spans: u64,
    dropped: u64,
    totals: [f64; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl std::fmt::Debug for HostProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostProfiler")
            .field("cap", &self.cap)
            .field("spans", &self.buf.len())
            .field("dropped", &self.dropped)
            .field("totals", &self.totals)
            .finish()
    }
}

impl HostProfiler {
    /// A profiler on the production [`RealClock`], holding at most
    /// `capacity` spans. The buffer is allocated here, once.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, RealClock::shared())
    }

    /// A profiler on an explicit clock (tests inject [`FrozenClock`]).
    #[must_use]
    pub fn with_clock(capacity: usize, clock: Arc<dyn HostClock>) -> Self {
        Self {
            clock,
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            total_spans: 0,
            dropped: 0,
            totals: [0.0; Phase::COUNT],
            counts: [0; Phase::COUNT],
        }
    }

    /// The clock this profiler stamps spans with.
    #[must_use]
    pub fn clock(&self) -> Arc<dyn HostClock> {
        Arc::clone(&self.clock)
    }

    /// Open a phase: returns the start stamp to hand back to
    /// [`HostProfiler::end`].
    #[must_use]
    pub fn begin(&self) -> f64 {
        self.clock.now_sec()
    }

    /// Close a phase opened at `start`, attributing the elapsed host
    /// seconds to `phase` for `round`.
    pub fn end(&mut self, phase: Phase, round: u64, start: f64) {
        let end = self.clock.now_sec();
        self.totals[phase.index()] += end - start;
        self.counts[phase.index()] += 1;
        let span = HostSpan {
            phase,
            round,
            start,
            end,
        };
        self.total_spans += 1;
        if self.buf.len() < self.cap {
            self.buf.push(span);
        } else {
            self.dropped += 1;
            if self.cap > 0 {
                self.buf[self.head] = span;
                self.head += 1;
                if self.head == self.cap {
                    self.head = 0;
                }
            }
        }
    }

    /// Per-phase totals in serializable named-field form.
    #[must_use]
    pub fn totals(&self) -> PhaseTotals {
        let mut out = PhaseTotals::default();
        for phase in Phase::ALL {
            out.add(phase, self.totals[phase.index()]);
        }
        out
    }

    /// Number of closed spans attributed to `phase`.
    #[must_use]
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Spans overwritten by ring rotation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total spans ever closed (held + dropped).
    #[must_use]
    pub fn total_spans(&self) -> u64 {
        self.total_spans
    }

    /// The held spans in close order. Allocates — export path only.
    #[must_use]
    pub fn spans(&self) -> Vec<HostSpan> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_clock_ticks_deterministically() {
        let clock = FrozenClock::with_step(0.5);
        assert_eq!(clock.now_sec(), 0.0);
        assert_eq!(clock.now_sec(), 0.5);
        assert_eq!(clock.now_sec(), 1.0);
        assert_eq!(clock.reads(), 3);
    }

    #[test]
    fn real_clock_is_monotone() {
        let clock = RealClock::new();
        let a = clock.now_sec();
        let b = clock.now_sec();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn profiler_attributes_phases_and_rings_spans() {
        let mut prof = HostProfiler::with_clock(2, FrozenClock::shared());
        for round in 0..3u64 {
            let t0 = prof.begin();
            prof.end(Phase::Train, round, t0);
        }
        // Ticks 0..6: spans (0,1), (2,3), (4,5); ring holds the last 2.
        let spans = prof.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(prof.dropped(), 1);
        assert_eq!(prof.total_spans(), 3);
        assert_eq!(spans[0].round, 1);
        assert_eq!(spans[1].round, 2);
        assert_eq!(spans[1].start, 4.0);
        assert_eq!(spans[1].end, 5.0);
        assert_eq!(prof.count(Phase::Train), 3);
        assert_eq!(prof.totals().train_sec, 3.0);
        assert_eq!(prof.totals().total(), 3.0);
    }

    #[test]
    fn profiler_steady_state_never_reallocates() {
        let mut prof = HostProfiler::with_clock(8, FrozenClock::shared());
        let ptr = prof.buf.as_ptr();
        for i in 0..100u64 {
            let t0 = prof.begin();
            prof.end(Phase::Fold, i, t0);
        }
        assert_eq!(prof.buf.as_ptr(), ptr);
        assert_eq!(prof.spans().len(), 8);
    }

    #[test]
    fn phase_totals_merge_and_round_trip() {
        let mut a = PhaseTotals::default();
        a.add(Phase::Plan, 1.0);
        a.add(Phase::Eval, 2.0);
        let mut b = PhaseTotals::default();
        b.add(Phase::Plan, 0.5);
        b.add(Phase::StoreWrite, 4.0);
        a.merge(&b);
        assert_eq!(a.plan_sec, 1.5);
        assert_eq!(a.eval_sec, 2.0);
        assert_eq!(a.store_write_sec, 4.0);
        assert_eq!(a.total(), 7.5);
        let json = serde_json::to_string(&a).unwrap();
        let back: PhaseTotals = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn phase_names_and_indices_are_stable() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        assert_eq!(Phase::StoreWrite.name(), "store_write");
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }
}
