//! Deterministic observability: tracing and metrics for TiFL runs.
//!
//! The paper's core claims are *temporal* — tiered selection cuts round
//! latency because stragglers stop gating `max_i L_i` (Eq. 1) — so a
//! reproduction needs more than final accuracy curves: it needs to show
//! *when* every dispatch, completion, cancellation, fold and eval
//! happened inside the simulated clock. This crate provides that
//! surface without compromising the workspace's bit-for-bit
//! determinism contract:
//!
//! - [`digest`] — 128-bit FNV-1a content digests ([`Digest128`]) and
//!   the per-round [`DigestChain`]: order-sensitive, prefix-stable
//!   folds that make run artifacts self-checking and two diverging
//!   runs localizable to their first divergent round.
//! - [`diff`] — the [`DiffReport`] vocabulary behind `tifl diff`:
//!   which round two runs first disagree on, and the field-level
//!   deltas of that round.
//! - [`trace`] — the [`TraceEvent`] vocabulary, the [`TraceSink`]
//!   trait, and a preallocated ring-buffer recorder
//!   ([`RingRecorder`]). Events are `Copy`, scalar-only payloads
//!   stamped with **virtual time**; recording never allocates once the
//!   ring exists, and a disabled sink costs one branch.
//! - [`observer`] — [`RunObserver`], the sink a `Runner` attaches to a
//!   session: ring recorder + pre-registered metrics, folded from the
//!   same event stream.
//! - [`metrics`] — a fixed-bucket [`MetricsRegistry`]
//!   (counters/gauges/histograms behind index handles) whose
//!   [`MetricsSnapshot`] serializes into run artifacts
//!   byte-deterministically.
//! - [`chrome`] — export a trace as Chrome trace-event JSON, loadable
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! - [`prof`] — the **host-time** phase profiler: a [`HostClock`]
//!   trait ([`RealClock`] in production, deterministic [`FrozenClock`]
//!   in tests) behind a preallocated [`HostProfiler`] attributing real
//!   seconds to the canonical phases (profile, plan, train, encode,
//!   fold, eval, store write). Host time is operator-facing only — it
//!   never feeds simulated state, `RunKey` hashing, or deterministic
//!   artifact bytes.
//! - [`table`] — per-round text/JSON tables derived from a trace.
//! - [`pivot`] — the row type and text renderer for `tifl report`'s
//!   policy × scenario pivot (populated by `tifl-sweep` from a
//!   `RunStore`).
//!
//! # Determinism contract
//!
//! Everything recorded here is derived from the virtual clock and the
//! round plans, never from wall time, iteration order of hash maps, or
//! thread scheduling. The same run therefore yields the same trace —
//! record for record — on `Lockstep` and `EventDriven{n}` backends for
//! any `n`, and two runs of the same spec yield byte-identical
//! [`MetricsSnapshot`] JSON. The root `tests/obs.rs` suite pins both
//! properties.
//!
//! The host lane is the deliberate exception: wall-clock durations
//! genuinely vary between machines and runs, so [`prof`] spans are
//! best-effort measurements kept strictly outside the deterministic
//! surface. With a [`FrozenClock`] the span *structure* (which phases,
//! which rounds, in what order) is itself pinned.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod diff;
pub mod digest;
pub mod metrics;
pub mod observer;
pub mod pivot;
pub mod prof;
pub mod table;
pub mod trace;

pub use chrome::{chrome_trace, host_chrome_trace, ChromeEvent};
pub use diff::{first_divergence, DiffReport, DiffSide, Divergence, FieldDelta};
pub use digest::{Digest128, DigestChain};
pub use metrics::{
    CounterId, CounterSnap, GaugeId, GaugeSnap, HistId, HistSnap, MetricsRegistry, MetricsSnapshot,
};
pub use observer::RunObserver;
pub use pivot::{render_pivot, PivotRow};
pub use prof::{FrozenClock, HostClock, HostProfiler, HostSpan, Phase, PhaseTotals, RealClock};
pub use table::{render_rounds, round_rows, RoundRow};
pub use trace::{NoopSink, RingRecorder, TraceEvent, TraceRecord, TraceSink};
