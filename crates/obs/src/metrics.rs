//! Fixed-bucket deterministic metrics: counters, gauges, histograms.
//!
//! The registry is built once at setup time (names and histogram
//! bucket bounds allocate there) and then driven through index
//! handles ([`CounterId`], [`GaugeId`], [`HistId`]) — the hot-path
//! operations `inc`/`set`/`observe` are plain array writes with no
//! allocation and no hashing, so a metrics-enabled run passes the
//! workspace allocation gate.
//!
//! Snapshots are deterministic by construction: metrics are reported
//! in registration order (no hash-map iteration), histogram buckets
//! are fixed at registration, and every recorded value derives from
//! the virtual clock or the round plans. Two runs of the same spec
//! produce byte-identical [`MetricsSnapshot`] JSON.

use serde::{Deserialize, Serialize};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Debug, Clone)]
struct Hist {
    name: String,
    /// Upper-inclusive bucket bounds, strictly increasing. A value
    /// `v` lands in the first bucket with `v <= bound`; values above
    /// the last bound land in the implicit overflow bucket, so
    /// `counts.len() == bounds.len() + 1`.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

/// Registry of counters, gauges and fixed-bucket histograms.
///
/// Register every metric up front, then drive the handles from the
/// hot path. Registration order is snapshot order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<Hist>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter (setup path; allocates the name).
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge (setup path; allocates the name).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram with the given upper-inclusive bucket
    /// bounds, which must be strictly increasing (setup path).
    ///
    /// # Panics
    /// If `bounds` is not strictly increasing.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistId {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        self.hists.push(Hist {
            name: name.to_string(),
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        });
        HistId(self.hists.len() - 1)
    }

    /// Increment a counter by `by` (hot path; allocation-free).
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Set a gauge (hot path; allocation-free).
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Record a histogram observation (hot path; a linear scan over
    /// the fixed bounds, allocation-free).
    pub fn observe(&mut self, id: HistId, value: f64) {
        let h = &mut self.hists[id.0];
        let bucket = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[bucket] += 1;
        h.total += 1;
        h.sum += value;
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Serialize the current state, in registration order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| CounterSnap {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, value)| GaugeSnap {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|h| HistSnap {
                    name: h.name.clone(),
                    bounds: h.bounds.clone(),
                    counts: h.counts.clone(),
                    total: h.total,
                    sum: h.sum,
                })
                .collect(),
        }
    }
}

/// A serialized counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// A serialized gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnap {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// A serialized histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistSnap {
    /// Metric name.
    pub name: String,
    /// Upper-inclusive bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// A point-in-time, deterministic serialization of a registry.
///
/// Stored as the optional `metrics` section of sweep run artifacts;
/// artifacts written before this section existed deserialize with
/// `None` and still validate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, in registration order.
    pub counters: Vec<CounterSnap>,
    /// Gauges, in registration order.
    pub gauges: Vec<GaugeSnap>,
    /// Histograms, in registration order.
    pub histograms: Vec<HistSnap>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Look up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render the snapshot as an aligned text table.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.gauges.iter().map(|g| g.name.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0)
            .max(6);
        for c in &self.counters {
            let _ = writeln!(out, "{:<width$} {:>14}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "{:<width$} {:>14.3}", g.name, g.value);
        }
        for h in &self.histograms {
            let mean = if h.total > 0 {
                h.sum / h.total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<width$} {:>14} obs, mean {mean:.3}",
                h.name, h.total
            );
        }
        out
    }
}

impl HistSnap {
    /// Mean of all observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_accumulate() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("rounds");
        let g = reg.gauge("virtual_time_sec");
        let h = reg.histogram("latency", &[1.0, 10.0, 100.0]);
        reg.inc(c, 3);
        reg.set(g, 42.5);
        reg.observe(h, 0.5);
        reg.observe(h, 10.0); // upper-inclusive: lands in bucket 1
        reg.observe(h, 1e6); // overflow bucket
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rounds"), Some(3));
        assert_eq!(snap.gauge("virtual_time_sec"), Some(42.5));
        let hist = snap.histogram("latency").unwrap();
        assert_eq!(hist.counts, vec![1, 1, 0, 1]);
        assert_eq!(hist.total, 3);
        assert!((hist.sum - 1_000_010.5).abs() < 1e-9);
    }

    #[test]
    fn hot_path_ops_do_not_grow_storage() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a");
        let h = reg.histogram("b", &[1.0, 2.0]);
        let cp = reg.counters.as_ptr();
        let hp = reg.hists[0].counts.as_ptr();
        for i in 0..1000 {
            reg.inc(c, 1);
            reg.observe(h, i as f64);
        }
        assert_eq!(reg.counters.as_ptr(), cp);
        assert_eq!(reg.hists[0].counts.as_ptr(), hp);
    }

    #[test]
    fn snapshots_are_byte_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("x");
            let h = reg.histogram("y", &[0.5, 5.0]);
            reg.inc(c, 7);
            reg.observe(h, 3.25);
            serde_json::to_string_pretty(&reg.snapshot()).unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        MetricsRegistry::new().histogram("bad", &[2.0, 1.0]);
    }
}
