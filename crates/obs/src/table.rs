//! Per-round metrics tables derived from a recorded trace.
//!
//! Pairs each `RoundStart`/`RoundEnd` in the stream into a
//! [`RoundRow`]: when the round started and closed on the virtual
//! clock, how many clients were selected vs. actually aggregated, and
//! the round's wire traffic. Rows serialize to JSON directly and
//! [`render_rounds`] formats them as an aligned text table for the
//! `tifl trace` CLI.

use serde::{Deserialize, Serialize};

use crate::trace::{TraceEvent, TraceRecord};

/// One training round, summarized from the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRow {
    /// Round index (0-based).
    pub round: u64,
    /// Virtual time the round started.
    pub start_sec: f64,
    /// Round latency `max_i L_i` in virtual seconds.
    pub latency_sec: f64,
    /// Clients selected at the start of the round.
    pub selected: u32,
    /// Clients whose updates were aggregated.
    pub contributors: u32,
    /// Uplink bytes (wire-encoded) this round.
    pub bytes_up: u64,
    /// Downlink bytes this round.
    pub bytes_down: u64,
}

/// Fold a trace into per-round rows, in round order of appearance.
///
/// A `RoundEnd` whose `RoundStart` was rotated out of the ring still
/// produces a row (with `start_sec` back-computed from the latency
/// and `selected` 0, since the selection count was lost).
#[must_use]
pub fn round_rows(records: &[TraceRecord]) -> Vec<RoundRow> {
    let mut rows = Vec::new();
    let mut open: Vec<(u64, f64, u32)> = Vec::new(); // (round, start, selected)
    for rec in records {
        match rec.event {
            TraceEvent::RoundStart { round, selected } => {
                open.push((round, rec.vt, selected));
            }
            TraceEvent::RoundEnd {
                round,
                latency,
                contributors,
                bytes_up,
                bytes_down,
            } => {
                let (start_sec, selected) = match open.iter().position(|&(r, _, _)| r == round) {
                    Some(i) => {
                        let (_, start, selected) = open.swap_remove(i);
                        (start, selected)
                    }
                    None => (rec.vt - latency, 0),
                };
                rows.push(RoundRow {
                    round,
                    start_sec,
                    latency_sec: latency,
                    selected,
                    contributors,
                    bytes_up,
                    bytes_down,
                });
            }
            _ => {}
        }
    }
    rows
}

/// Render rows as an aligned text table.
#[must_use]
pub fn render_rounds(rows: &[RoundRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>9} {:>13} {:>12} {:>12}",
        "round", "start [s]", "latency [s]", "selected", "contributors", "up [B]", "down [B]"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>12.1} {:>12.1} {:>9} {:>13} {:>12} {:>12}",
            r.round,
            r.start_sec,
            r.latency_sec,
            r.selected,
            r.contributors,
            r.bytes_up,
            r.bytes_down
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_pair_round_start_and_end() {
        let records = vec![
            TraceRecord {
                seq: 0,
                vt: 10.0,
                event: TraceEvent::RoundStart {
                    round: 1,
                    selected: 5,
                },
            },
            TraceRecord {
                seq: 1,
                vt: 14.0,
                event: TraceEvent::RoundEnd {
                    round: 1,
                    latency: 4.0,
                    contributors: 4,
                    bytes_up: 400,
                    bytes_down: 500,
                },
            },
        ];
        let rows = round_rows(&records);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].round, 1);
        assert!((rows[0].start_sec - 10.0).abs() < 1e-12);
        assert_eq!(rows[0].selected, 5);
        assert_eq!(rows[0].contributors, 4);
        let table = render_rounds(&rows);
        assert!(table.contains("latency"));
        assert!(table.lines().count() == 2);
    }

    #[test]
    fn orphan_round_end_back_computes_its_start() {
        let records = vec![TraceRecord {
            seq: 9,
            vt: 30.0,
            event: TraceEvent::RoundEnd {
                round: 3,
                latency: 4.0,
                contributors: 2,
                bytes_up: 1,
                bytes_down: 2,
            },
        }];
        let rows = round_rows(&records);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].start_sec - 26.0).abs() < 1e-12);
        assert_eq!(rows[0].selected, 0);
    }
}
