//! Row type and text renderer for the `tifl report` store pivot.
//!
//! `tifl-sweep`'s report module folds every artifact in a `RunStore`
//! into one [`PivotRow`] per run — the paper's fig. 3/fig. 5 summary
//! axes (rounds, virtual wall-clock, final/best accuracy, wire
//! traffic, optional time-to-target-accuracy) keyed by the run label
//! — and [`render_pivot`] lays them out as an aligned policy ×
//! scenario table. The row type lives here, dependency-free, so the
//! renderer is testable without a store on disk.

use serde::{Deserialize, Serialize};

/// One run's summary line in the pivot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PivotRow {
    /// Run label (policy × axes, e.g. `uniform5/fedprox`).
    pub label: String,
    /// Experiment seed.
    pub seed: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Total virtual wall-clock seconds (Eq. 6 axis).
    pub virtual_sec: f64,
    /// Accuracy after the last round.
    pub final_accuracy: f64,
    /// Best accuracy over the run.
    pub best_accuracy: f64,
    /// Total uplink bytes (wire-encoded).
    pub bytes_up: u64,
    /// Total downlink bytes.
    pub bytes_down: u64,
    /// Virtual seconds until the target accuracy was first reached
    /// (`None` when no target was requested or never reached).
    pub time_to_target_sec: Option<f64>,
}

/// Render rows as an aligned text table; the time-to-target column
/// appears only when a target accuracy was requested.
#[must_use]
pub fn render_pivot(rows: &[PivotRow], target: Option<f64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let width = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(3);
    let _ = write!(
        out,
        "{:<width$} {:>6} {:>7} {:>12} {:>7} {:>7} {:>9} {:>9}",
        "run", "seed", "rounds", "virtual [s]", "final", "best", "up [MB]", "down [MB]"
    );
    if let Some(t) = target {
        let _ = write!(out, " {:>14}", format!("t@{t:.2} [s]"));
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(
            out,
            "{:<width$} {:>6} {:>7} {:>12.0} {:>7.3} {:>7.3} {:>9.2} {:>9.2}",
            r.label,
            r.seed,
            r.rounds,
            r.virtual_sec,
            r.final_accuracy,
            r.best_accuracy,
            r.bytes_up as f64 / 1e6,
            r.bytes_down as f64 / 1e6
        );
        if target.is_some() {
            match r.time_to_target_sec {
                Some(t) => {
                    let _ = write!(out, " {t:>14.0}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, seed: u64) -> PivotRow {
        PivotRow {
            label: label.to_string(),
            seed,
            rounds: 10,
            virtual_sec: 1234.0,
            final_accuracy: 0.51,
            best_accuracy: 0.53,
            bytes_up: 2_000_000,
            bytes_down: 4_000_000,
            time_to_target_sec: Some(600.0),
        }
    }

    #[test]
    fn table_aligns_and_gates_the_target_column() {
        let rows = vec![row("vanilla", 42), row("uniform5", 42)];
        let plain = render_pivot(&rows, None);
        assert!(plain.contains("vanilla"));
        assert!(!plain.contains("t@"));
        let with_target = render_pivot(&rows, Some(0.5));
        assert!(with_target.contains("t@0.50 [s]"));
        assert!(with_target.contains("600"));
        assert_eq!(with_target.lines().count(), 3);
    }

    #[test]
    fn unreached_targets_render_as_a_dash() {
        let mut r = row("slow", 7);
        r.time_to_target_sec = None;
        let s = render_pivot(&[r], Some(0.9));
        assert!(s.lines().nth(1).unwrap().trim_end().ends_with('-'));
    }
}
