//! Run-divergence reports: where two runs stopped agreeing, and how.
//!
//! This module holds the *generic* half of `tifl diff`: given the
//! per-round digest sequences of two runs (see [`crate::digest`]),
//! [`first_divergence`] localizes the first round whose content
//! differs, and [`DiffReport`] packages the verdict plus the
//! field-level deltas of that round for human or JSON rendering. The
//! round types themselves live downstream (`tifl_fl::TrainingReport`
//! builds a `DiffReport` from two reports); keeping the algorithm and
//! the report shape here lets every layer share one vocabulary
//! without a dependency cycle.

use crate::digest::Digest128;
use serde::{Deserialize, Serialize};

/// One side of a diff: which operand it was and the run's identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffSide {
    /// Operand name (a file path, a store key, a label — caller's
    /// choice).
    pub name: String,
    /// The run's policy label.
    pub policy: String,
    /// Rounds in the run.
    pub rounds: u64,
    /// Digest-chain head over all rounds.
    pub chain_head: Digest128,
}

/// One diverging field of the first divergent round, rendered on both
/// sides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDelta {
    /// Field name (`accuracy`, `time`, `bytes_up`, `selected`, …).
    pub field: String,
    /// The field's value in run A.
    pub a: String,
    /// The field's value in run B.
    pub b: String,
}

/// Where (if anywhere) two runs diverge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Divergence {
    /// Every round matches, content digest for content digest.
    Identical,
    /// All shared rounds match but one run has more of them — a
    /// truncated (or longer-trained) variant of the other.
    Truncated {
        /// Rounds both runs share (all byte-equivalent).
        shared_rounds: u64,
    },
    /// The runs agree on every round before `round` and differ at it.
    DivergedAt {
        /// First divergent round index (0-based, position in the
        /// round list).
        round: u64,
        /// Chain head of run A at the divergent round.
        chain_a: Digest128,
        /// Chain head of run B at the divergent round.
        chain_b: Digest128,
        /// Field-level deltas of the divergent round.
        deltas: Vec<FieldDelta>,
    },
}

/// A complete two-run comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Run A (first operand).
    pub a: DiffSide,
    /// Run B (second operand).
    pub b: DiffSide,
    /// The verdict.
    pub divergence: Divergence,
}

impl DiffReport {
    /// Whether the runs are round-for-round identical.
    #[must_use]
    pub fn identical(&self) -> bool {
        matches!(self.divergence, Divergence::Identical)
    }

    /// Human-readable rendering (the `tifl diff` default output).
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "A: {} ({}, {} rounds, chain {})",
            self.a.name, self.a.policy, self.a.rounds, self.a.chain_head
        );
        let _ = writeln!(
            out,
            "B: {} ({}, {} rounds, chain {})",
            self.b.name, self.b.policy, self.b.rounds, self.b.chain_head
        );
        match &self.divergence {
            Divergence::Identical => {
                let _ = writeln!(out, "identical: all {} rounds match", self.a.rounds);
            }
            Divergence::Truncated { shared_rounds } => {
                let _ = writeln!(
                    out,
                    "prefix: first {shared_rounds} rounds match; {} has {} more",
                    if self.a.rounds > self.b.rounds {
                        "A"
                    } else {
                        "B"
                    },
                    self.a.rounds.abs_diff(self.b.rounds)
                );
            }
            Divergence::DivergedAt {
                round,
                chain_a,
                chain_b,
                deltas,
            } => {
                let _ = writeln!(
                    out,
                    "first divergent round: {round} (chain A {chain_a} != B {chain_b})"
                );
                let width = deltas
                    .iter()
                    .map(|d| d.field.len())
                    .max()
                    .unwrap_or(5)
                    .max(5);
                for d in deltas {
                    let _ = writeln!(out, "  {:<width$}  A: {}  B: {}", d.field, d.a, d.b);
                }
                if deltas.is_empty() {
                    let _ = writeln!(
                        out,
                        "  (no top-level field delta: divergence is inside a collection)"
                    );
                }
            }
        }
        out
    }
}

/// The first index at which the two digest sequences disagree, within
/// their common prefix. `None` means the shorter sequence is a prefix
/// of the longer (including the equal-length identical case) — the
/// caller distinguishes `Identical` from `Truncated` by length.
#[must_use]
pub fn first_divergence(a: &[Digest128], b: &[Digest128]) -> Option<usize> {
    a.iter().zip(b.iter()).position(|(da, db)| da != db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::DigestChain;

    fn d(byte: u8) -> Digest128 {
        Digest128::of_bytes(&[byte])
    }

    #[test]
    fn first_divergence_finds_the_earliest_mismatch() {
        let a = [d(0), d(1), d(2)];
        let b = [d(0), d(9), d(2)];
        assert_eq!(first_divergence(&a, &b), Some(1));
        assert_eq!(first_divergence(&a, &a), None);
        assert_eq!(
            first_divergence(&a[..2], &a),
            None,
            "prefix is not divergence"
        );
        assert_eq!(first_divergence(&[], &a), None);
    }

    #[test]
    fn report_renders_every_verdict() {
        let side = |name: &str, rounds: u64| DiffSide {
            name: name.into(),
            policy: "vanilla".into(),
            rounds,
            chain_head: DigestChain::of([d(0)]),
        };
        let identical = DiffReport {
            a: side("a.json", 3),
            b: side("b.json", 3),
            divergence: Divergence::Identical,
        };
        assert!(identical.identical());
        assert!(identical.render_text().contains("identical"));

        let truncated = DiffReport {
            a: side("a.json", 5),
            b: side("b.json", 3),
            divergence: Divergence::Truncated { shared_rounds: 3 },
        };
        assert!(!truncated.identical());
        assert!(truncated.render_text().contains("A has 2 more"));

        let diverged = DiffReport {
            a: side("a.json", 3),
            b: side("b.json", 3),
            divergence: Divergence::DivergedAt {
                round: 1,
                chain_a: d(1),
                chain_b: d(2),
                deltas: vec![FieldDelta {
                    field: "accuracy".into(),
                    a: "0.5".into(),
                    b: "0.6".into(),
                }],
            },
        };
        let text = diverged.render_text();
        assert!(text.contains("first divergent round: 1"));
        assert!(text.contains("accuracy"));
        // And the whole report round-trips through JSON for --format json.
        let json = serde_json::to_string(&diverged).expect("serializes");
        let back: DiffReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, diverged);
    }
}
