//! Store-backed reporting: pivot a directory of run artifacts into the
//! paper's policy × scenario comparison tables without re-running
//! anything.
//!
//! `tifl report <dir>` is the CLI face of this module: every artifact
//! in the [`RunStore`] becomes one [`PivotRow`] (label, seed, rounds,
//! virtual wall time, final/best accuracy, wire bytes, optional
//! time-to-target-accuracy), sorted by (label, seed) so the table is
//! deterministic regardless of directory iteration order. The rows
//! render through [`tifl_obs::render_pivot`] or serialize as JSON.

use crate::store::RunStore;
use tifl_obs::PivotRow;

/// One pivot row per valid artifact in `store`, sorted by
/// (label, seed). `target` fills the time-to-target-accuracy column
/// (the paper's fig. 5 "time to X%" comparison); rows that never reach
/// it carry `None`. Unparseable files are skipped — a report over a
/// store with one corrupt artifact still covers the rest.
#[must_use]
pub fn pivot_rows(store: &RunStore, target: Option<f64>) -> Vec<PivotRow> {
    let mut rows: Vec<PivotRow> = store
        .keys()
        .into_iter()
        .filter_map(|key| store.load(key))
        .map(|artifact| {
            let report = &artifact.report;
            PivotRow {
                label: artifact.label.clone(),
                seed: artifact.request.experiment().seed,
                rounds: report.rounds.len() as u64,
                virtual_sec: report.total_time(),
                final_accuracy: report.final_accuracy(),
                best_accuracy: report.best_accuracy(),
                bytes_up: report.total_bytes_up(),
                bytes_down: report.total_bytes_down(),
                time_to_target_sec: target.and_then(|t| report.time_to_accuracy(t)),
            }
        })
        .collect();
    rows.sort_by(|a, b| a.label.cmp(&b.label).then(a.seed.cmp(&b.seed)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunKey;
    use crate::store::RunArtifact;
    use tifl_core::experiment::ExperimentConfig;
    use tifl_core::policy::Policy;
    use tifl_core::runner::{RunRequest, RunSpec, SelectionStrategy};
    use tifl_fl::{RoundReport, TrainingReport};

    fn artifact(seed: u64, policy: &str, accuracies: &[f64]) -> RunArtifact {
        let mut experiment = ExperimentConfig::tiny(seed);
        experiment.rounds = accuracies.len() as u64;
        // The spec must differ per policy so each cell keeps its own
        // RunKey (same-request artifacts would overwrite each other).
        let spec = if policy == "vanilla" {
            RunSpec::default()
        } else {
            RunSpec {
                selection: SelectionStrategy::TierPolicy {
                    policy: Policy::uniform(5),
                },
                ..RunSpec::default()
            }
        };
        let request = RunRequest {
            experiment,
            rounds: None,
            seed: None,
            clients_per_round: None,
            spec,
        };
        let report = TrainingReport {
            policy: policy.into(),
            rounds: accuracies
                .iter()
                .enumerate()
                .map(|(r, &accuracy)| RoundReport {
                    round: r as u64,
                    time: (r + 1) as f64,
                    latency: 1.0,
                    selected: vec![0],
                    aggregated: vec![0],
                    accuracy: Some(accuracy),
                    loss: Some(1.0),
                    bytes_down: 5,
                    bytes_up: 7,
                })
                .collect(),
        };
        RunArtifact::new(RunKey::of(&request), request, report)
    }

    #[test]
    fn pivot_sorts_by_label_then_seed_and_fills_target_times() {
        let dir = std::env::temp_dir().join(format!("tifl-pivot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).expect("store opens");
        store
            .write(&artifact(2, "uniform", &[0.2, 0.6]))
            .expect("writes");
        store
            .write(&artifact(1, "vanilla", &[0.1, 0.3]))
            .expect("writes");
        store
            .write(&artifact(1, "uniform", &[0.3, 0.7]))
            .expect("writes");

        let rows = pivot_rows(&store, Some(0.5));
        let order: Vec<(String, u64)> = rows.iter().map(|r| (r.label.clone(), r.seed)).collect();
        assert_eq!(
            order,
            vec![
                ("uniform".into(), 1),
                ("uniform".into(), 2),
                ("vanilla".into(), 1)
            ]
        );
        assert_eq!(rows[0].rounds, 2);
        assert_eq!(rows[0].bytes_up, 14);
        assert_eq!(rows[0].time_to_target_sec, Some(2.0));
        assert_eq!(rows[2].time_to_target_sec, None);
        assert!((rows[2].final_accuracy - 0.3).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pivot_skips_unparseable_files() {
        let dir = std::env::temp_dir().join(format!("tifl-pivot-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).expect("store opens");
        let good = artifact(1, "vanilla", &[0.4]);
        store.write(&good).expect("writes");
        // A key-named file that is not an artifact must be skipped, not
        // abort the whole report.
        let bogus = artifact(9, "vanilla", &[0.4]).key;
        std::fs::write(store.path_of(bogus), "{\"not\": \"an artifact\"}").expect("write");
        let rows = pivot_rows(&store, None);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].seed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
