//! The sweep scheduler: whole runs multiplexed over a worker pool,
//! with per-run panic isolation and a shared profile cache.
//!
//! Every run is an independent pure function of its request, so the
//! scheduler can hand runs to `std::thread` workers in any order and
//! still produce results bit-for-bit identical to a serial loop — the
//! worker count is an execution knob, never a result knob (pinned in
//! `tests/sweep.rs`). The one piece of genuinely shared work, the
//! profiling pass, goes through a [`ProfileCache`] keyed by
//! (experiment × comm axis) — exactly the key `Runner`'s own per-config
//! cache uses — so a sweep profiles each topology once, not once per
//! run.

use crate::manifest::{content_key, KeyedRun, RunKey, SweepManifest};
use crate::store::{
    host_parallelism, LaneSpan, RunArtifact, RunStore, RunSummaryLine, SweepSummary, WorkerLane,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tifl_comm::CommSpec;
use tifl_core::experiment::ExperimentConfig;
use tifl_core::runner::{Experiment, RunRequest, Runner, SharedProfile};
use tifl_fl::session::SessionOverrides;
use tifl_fl::TrainingReport;
use tifl_obs::{HostClock, MetricsSnapshot, Phase, PhaseTotals, RealClock};

/// The cross-run profile-cache key: a content hash of the resolved
/// experiment and the spec's comm axis — the same two inputs
/// `Runner::profile` derives its measurement from, so equal keys imply
/// interchangeable profiles.
#[must_use]
pub fn profile_key(experiment: &ExperimentConfig, comm: Option<CommSpec>) -> u128 {
    let canon = serde_json::to_string(&(experiment, comm)).expect("experiment configs serialize");
    content_key(&canon)
}

/// A mutex-guarded profile/tier cache shared by every worker of a
/// sweep. Each key is computed exactly once: concurrent requesters of
/// the same topology block on the key's slot until the first one
/// finishes measuring.
#[derive(Default)]
pub struct ProfileCache {
    slots: Mutex<HashMap<u128, Arc<Mutex<Option<SharedProfile>>>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
}

impl ProfileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many profiling passes actually ran — the sharing observable
    /// the tests and the sweep summary assert on.
    #[must_use]
    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::SeqCst)
    }

    /// How many requests were answered from the cache — the work the
    /// sharing saved (`hits + computed == requests`).
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::SeqCst)
    }

    /// The profile under `key`, computing it with `compute` on first
    /// use. `compute` runs outside the global map lock (only the
    /// per-key slot is held), so distinct topologies profile in
    /// parallel while duplicate requests wait instead of re-measuring.
    ///
    /// A `compute` that panics leaves the slot empty, not wedged: the
    /// panic unwinds to this run's isolation boundary with its real
    /// message, and later requesters of the key recover the (poisoned
    /// but still empty) slot and try the measurement themselves — so
    /// every affected run reports the actual profiling error instead
    /// of a lock-poisoning artifact.
    pub fn get_or_compute(
        &self,
        key: u128,
        compute: impl FnOnce() -> SharedProfile,
    ) -> SharedProfile {
        let slot = {
            let mut slots = self
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(slots.entry(key).or_default())
        };
        let mut guard = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(profile) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::SeqCst);
            return Arc::clone(profile);
        }
        let profile = compute();
        *guard = Some(Arc::clone(&profile));
        self.computed.fetch_add(1, Ordering::SeqCst);
        profile
    }
}

/// What happened to one scheduled run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Executed this sweep; artifact written (when a store is attached).
    Completed {
        /// The produced artifact.
        artifact: RunArtifact,
        /// Wall-clock seconds spent on the run.
        wall_clock_sec: f64,
        /// Per-phase host-seconds inside the run (profile, plan, train,
        /// encode, fold, eval) plus the artifact's store write.
        phases: PhaseTotals,
    },
    /// A valid artifact already existed — resume skipped the run and
    /// loaded it instead.
    Skipped {
        /// The pre-existing artifact.
        artifact: RunArtifact,
    },
    /// The run (or its artifact write) panicked/failed; the rest of the
    /// sweep was unaffected.
    Failed {
        /// The run's key.
        key: RunKey,
        /// The run's display label.
        label: String,
        /// Panic or I/O message.
        message: String,
    },
}

impl RunOutcome {
    /// The run's key.
    #[must_use]
    pub fn key(&self) -> RunKey {
        match self {
            RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                artifact.key
            }
            RunOutcome::Failed { key, .. } => *key,
        }
    }

    /// The run's label.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                &artifact.label
            }
            RunOutcome::Failed { label, .. } => label,
        }
    }

    /// The training report, unless the run failed.
    #[must_use]
    pub fn report(&self) -> Option<&TrainingReport> {
        match self {
            RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                Some(&artifact.report)
            }
            RunOutcome::Failed { .. } => None,
        }
    }

    /// True for [`RunOutcome::Failed`].
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self, RunOutcome::Failed { .. })
    }

    /// The run's per-phase host-seconds (zero unless completed).
    #[must_use]
    pub fn phases(&self) -> PhaseTotals {
        match self {
            RunOutcome::Completed { phases, .. } => *phases,
            _ => PhaseTotals::default(),
        }
    }

    fn summary_line(&self) -> RunSummaryLine {
        match self {
            RunOutcome::Completed {
                artifact,
                wall_clock_sec,
                ..
            } => RunSummaryLine {
                key: artifact.key,
                status: "completed".into(),
                wall_clock_sec: *wall_clock_sec,
                summary: Some(artifact.report.summary()),
                error: None,
            },
            RunOutcome::Skipped { artifact } => RunSummaryLine {
                key: artifact.key,
                status: "skipped".into(),
                wall_clock_sec: 0.0,
                summary: Some(artifact.report.summary()),
                error: None,
            },
            RunOutcome::Failed {
                key,
                label: _,
                message,
            } => RunSummaryLine {
                key: *key,
                status: "failed".into(),
                wall_clock_sec: 0.0,
                summary: None,
                error: Some(message.clone()),
            },
        }
    }
}

/// The result of one sweep execution: per-run outcomes in canonical
/// manifest order plus sweep-level observables.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-run outcomes, in manifest order.
    pub outcomes: Vec<RunOutcome>,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// Profiling passes actually executed (see [`ProfileCache`]).
    pub profiles_computed: usize,
    /// Profile requests answered from the shared cache.
    pub profile_cache_hits: usize,
    /// Per-worker utilization timelines (one lane per worker).
    pub worker_lanes: Vec<WorkerLane>,
    /// Total wall-clock seconds.
    pub wall_clock_sec: f64,
}

impl SweepReport {
    /// Runs executed this sweep.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RunOutcome::Completed { .. }))
            .count()
    }

    /// Runs satisfied from pre-existing artifacts.
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RunOutcome::Skipped { .. }))
            .count()
    }

    /// Runs that failed.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// `(key, label, message)` of every failed run.
    #[must_use]
    pub fn failures(&self) -> Vec<(RunKey, &str, &str)> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                RunOutcome::Failed {
                    key,
                    label,
                    message,
                } => Some((*key, label.as_str(), message.as_str())),
                _ => None,
            })
            .collect()
    }

    /// The reports of the non-failed runs, in manifest order.
    #[must_use]
    pub fn reports(&self) -> Vec<&TrainingReport> {
        self.outcomes
            .iter()
            .filter_map(RunOutcome::report)
            .collect()
    }

    /// All reports, in manifest order, consuming the sweep.
    ///
    /// # Panics
    /// Panics if any run failed, naming every failure — the behaviour
    /// the figure binaries want (a partially plotted figure is a bug).
    #[must_use]
    pub fn into_reports(self) -> Vec<TrainingReport> {
        assert!(
            self.failed() == 0,
            "sweep had failures: {:?}",
            self.failures()
        );
        self.outcomes
            .into_iter()
            .map(|o| match o {
                RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                    artifact.report
                }
                // tifl-lint: allow(panic-in-library) — invariant panic: the assert! above guarantees no Failed outcome reaches this map
                RunOutcome::Failed { .. } => unreachable!("asserted above"),
            })
            .collect()
    }

    /// Summed per-run wall-clock over completed runs — how busy the
    /// pool was, for the occupancy ratio in the summary sidecar.
    #[must_use]
    pub fn worker_busy_sec(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| match o {
                RunOutcome::Completed { wall_clock_sec, .. } => *wall_clock_sec,
                _ => 0.0,
            })
            .sum()
    }

    /// Per-phase host-seconds merged over every completed run — where
    /// the sweep's busy time actually went.
    #[must_use]
    pub fn host_phase_sec(&self) -> PhaseTotals {
        let mut totals = PhaseTotals::default();
        for outcome in &self.outcomes {
            totals.merge(&outcome.phases());
        }
        totals
    }

    /// The summary sidecar for this execution.
    #[must_use]
    pub fn summary(&self, name: Option<String>) -> SweepSummary {
        SweepSummary {
            name,
            workers: self.workers,
            host_parallelism: host_parallelism(),
            profiles_computed: self.profiles_computed,
            profile_cache_hits: self.profile_cache_hits,
            resume_skips: self.skipped(),
            worker_busy_sec: self.worker_busy_sec(),
            host_phase_sec: self.host_phase_sec(),
            worker_lanes: self.worker_lanes.clone(),
            wall_clock_sec: self.wall_clock_sec,
            runs: self.outcomes.iter().map(RunOutcome::summary_line).collect(),
        }
    }
}

/// One line of the `--progress` JSONL event stream. Every event
/// carries the same field set (inapplicable ones are `null`), so
/// consumers parse each line with one schema and dispatch on `event`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// `sweep_started` / `run_started` / `run_finished` /
    /// `run_panicked` / `sweep_finished`.
    pub event: String,
    /// Host seconds since the sweep started.
    pub at_sec: f64,
    /// Total runs in the sweep.
    pub total: usize,
    /// Worker threads in the pool (sweep-level events only).
    pub workers: Option<usize>,
    /// Worker that handled the run (run-level events only).
    pub worker: Option<usize>,
    /// The run's canonical manifest index (run-level events only).
    pub index: Option<usize>,
    /// The run's key, rendered as its artifact stem.
    pub key: Option<String>,
    /// The run's display label.
    pub label: Option<String>,
    /// `completed` / `skipped` / `failed` (terminal run events only).
    pub status: Option<String>,
    /// Wall-clock seconds spent on the run (terminal run events only).
    pub wall_clock_sec: Option<f64>,
    /// Per-phase host-seconds inside the run (completed runs only).
    pub phases: Option<PhaseTotals>,
    /// Runs finished so far, including this one.
    pub done: Option<usize>,
    /// Estimated host seconds to sweep completion, extrapolated from
    /// the rate of runs finished so far.
    pub eta_sec: Option<f64>,
    /// Failure message (`run_panicked` only).
    pub message: Option<String>,
}

impl ProgressEvent {
    fn sweep(event: &str, at_sec: f64, total: usize, workers: usize) -> Self {
        Self {
            event: event.to_string(),
            at_sec,
            total,
            workers: Some(workers),
            worker: None,
            index: None,
            key: None,
            label: None,
            status: None,
            wall_clock_sec: None,
            phases: None,
            done: None,
            eta_sec: None,
            message: None,
        }
    }

    fn run(event: &str, at_sec: f64, total: usize, worker: usize, run: &KeyedRun) -> Self {
        Self {
            event: event.to_string(),
            at_sec,
            total,
            workers: None,
            worker: Some(worker),
            index: Some(run.index),
            key: Some(run.key.to_string()),
            label: Some(run.request.spec.display_label()),
            status: None,
            wall_clock_sec: None,
            phases: None,
            done: None,
            eta_sec: None,
            message: None,
        }
    }
}

/// A line-buffered JSONL sink for [`ProgressEvent`]s, shared by every
/// worker of a sweep. Emission is best-effort operator telemetry: a
/// failed write never fails the sweep.
pub struct ProgressLog {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for ProgressLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressLog").finish_non_exhaustive()
    }
}

impl ProgressLog {
    /// A log writing to an arbitrary sink (tests use a shared buffer).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// A log appending to a file at `path` (created if missing).
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Emit one event as one JSON line, flushing so a tailing consumer
    /// sees it immediately. Write errors are swallowed (best-effort).
    pub fn emit(&self, event: &ProgressEvent) {
        let mut line = serde_json::to_string(event).expect("progress events serialize");
        line.push('\n');
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

/// Multiplexes whole runs over a pool of `std::thread` workers.
///
/// All host-time reads go through the injected [`HostClock`]
/// ([`RealClock`] by default, a frozen clock in tests), so the
/// scheduler itself contains no raw wall-clock calls — timings are an
/// operator-facing observable, never an input to run results.
#[derive(Clone)]
pub struct SweepScheduler {
    workers: usize,
    clock: Arc<dyn HostClock>,
}

impl std::fmt::Debug for SweepScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepScheduler")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl SweepScheduler {
    /// A scheduler with `workers` threads (0 = one per logical core).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            host_parallelism()
        } else {
            workers
        };
        Self {
            workers,
            clock: RealClock::shared(),
        }
    }

    /// Replace the host clock (tests pin timeline structure with a
    /// deterministic clock).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn HostClock>) -> Self {
        self.clock = clock;
        self
    }

    /// The worker count in effect.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Expand `manifest` and execute it. With a store attached, every
    /// completed run is persisted under its key and (when `resume` is
    /// set) runs whose valid artifacts already exist are skipped; the
    /// sweep summary sidecar is rewritten at the end.
    pub fn run(
        &self,
        manifest: &SweepManifest,
        store: Option<&RunStore>,
        resume: bool,
    ) -> SweepReport {
        self.run_logged(manifest, store, resume, None)
    }

    /// [`SweepScheduler::run`] with an optional JSONL progress stream
    /// (the `tifl sweep --progress` path).
    pub fn run_logged(
        &self,
        manifest: &SweepManifest,
        store: Option<&RunStore>,
        resume: bool,
        progress: Option<&ProgressLog>,
    ) -> SweepReport {
        let runs = manifest.expand();
        let report = self.execute_logged(&runs, store, resume, progress);
        if let Some(store) = store {
            if let Err(e) = store.write_summary(&report.summary(manifest.name.clone())) {
                // tifl-lint: allow(print-in-library) — operator-facing warning: a lost sidecar must be visible even though the sweep result stands
                eprintln!("[sweep] warning: writing sweep summary failed: {e}");
            }
        }
        report
    }

    /// Execute an explicit run list (the seam `run` and the tests
    /// share). Outcomes come back in input order regardless of which
    /// worker finished which run when.
    pub fn execute(
        &self,
        runs: &[KeyedRun],
        store: Option<&RunStore>,
        resume: bool,
    ) -> SweepReport {
        self.execute_logged(runs, store, resume, None)
    }

    /// [`SweepScheduler::execute`] with an optional JSONL progress
    /// stream.
    #[allow(clippy::too_many_lines)]
    pub fn execute_logged(
        &self,
        runs: &[KeyedRun],
        store: Option<&RunStore>,
        resume: bool,
        progress: Option<&ProgressLog>,
    ) -> SweepReport {
        let clock = self.clock.as_ref();
        let t0 = clock.now_sec();
        let total = runs.len();
        let cache = ProfileCache::new();
        let next = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(total.max(1));
        let lane_slots: Vec<Mutex<Vec<LaneSpan>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();

        if let Some(log) = progress {
            log.emit(&ProgressEvent::sweep("sweep_started", 0.0, total, workers));
        }

        std::thread::scope(|scope| {
            let slots = &slots;
            let cache = &cache;
            let next = &next;
            let finished = &finished;
            for (w, lane_slot) in lane_slots.iter().enumerate() {
                scope.spawn(move || {
                    let mut lane: Vec<LaneSpan> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= total {
                            break;
                        }
                        let run = &runs[i];
                        let start_sec = clock.now_sec() - t0;
                        if let Some(log) = progress {
                            log.emit(&ProgressEvent::run("run_started", start_sec, total, w, run));
                        }
                        let outcome = execute_one(run, cache, store, resume, clock);
                        let end_sec = clock.now_sec() - t0;
                        let done = finished.fetch_add(1, Ordering::SeqCst) + 1;
                        let tag = match &outcome {
                            RunOutcome::Completed { wall_clock_sec, .. } => {
                                format!("done in {wall_clock_sec:.1}s")
                            }
                            RunOutcome::Skipped { .. } => "skipped (artifact exists)".into(),
                            RunOutcome::Failed { message, .. } => format!("FAILED: {message}"),
                        };
                        // tifl-lint: allow(print-in-library) — operator-facing progress line for long sweeps; stderr only, never part of results
                        eprintln!(
                            "[sweep] {done}/{total} {} ({}): {tag}",
                            outcome.label(),
                            run.key,
                        );
                        if let Some(log) = progress {
                            let name = if outcome.is_failed() {
                                "run_panicked"
                            } else {
                                "run_finished"
                            };
                            let mut event = ProgressEvent::run(name, end_sec, total, w, run);
                            event.status = Some(
                                match &outcome {
                                    RunOutcome::Completed { .. } => "completed",
                                    RunOutcome::Skipped { .. } => "skipped",
                                    RunOutcome::Failed { .. } => "failed",
                                }
                                .to_string(),
                            );
                            event.wall_clock_sec = Some(end_sec - start_sec);
                            event.done = Some(done);
                            if let RunOutcome::Completed { phases, .. } = &outcome {
                                event.phases = Some(*phases);
                            }
                            if let RunOutcome::Failed { message, .. } = &outcome {
                                event.message = Some(message.clone());
                            }
                            // ETA from the completed-run rate so far:
                            // runs-per-second over the elapsed window,
                            // extrapolated to the remainder.
                            if end_sec > 0.0 && done < total {
                                let rate = done as f64 / end_sec;
                                event.eta_sec = Some((total - done) as f64 / rate);
                            }
                            log.emit(&event);
                        }
                        lane.push(LaneSpan {
                            index: run.index,
                            key: run.key,
                            label: outcome.label().to_string(),
                            start_sec,
                            end_sec,
                            phases: outcome.phases(),
                        });
                        *slots[i].lock().expect("outcome slot poisoned") = Some(outcome);
                    }
                    *lane_slot.lock().expect("lane slot poisoned") = lane;
                });
            }
        });

        let outcomes: Vec<RunOutcome> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("outcome slot poisoned")
                    .expect("every slot filled before scope exit")
            })
            .collect();
        let worker_lanes: Vec<WorkerLane> = lane_slots
            .into_iter()
            .enumerate()
            .map(|(worker, slot)| WorkerLane {
                worker,
                runs: slot.into_inner().expect("lane slot poisoned"),
            })
            .collect();
        let wall_clock_sec = clock.now_sec() - t0;
        if let Some(log) = progress {
            let mut event = ProgressEvent::sweep("sweep_finished", wall_clock_sec, total, workers);
            event.done = Some(outcomes.len());
            log.emit(&event);
        }
        SweepReport {
            outcomes,
            workers,
            profiles_computed: cache.computed(),
            profile_cache_hits: cache.hits(),
            worker_lanes,
            wall_clock_sec,
        }
    }
}

fn execute_one(
    run: &KeyedRun,
    cache: &ProfileCache,
    store: Option<&RunStore>,
    resume: bool,
    clock: &dyn HostClock,
) -> RunOutcome {
    if resume {
        if let Some(artifact) = store.and_then(|s| s.load_valid(run.key, &run.request)) {
            return RunOutcome::Skipped { artifact };
        }
    }
    let label = run.request.spec.display_label();
    let started = clock.now_sec();
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_one(&run.request, cache))) {
        Ok((report, metrics, mut phases)) => {
            let mut artifact = RunArtifact::new(run.key, run.request.clone(), report);
            artifact.metrics = Some(metrics);
            if let Some(store) = store {
                let t_write = clock.now_sec();
                let wrote = store.write(&artifact);
                phases.add(Phase::StoreWrite, clock.now_sec() - t_write);
                if let Err(e) = wrote {
                    return RunOutcome::Failed {
                        key: run.key,
                        label,
                        message: format!("writing artifact: {e}"),
                    };
                }
            }
            RunOutcome::Completed {
                artifact,
                wall_clock_sec: clock.now_sec() - started,
                phases,
            }
        }
        Err(payload) => RunOutcome::Failed {
            key: run.key,
            label,
            message: panic_message(payload.as_ref()),
        },
    }
}

/// Execute one request, sourcing the profiling pass from the shared
/// cache. The report is bit-for-bit equivalent to `request.run()`: the
/// cache hands the runner exactly the measurement it would have taken
/// itself (re-profiling runs measure per segment inside the run and
/// bypass the cache, like an unshared runner). Runs observed with a
/// zero-capacity ring — the deterministic metrics snapshot rides into
/// the artifact, no trace is stored — and the run's per-phase
/// host-seconds come back alongside for the sweep's utilization lanes.
fn run_one(
    request: &RunRequest,
    cache: &ProfileCache,
) -> (TrainingReport, MetricsSnapshot, PhaseTotals) {
    let experiment = request.experiment();
    let spec = request.spec.clone();
    let wants_shared = spec.selection.needs_profile() && spec.reprofile_every.is_none();
    let observed = if wants_shared {
        let comm = spec.profile_axis();
        let profile = cache.get_or_compute(profile_key(&experiment, comm), || {
            let overrides = SessionOverrides {
                comm,
                ..SessionOverrides::default()
            };
            Arc::new(experiment.profile_and_tier_with(&overrides))
        });
        Runner::with_shared_profile(&experiment, spec, profile).run_observed(0)
    } else {
        Runner::with_spec(&experiment, spec).run_observed(0)
    };
    (observed.report, observed.metrics, observed.host_phases)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "run panicked".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::SweepManifest;
    use tifl_core::policy::Policy;
    use tifl_core::runner::{RunSpec, SelectionStrategy};

    fn tiny_manifest(policies: &[Policy]) -> SweepManifest {
        let mut manifest = SweepManifest::new(ExperimentConfig::tiny(60));
        manifest.axes.selection = policies
            .iter()
            .map(|p| SelectionStrategy::TierPolicy { policy: p.clone() })
            .collect();
        manifest
    }

    #[test]
    fn profile_cache_computes_each_key_once() {
        let cache = ProfileCache::new();
        let exp = ExperimentConfig::tiny(60);
        let mk = || Arc::new(exp.profile_and_tier());
        let a = cache.get_or_compute(1, mk);
        let b = cache.get_or_compute(1, || unreachable!("key 1 already cached"));
        assert!(Arc::ptr_eq(&a, &b));
        let _ = cache.get_or_compute(2, mk);
        assert_eq!(cache.computed(), 2);
    }

    #[test]
    fn profile_cache_survives_a_panicking_compute() {
        // A compute that panics (a degenerate topology) must not wedge
        // the key's slot: the next requester recovers it and takes the
        // measurement itself, so each run surfaces the real error.
        let cache = ProfileCache::new();
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_compute(1, || panic!("profiling exploded"));
        }));
        assert!(attempt.is_err());
        assert_eq!(cache.computed(), 0);
        let exp = ExperimentConfig::tiny(60);
        let profile = cache.get_or_compute(1, || Arc::new(exp.profile_and_tier()));
        assert_eq!(cache.computed(), 1);
        let again = cache.get_or_compute(1, || unreachable!("cached after recovery"));
        assert!(Arc::ptr_eq(&profile, &again));
    }

    #[test]
    fn profile_keys_separate_experiments_and_comm() {
        let a = ExperimentConfig::tiny(1);
        let b = ExperimentConfig::tiny(2);
        assert_eq!(profile_key(&a, None), profile_key(&a, None));
        assert_ne!(profile_key(&a, None), profile_key(&b, None));
        assert_ne!(
            profile_key(&a, None),
            profile_key(&a, Some(CommSpec::default()))
        );
    }

    #[test]
    fn sweep_shares_one_profile_across_tiered_runs() {
        let manifest = tiny_manifest(&[Policy::uniform(5), Policy::fast(5), Policy::slow(5)]);
        let report = SweepScheduler::new(2).run(&manifest, None, false);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.failed(), 0);
        assert_eq!(
            report.profiles_computed, 1,
            "one topology must profile exactly once"
        );
    }

    #[test]
    fn vanilla_sweeps_never_profile() {
        let manifest = SweepManifest::new(ExperimentConfig::tiny(61));
        let report = SweepScheduler::new(1).run(&manifest, None, false);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.profiles_computed, 0);
    }

    #[test]
    fn a_panicking_run_is_isolated() {
        // vanilla + reprofile_every is rejected by the runner with a
        // panic; the surrounding sweep must carry on.
        let mut runs = tiny_manifest(&[Policy::uniform(5)]).expand();
        let mut bad = runs[0].request.clone();
        bad.spec = RunSpec {
            reprofile_every: Some(2),
            ..RunSpec::default()
        };
        runs.push(KeyedRun {
            index: 1,
            key: RunKey::of(&bad),
            request: bad,
        });
        let report = SweepScheduler::new(2).execute(&runs, None, false);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 1);
        let failures = report.failures();
        assert!(
            failures[0]
                .2
                .contains("re-profiling requires a tiered policy"),
            "unexpected failure message: {failures:?}"
        );
        assert!(!report.outcomes[0].is_failed());
        assert!(report.outcomes[1].is_failed());
    }

    #[test]
    fn scheduler_defaults_workers_to_host_parallelism() {
        assert_eq!(SweepScheduler::new(0).workers(), host_parallelism());
        assert_eq!(SweepScheduler::new(3).workers(), 3);
    }

    #[test]
    fn completed_runs_carry_phase_totals_and_lanes() {
        let manifest = tiny_manifest(&[Policy::uniform(5), Policy::fast(5)]);
        let report = SweepScheduler::new(2).run(&manifest, None, false);
        assert_eq!(report.completed(), 2);
        for outcome in &report.outcomes {
            let phases = outcome.phases();
            assert!(
                phases.train_sec >= 0.0 && phases.fold_sec >= 0.0,
                "phase totals must be populated: {phases:?}"
            );
        }
        // Every run appears on exactly one worker lane.
        assert_eq!(report.worker_lanes.len(), report.workers);
        let lane_runs: usize = report.worker_lanes.iter().map(|l| l.runs.len()).sum();
        assert_eq!(lane_runs, 2);
        // The merged phase totals land in the summary sidecar shape.
        let summary = report.summary(None);
        assert_eq!(summary.worker_lanes, report.worker_lanes);
        assert!((summary.host_phase_sec.total() - report.host_phase_sec().total()).abs() < 1e-12);
    }

    #[test]
    fn frozen_clock_pins_sweep_timeline_structure() {
        use tifl_obs::FrozenClock;
        // Serial sweep on a frozen clock: every clock read ticks once,
        // so the lane timeline is fully deterministic — monotone,
        // non-overlapping spans in pick-up order.
        let manifest = tiny_manifest(&[Policy::uniform(5), Policy::fast(5)]);
        let report = SweepScheduler::new(1)
            .with_clock(FrozenClock::shared())
            .run(&manifest, None, false);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.worker_lanes.len(), 1);
        let lane = &report.worker_lanes[0];
        assert_eq!(lane.runs.len(), 2);
        let mut last_end = 0.0;
        for span in &lane.runs {
            assert!(span.start_sec >= last_end, "lane spans must not overlap");
            assert!(span.end_sec > span.start_sec);
            last_end = span.end_sec;
        }
        assert!(report.wall_clock_sec >= last_end);
    }

    #[test]
    fn progress_log_streams_parseable_events() {
        use std::sync::Arc as StdArc;

        #[derive(Clone, Default)]
        struct SharedBuf(StdArc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let log = ProgressLog::to_writer(Box::new(buf.clone()));
        let manifest = tiny_manifest(&[Policy::uniform(5), Policy::fast(5)]);
        let runs = manifest.expand();
        let report = SweepScheduler::new(2).execute_logged(&runs, None, false, Some(&log));
        assert_eq!(report.completed(), 2);

        let bytes = buf.0.lock().expect("buf").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let events: Vec<ProgressEvent> = text
            .lines()
            .map(|line| serde_json::from_str(line).expect("every line parses"))
            .collect();
        // started + per-run (started, finished) + finished.
        assert_eq!(events.len(), 2 + 2 * runs.len());
        assert_eq!(events[0].event, "sweep_started");
        assert_eq!(events[0].workers, Some(2));
        assert_eq!(events.last().expect("nonempty").event, "sweep_finished");
        let finished: Vec<_> = events
            .iter()
            .filter(|e| e.event == "run_finished")
            .collect();
        assert_eq!(finished.len(), runs.len());
        assert!(finished
            .iter()
            .all(|e| e.status.as_deref() == Some("completed") && e.phases.is_some()));
        // `done` counters over terminal events are a permutation of 1..=n.
        let mut dones: Vec<usize> = finished.iter().filter_map(|e| e.done).collect();
        dones.sort_unstable();
        assert_eq!(dones, vec![1, 2]);
    }

    #[test]
    fn a_panicking_run_emits_run_panicked() {
        let mut runs = tiny_manifest(&[Policy::uniform(5)]).expand();
        let mut bad = runs[0].request.clone();
        bad.spec = RunSpec {
            reprofile_every: Some(2),
            ..RunSpec::default()
        };
        runs.push(KeyedRun {
            index: 1,
            key: RunKey::of(&bad),
            request: bad,
        });
        let dir = std::env::temp_dir().join(format!("tifl-progress-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("progress.jsonl");
        let log = ProgressLog::create(&path).expect("log opens");
        let report = SweepScheduler::new(1).execute_logged(&runs, None, false, Some(&log));
        assert_eq!(report.failed(), 1);
        let text = std::fs::read_to_string(&path).expect("log readable");
        let events: Vec<ProgressEvent> = text
            .lines()
            .map(|line| serde_json::from_str(line).expect("every line parses"))
            .collect();
        let panicked: Vec<_> = events
            .iter()
            .filter(|e| e.event == "run_panicked")
            .collect();
        assert_eq!(panicked.len(), 1);
        assert!(panicked[0]
            .message
            .as_deref()
            .expect("message present")
            .contains("re-profiling requires a tiered policy"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
