//! The sweep scheduler: whole runs multiplexed over a worker pool,
//! with per-run panic isolation and a shared profile cache.
//!
//! Every run is an independent pure function of its request, so the
//! scheduler can hand runs to `std::thread` workers in any order and
//! still produce results bit-for-bit identical to a serial loop — the
//! worker count is an execution knob, never a result knob (pinned in
//! `tests/sweep.rs`). The one piece of genuinely shared work, the
//! profiling pass, goes through a [`ProfileCache`] keyed by
//! (experiment × comm axis) — exactly the key `Runner`'s own per-config
//! cache uses — so a sweep profiles each topology once, not once per
//! run.

use crate::manifest::{content_key, KeyedRun, RunKey, SweepManifest};
use crate::store::{host_parallelism, RunArtifact, RunStore, RunSummaryLine, SweepSummary};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tifl_comm::CommSpec;
use tifl_core::experiment::ExperimentConfig;
use tifl_core::runner::{Experiment, RunRequest, Runner, SharedProfile};
use tifl_fl::session::SessionOverrides;
use tifl_fl::TrainingReport;
use tifl_obs::MetricsSnapshot;

/// The cross-run profile-cache key: a content hash of the resolved
/// experiment and the spec's comm axis — the same two inputs
/// `Runner::profile` derives its measurement from, so equal keys imply
/// interchangeable profiles.
#[must_use]
pub fn profile_key(experiment: &ExperimentConfig, comm: Option<CommSpec>) -> u128 {
    let canon = serde_json::to_string(&(experiment, comm)).expect("experiment configs serialize");
    content_key(&canon)
}

/// A mutex-guarded profile/tier cache shared by every worker of a
/// sweep. Each key is computed exactly once: concurrent requesters of
/// the same topology block on the key's slot until the first one
/// finishes measuring.
#[derive(Default)]
pub struct ProfileCache {
    slots: Mutex<HashMap<u128, Arc<Mutex<Option<SharedProfile>>>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
}

impl ProfileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many profiling passes actually ran — the sharing observable
    /// the tests and the sweep summary assert on.
    #[must_use]
    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::SeqCst)
    }

    /// How many requests were answered from the cache — the work the
    /// sharing saved (`hits + computed == requests`).
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::SeqCst)
    }

    /// The profile under `key`, computing it with `compute` on first
    /// use. `compute` runs outside the global map lock (only the
    /// per-key slot is held), so distinct topologies profile in
    /// parallel while duplicate requests wait instead of re-measuring.
    ///
    /// A `compute` that panics leaves the slot empty, not wedged: the
    /// panic unwinds to this run's isolation boundary with its real
    /// message, and later requesters of the key recover the (poisoned
    /// but still empty) slot and try the measurement themselves — so
    /// every affected run reports the actual profiling error instead
    /// of a lock-poisoning artifact.
    pub fn get_or_compute(
        &self,
        key: u128,
        compute: impl FnOnce() -> SharedProfile,
    ) -> SharedProfile {
        let slot = {
            let mut slots = self
                .slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(slots.entry(key).or_default())
        };
        let mut guard = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(profile) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::SeqCst);
            return Arc::clone(profile);
        }
        let profile = compute();
        *guard = Some(Arc::clone(&profile));
        self.computed.fetch_add(1, Ordering::SeqCst);
        profile
    }
}

/// What happened to one scheduled run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Executed this sweep; artifact written (when a store is attached).
    Completed {
        /// The produced artifact.
        artifact: RunArtifact,
        /// Wall-clock seconds spent on the run.
        wall_clock_sec: f64,
    },
    /// A valid artifact already existed — resume skipped the run and
    /// loaded it instead.
    Skipped {
        /// The pre-existing artifact.
        artifact: RunArtifact,
    },
    /// The run (or its artifact write) panicked/failed; the rest of the
    /// sweep was unaffected.
    Failed {
        /// The run's key.
        key: RunKey,
        /// The run's display label.
        label: String,
        /// Panic or I/O message.
        message: String,
    },
}

impl RunOutcome {
    /// The run's key.
    #[must_use]
    pub fn key(&self) -> RunKey {
        match self {
            RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                artifact.key
            }
            RunOutcome::Failed { key, .. } => *key,
        }
    }

    /// The run's label.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                &artifact.label
            }
            RunOutcome::Failed { label, .. } => label,
        }
    }

    /// The training report, unless the run failed.
    #[must_use]
    pub fn report(&self) -> Option<&TrainingReport> {
        match self {
            RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                Some(&artifact.report)
            }
            RunOutcome::Failed { .. } => None,
        }
    }

    /// True for [`RunOutcome::Failed`].
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self, RunOutcome::Failed { .. })
    }

    fn summary_line(&self) -> RunSummaryLine {
        match self {
            RunOutcome::Completed {
                artifact,
                wall_clock_sec,
            } => RunSummaryLine {
                key: artifact.key,
                status: "completed".into(),
                wall_clock_sec: *wall_clock_sec,
                summary: Some(artifact.report.summary()),
                error: None,
            },
            RunOutcome::Skipped { artifact } => RunSummaryLine {
                key: artifact.key,
                status: "skipped".into(),
                wall_clock_sec: 0.0,
                summary: Some(artifact.report.summary()),
                error: None,
            },
            RunOutcome::Failed {
                key,
                label: _,
                message,
            } => RunSummaryLine {
                key: *key,
                status: "failed".into(),
                wall_clock_sec: 0.0,
                summary: None,
                error: Some(message.clone()),
            },
        }
    }
}

/// The result of one sweep execution: per-run outcomes in canonical
/// manifest order plus sweep-level observables.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-run outcomes, in manifest order.
    pub outcomes: Vec<RunOutcome>,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// Profiling passes actually executed (see [`ProfileCache`]).
    pub profiles_computed: usize,
    /// Profile requests answered from the shared cache.
    pub profile_cache_hits: usize,
    /// Total wall-clock seconds.
    pub wall_clock_sec: f64,
}

impl SweepReport {
    /// Runs executed this sweep.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RunOutcome::Completed { .. }))
            .count()
    }

    /// Runs satisfied from pre-existing artifacts.
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RunOutcome::Skipped { .. }))
            .count()
    }

    /// Runs that failed.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// `(key, label, message)` of every failed run.
    #[must_use]
    pub fn failures(&self) -> Vec<(RunKey, &str, &str)> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                RunOutcome::Failed {
                    key,
                    label,
                    message,
                } => Some((*key, label.as_str(), message.as_str())),
                _ => None,
            })
            .collect()
    }

    /// The reports of the non-failed runs, in manifest order.
    #[must_use]
    pub fn reports(&self) -> Vec<&TrainingReport> {
        self.outcomes
            .iter()
            .filter_map(RunOutcome::report)
            .collect()
    }

    /// All reports, in manifest order, consuming the sweep.
    ///
    /// # Panics
    /// Panics if any run failed, naming every failure — the behaviour
    /// the figure binaries want (a partially plotted figure is a bug).
    #[must_use]
    pub fn into_reports(self) -> Vec<TrainingReport> {
        assert!(
            self.failed() == 0,
            "sweep had failures: {:?}",
            self.failures()
        );
        self.outcomes
            .into_iter()
            .map(|o| match o {
                RunOutcome::Completed { artifact, .. } | RunOutcome::Skipped { artifact } => {
                    artifact.report
                }
                // tifl-lint: allow(panic-in-library) — invariant panic: the assert! above guarantees no Failed outcome reaches this map
                RunOutcome::Failed { .. } => unreachable!("asserted above"),
            })
            .collect()
    }

    /// Summed per-run wall-clock over completed runs — how busy the
    /// pool was, for the occupancy ratio in the summary sidecar.
    #[must_use]
    pub fn worker_busy_sec(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| match o {
                RunOutcome::Completed { wall_clock_sec, .. } => *wall_clock_sec,
                _ => 0.0,
            })
            .sum()
    }

    /// The summary sidecar for this execution.
    #[must_use]
    pub fn summary(&self, name: Option<String>) -> SweepSummary {
        SweepSummary {
            name,
            workers: self.workers,
            host_parallelism: host_parallelism(),
            profiles_computed: self.profiles_computed,
            profile_cache_hits: self.profile_cache_hits,
            resume_skips: self.skipped(),
            worker_busy_sec: self.worker_busy_sec(),
            wall_clock_sec: self.wall_clock_sec,
            runs: self.outcomes.iter().map(RunOutcome::summary_line).collect(),
        }
    }
}

/// Multiplexes whole runs over a pool of `std::thread` workers.
#[derive(Debug, Clone, Copy)]
pub struct SweepScheduler {
    workers: usize,
}

impl SweepScheduler {
    /// A scheduler with `workers` threads (0 = one per logical core).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            host_parallelism()
        } else {
            workers
        };
        Self { workers }
    }

    /// The worker count in effect.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Expand `manifest` and execute it. With a store attached, every
    /// completed run is persisted under its key and (when `resume` is
    /// set) runs whose valid artifacts already exist are skipped; the
    /// sweep summary sidecar is rewritten at the end.
    pub fn run(
        &self,
        manifest: &SweepManifest,
        store: Option<&RunStore>,
        resume: bool,
    ) -> SweepReport {
        let runs = manifest.expand();
        let report = self.execute(&runs, store, resume);
        if let Some(store) = store {
            if let Err(e) = store.write_summary(&report.summary(manifest.name.clone())) {
                // tifl-lint: allow(print-in-library) — operator-facing warning: a lost sidecar must be visible even though the sweep result stands
                eprintln!("[sweep] warning: writing sweep summary failed: {e}");
            }
        }
        report
    }

    /// Execute an explicit run list (the seam `run` and the tests
    /// share). Outcomes come back in input order regardless of which
    /// worker finished which run when.
    pub fn execute(
        &self,
        runs: &[KeyedRun],
        store: Option<&RunStore>,
        resume: bool,
    ) -> SweepReport {
        // tifl-lint: allow(wall-clock-in-core) — measures real sweep wall time for operator progress logs; never feeds simulated state
        let started = Instant::now();
        let total = runs.len();
        let cache = ProfileCache::new();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(total.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        break;
                    }
                    let outcome = execute_one(&runs[i], &cache, store, resume);
                    let tag = match &outcome {
                        RunOutcome::Completed { wall_clock_sec, .. } => {
                            format!("done in {wall_clock_sec:.1}s")
                        }
                        RunOutcome::Skipped { .. } => "skipped (artifact exists)".into(),
                        RunOutcome::Failed { message, .. } => format!("FAILED: {message}"),
                    };
                    // tifl-lint: allow(print-in-library) — operator-facing progress line for long sweeps; stderr only, never part of results
                    eprintln!(
                        "[sweep] {}/{total} {} ({}): {tag}",
                        i + 1,
                        outcome.label(),
                        runs[i].key,
                    );
                    *slots[i].lock().expect("outcome slot poisoned") = Some(outcome);
                });
            }
        });

        let outcomes = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("outcome slot poisoned")
                    .expect("every slot filled before scope exit")
            })
            .collect();
        SweepReport {
            outcomes,
            workers,
            profiles_computed: cache.computed(),
            profile_cache_hits: cache.hits(),
            wall_clock_sec: started.elapsed().as_secs_f64(),
        }
    }
}

fn execute_one(
    run: &KeyedRun,
    cache: &ProfileCache,
    store: Option<&RunStore>,
    resume: bool,
) -> RunOutcome {
    if resume {
        if let Some(artifact) = store.and_then(|s| s.load_valid(run.key, &run.request)) {
            return RunOutcome::Skipped { artifact };
        }
    }
    let label = run.request.spec.display_label();
    // tifl-lint: allow(wall-clock-in-core) — per-run wall time is an operator-facing metric, excluded from RunKey hashing and artifacts
    let started = Instant::now();
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_one(&run.request, cache))) {
        Ok((report, metrics)) => {
            let mut artifact = RunArtifact::new(run.key, run.request.clone(), report);
            artifact.metrics = Some(metrics);
            if let Some(store) = store {
                if let Err(e) = store.write(&artifact) {
                    return RunOutcome::Failed {
                        key: run.key,
                        label,
                        message: format!("writing artifact: {e}"),
                    };
                }
            }
            RunOutcome::Completed {
                artifact,
                wall_clock_sec: started.elapsed().as_secs_f64(),
            }
        }
        Err(payload) => RunOutcome::Failed {
            key: run.key,
            label,
            message: panic_message(payload.as_ref()),
        },
    }
}

/// Execute one request, sourcing the profiling pass from the shared
/// cache. The report is bit-for-bit equivalent to `request.run()`: the
/// cache hands the runner exactly the measurement it would have taken
/// itself (re-profiling runs measure per segment inside the run and
/// bypass the cache, like an unshared runner). Runs observed with a
/// zero-capacity ring — the deterministic metrics snapshot rides into
/// the artifact, no trace is stored.
fn run_one(request: &RunRequest, cache: &ProfileCache) -> (TrainingReport, MetricsSnapshot) {
    let experiment = request.experiment();
    let spec = request.spec.clone();
    let wants_shared = spec.selection.needs_profile() && spec.reprofile_every.is_none();
    let observed = if wants_shared {
        let comm = spec.profile_axis();
        let profile = cache.get_or_compute(profile_key(&experiment, comm), || {
            let overrides = SessionOverrides {
                comm,
                ..SessionOverrides::default()
            };
            Arc::new(experiment.profile_and_tier_with(&overrides))
        });
        Runner::with_shared_profile(&experiment, spec, profile).run_observed(0)
    } else {
        Runner::with_spec(&experiment, spec).run_observed(0)
    };
    (observed.report, observed.metrics)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "run panicked".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::SweepManifest;
    use tifl_core::policy::Policy;
    use tifl_core::runner::{RunSpec, SelectionStrategy};

    fn tiny_manifest(policies: &[Policy]) -> SweepManifest {
        let mut manifest = SweepManifest::new(ExperimentConfig::tiny(60));
        manifest.axes.selection = policies
            .iter()
            .map(|p| SelectionStrategy::TierPolicy { policy: p.clone() })
            .collect();
        manifest
    }

    #[test]
    fn profile_cache_computes_each_key_once() {
        let cache = ProfileCache::new();
        let exp = ExperimentConfig::tiny(60);
        let mk = || Arc::new(exp.profile_and_tier());
        let a = cache.get_or_compute(1, mk);
        let b = cache.get_or_compute(1, || unreachable!("key 1 already cached"));
        assert!(Arc::ptr_eq(&a, &b));
        let _ = cache.get_or_compute(2, mk);
        assert_eq!(cache.computed(), 2);
    }

    #[test]
    fn profile_cache_survives_a_panicking_compute() {
        // A compute that panics (a degenerate topology) must not wedge
        // the key's slot: the next requester recovers it and takes the
        // measurement itself, so each run surfaces the real error.
        let cache = ProfileCache::new();
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_compute(1, || panic!("profiling exploded"));
        }));
        assert!(attempt.is_err());
        assert_eq!(cache.computed(), 0);
        let exp = ExperimentConfig::tiny(60);
        let profile = cache.get_or_compute(1, || Arc::new(exp.profile_and_tier()));
        assert_eq!(cache.computed(), 1);
        let again = cache.get_or_compute(1, || unreachable!("cached after recovery"));
        assert!(Arc::ptr_eq(&profile, &again));
    }

    #[test]
    fn profile_keys_separate_experiments_and_comm() {
        let a = ExperimentConfig::tiny(1);
        let b = ExperimentConfig::tiny(2);
        assert_eq!(profile_key(&a, None), profile_key(&a, None));
        assert_ne!(profile_key(&a, None), profile_key(&b, None));
        assert_ne!(
            profile_key(&a, None),
            profile_key(&a, Some(CommSpec::default()))
        );
    }

    #[test]
    fn sweep_shares_one_profile_across_tiered_runs() {
        let manifest = tiny_manifest(&[Policy::uniform(5), Policy::fast(5), Policy::slow(5)]);
        let report = SweepScheduler::new(2).run(&manifest, None, false);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.failed(), 0);
        assert_eq!(
            report.profiles_computed, 1,
            "one topology must profile exactly once"
        );
    }

    #[test]
    fn vanilla_sweeps_never_profile() {
        let manifest = SweepManifest::new(ExperimentConfig::tiny(61));
        let report = SweepScheduler::new(1).run(&manifest, None, false);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.profiles_computed, 0);
    }

    #[test]
    fn a_panicking_run_is_isolated() {
        // vanilla + reprofile_every is rejected by the runner with a
        // panic; the surrounding sweep must carry on.
        let mut runs = tiny_manifest(&[Policy::uniform(5)]).expand();
        let mut bad = runs[0].request.clone();
        bad.spec = RunSpec {
            reprofile_every: Some(2),
            ..RunSpec::default()
        };
        runs.push(KeyedRun {
            index: 1,
            key: RunKey::of(&bad),
            request: bad,
        });
        let report = SweepScheduler::new(2).execute(&runs, None, false);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 1);
        let failures = report.failures();
        assert!(
            failures[0]
                .2
                .contains("re-profiling requires a tiered policy"),
            "unexpected failure message: {failures:?}"
        );
        assert!(!report.outcomes[0].is_failed());
        assert!(report.outcomes[1].is_failed());
    }

    #[test]
    fn scheduler_defaults_workers_to_host_parallelism() {
        assert_eq!(SweepScheduler::new(0).workers(), host_parallelism());
        assert_eq!(SweepScheduler::new(3).workers(), 3);
    }
}
