//! Sweep orchestration: fleets of runs, declared once, executed in
//! parallel, persisted and resumable.
//!
//! The paper's entire evaluation (§5) is a *matrix* of runs — selection
//! policy × aggregation mode × local objective × communication model ×
//! scale × seed. This crate turns that matrix into a first-class
//! object:
//!
//! * [`manifest`] — a serde-serializable [`SweepManifest`] declares one
//!   value list per axis and expands deterministically into keyed
//!   [`RunRequest`](tifl_core::runner::RunRequest)s (a [`RunKey`] is a
//!   stable content hash of the fully resolved request);
//! * [`scheduler`] — a [`SweepScheduler`] multiplexes whole runs over a
//!   `std::thread` worker pool with per-run panic isolation and a
//!   shared, mutex-guarded profile/tier cache keyed by
//!   (experiment × comm axis), so a 60-run sweep profiles each topology
//!   once instead of 60 times. Results are bit-for-bit identical to a
//!   serial loop for any worker count;
//! * [`store`] — a [`RunStore`] persists every completed run as a
//!   deterministic JSON artifact named by its key; a re-invoked sweep
//!   **resumes** by validating and skipping keys whose artifacts
//!   already exist;
//! * [`report`] — [`pivot_rows`] pivots a store into the paper's
//!   policy × scenario comparison table (`tifl report`) without
//!   re-running anything;
//! * [`audit`] — [`audit_store`] walks a store and re-verifies every
//!   artifact (claimed key ↔ digest chain ↔ stored request ↔ report
//!   plausibility), the engine behind `tifl audit`;
//! * [`merge`] — [`merge_stores`] unions shard stores with byte-level
//!   comparison of overlapping keys (`tifl merge`), pairing with
//!   [`shard_runs`] for cross-host `--shard i/n` splits.
//!
//! The fluent entry point is [`SweepBuilder`]:
//!
//! ```no_run
//! use tifl_core::experiment::ExperimentConfig;
//! use tifl_core::policy::Policy;
//! use tifl_sweep::SweepBuilder;
//!
//! let cfg = ExperimentConfig::cifar10_resource_het(42);
//! let sweep = SweepBuilder::new(cfg)
//!     .policies(&Policy::cifar_set(5))
//!     .seeds([42, 43, 44])
//!     .workers(4)
//!     .out("sweep-artifacts")
//!     .resume(true)
//!     .run();
//! for report in sweep.reports() {
//!     println!("{}: {:.3}", report.policy, report.final_accuracy());
//! }
//! ```

#![forbid(unsafe_code)]

pub mod audit;
pub mod manifest;
pub mod merge;
pub mod report;
pub mod scheduler;
pub mod store;

pub use audit::{audit_artifact, audit_store, AuditFinding, AuditReport};
pub use manifest::{shard_runs, KeyedRun, RunKey, SweepAxes, SweepManifest};
pub use merge::{merge_stores, MergeConflict, MergeReport};
pub use report::pivot_rows;
pub use scheduler::{
    ProfileCache, ProgressEvent, ProgressLog, RunOutcome, SweepReport, SweepScheduler,
};
pub use store::{
    LaneSpan, RunArtifact, RunStore, StoreError, StoreErrorKind, SweepSummary, WorkerLane,
};

use std::path::PathBuf;
use tifl_comm::{CodecSpec, LinkModel};
use tifl_core::exec::ExecBackend;
use tifl_core::experiment::ExperimentConfig;
use tifl_core::policy::Policy;
use tifl_core::runner::{LocalTraining, SelectionStrategy};
use tifl_fl::session::AggregationMode;

/// Fluent construction and execution of a sweep — the multi-run
/// counterpart of `cfg.runner()`.
///
/// Builder methods mutate the pending manifest and return `&mut Self`;
/// [`SweepBuilder::run`] expands and executes it.
pub struct SweepBuilder {
    manifest: SweepManifest,
    workers: usize,
    out: Option<PathBuf>,
    resume: bool,
    shard: Option<(usize, usize)>,
}

impl SweepBuilder {
    /// A sweep over `experiment` with no axes yet (a single cell).
    #[must_use]
    pub fn new(experiment: ExperimentConfig) -> Self {
        Self {
            manifest: SweepManifest::new(experiment),
            workers: 0,
            out: None,
            resume: false,
            shard: None,
        }
    }

    /// Start from an existing manifest (e.g. one parsed from JSON).
    #[must_use]
    pub fn from_manifest(manifest: SweepManifest) -> Self {
        Self {
            manifest,
            workers: 0,
            out: None,
            resume: false,
            shard: None,
        }
    }

    /// Name the sweep (recorded in the store summary).
    pub fn named(&mut self, name: impl Into<String>) -> &mut Self {
        self.manifest.name = Some(name.into());
        self
    }

    /// Override the round count for every cell.
    pub fn rounds(&mut self, rounds: u64) -> &mut Self {
        self.manifest.rounds = Some(rounds);
        self
    }

    /// Sweep the pool size `|K|`.
    pub fn clients(&mut self, clients: impl IntoIterator<Item = usize>) -> &mut Self {
        self.manifest.axes.clients = clients.into_iter().collect();
        self
    }

    /// Sweep the root seed.
    pub fn seeds(&mut self, seeds: impl IntoIterator<Item = u64>) -> &mut Self {
        self.manifest.axes.seeds = seeds.into_iter().collect();
        self
    }

    /// Sweep selection strategies.
    pub fn selections(
        &mut self,
        selections: impl IntoIterator<Item = SelectionStrategy>,
    ) -> &mut Self {
        self.manifest.axes.selection = selections.into_iter().collect();
        self
    }

    /// Sweep a family of static tier policies (the figure binaries'
    /// idiom: one curve per Table 1 policy; a vanilla policy degrades
    /// to vanilla selection exactly like `Runner::policy`).
    pub fn policies(&mut self, policies: &[Policy]) -> &mut Self {
        self.selections(
            policies
                .iter()
                .map(|p| SelectionStrategy::TierPolicy { policy: p.clone() }),
        )
    }

    /// Sweep aggregation modes (`None` inherits the experiment's).
    pub fn aggregations(
        &mut self,
        modes: impl IntoIterator<Item = Option<AggregationMode>>,
    ) -> &mut Self {
        self.manifest.axes.aggregation = modes.into_iter().collect();
        self
    }

    /// Sweep local-training variants.
    pub fn locals(&mut self, locals: impl IntoIterator<Item = LocalTraining>) -> &mut Self {
        self.manifest.axes.local = locals.into_iter().collect();
        self
    }

    /// Sweep update codecs.
    pub fn codecs(&mut self, codecs: impl IntoIterator<Item = CodecSpec>) -> &mut Self {
        self.manifest.axes.codec = codecs.into_iter().collect();
        self
    }

    /// Sweep link models.
    pub fn links(&mut self, links: impl IntoIterator<Item = LinkModel>) -> &mut Self {
        self.manifest.axes.link = links.into_iter().collect();
        self
    }

    /// Sweep execution backends (result-invariant).
    pub fn backends(&mut self, backends: impl IntoIterator<Item = ExecBackend>) -> &mut Self {
        self.manifest.axes.backend = backends.into_iter().collect();
        self
    }

    /// Worker threads (0 = one per logical core, the default).
    pub fn workers(&mut self, workers: usize) -> &mut Self {
        self.workers = workers;
        self
    }

    /// Persist artifacts under `dir`.
    pub fn out(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.out = Some(dir.into());
        self
    }

    /// Skip runs whose valid artifacts already exist in the store.
    pub fn resume(&mut self, resume: bool) -> &mut Self {
        self.resume = resume;
        self
    }

    /// Execute only slice `index` of `count` of the expansion (the
    /// `tifl sweep --shard i/n` cross-host split; see
    /// [`shard_runs`]). Disjoint shard stores over one manifest merge
    /// ([`merge_stores`]) into exactly the unsharded sweep's store.
    ///
    /// # Panics
    /// Panics when `count` is 0 or `index >= count`.
    pub fn shard(&mut self, index: usize, count: usize) -> &mut Self {
        assert!(count > 0, "shard count must be positive");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        self.shard = Some((index, count));
        self
    }

    /// The manifest built so far.
    #[must_use]
    pub fn manifest(&self) -> &SweepManifest {
        &self.manifest
    }

    /// Expand and execute.
    ///
    /// # Panics
    /// Panics if the artifact directory cannot be created (a sweep that
    /// silently drops its persistence would un-resume itself).
    pub fn run(&self) -> SweepReport {
        let store = self.out.as_ref().map(|dir| {
            RunStore::open(dir)
                // tifl-lint: allow(panic-in-library) — an unopenable artifact store is unrecoverable for a sweep; aborting with the path is the right surface
                .unwrap_or_else(|e| panic!("opening run store {}: {e}", dir.display()))
        });
        let scheduler = SweepScheduler::new(self.workers);
        match self.shard {
            None => scheduler.run(&self.manifest, store.as_ref(), self.resume),
            Some((index, count)) => {
                let runs = shard_runs(&self.manifest.expand(), index, count);
                let report = scheduler.execute(&runs, store.as_ref(), self.resume);
                if let Some(store) = &store {
                    if let Err(e) = store.write_summary(&report.summary(self.manifest.name.clone()))
                    {
                        // tifl-lint: allow(print-in-library) — operator-facing warning: a lost sidecar must be visible even though the sweep result stands
                        eprintln!("[sweep] warning: writing sweep summary failed: {e}");
                    }
                }
                report
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_the_manifest() {
        let mut builder = SweepBuilder::new(ExperimentConfig::tiny(60));
        builder
            .named("demo")
            .rounds(6)
            .seeds([1, 2])
            .policies(&[Policy::vanilla(), Policy::uniform(5)])
            .backends([
                ExecBackend::Lockstep,
                ExecBackend::EventDriven { threads: 2 },
            ])
            .workers(2);
        let manifest = builder.manifest();
        assert_eq!(manifest.name.as_deref(), Some("demo"));
        assert_eq!(manifest.rounds, Some(6));
        assert_eq!(manifest.axes.cells(), 8);
        assert_eq!(manifest.expand().len(), 8);
    }

    #[test]
    fn builder_runs_a_single_cell() {
        let mut builder = SweepBuilder::new(ExperimentConfig::tiny(62));
        let sweep = builder.rounds(3).workers(1).run();
        assert_eq!(sweep.completed(), 1);
        let reports = sweep.into_reports();
        assert_eq!(reports[0].rounds.len(), 3);
        assert_eq!(reports[0].policy, "vanilla");
    }
}
