//! Store auditing: walk a [`RunStore`] and re-verify every artifact.
//!
//! The store's contract is that every artifact is a pure function of
//! its request — so anything that disagrees with itself (key vs.
//! claimed key, recorded digest chain vs. the chain recomputed from
//! the report, stored request vs. the key it is filed under) is
//! evidence of corruption, staleness, or a determinism bug, and every
//! report should be *physically plausible* (contiguous round indices,
//! a strictly increasing virtual clock, finite accuracies inside
//! `[0, 1]`). `tifl audit` runs these checks over a whole store and
//! emits the machine-readable [`AuditReport`]; with `--deny` any
//! finding makes the process exit nonzero, which is what the CI
//! `audit-smoke` job (and any cross-host pipeline) gates on.

use crate::manifest::RunKey;
use crate::store::{RunArtifact, RunStore};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One audit anomaly: where it is and what is wrong.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditFinding {
    /// The artifact's key (`None` for store-level findings such as
    /// leftover temp files).
    pub key: Option<RunKey>,
    /// The offending path, relative to the store dir where possible.
    pub path: String,
    /// Stable finding kind (`corrupt`, `stale`, `bad-round-index`,
    /// `non-monotonic-clock`, `bad-latency`, `bad-accuracy`,
    /// `bad-loss`, `tmp-leftover`).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// The machine-readable result of auditing one store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// The audited store directory.
    pub dir: String,
    /// Artifacts examined.
    pub artifacts: usize,
    /// Artifacts with no findings.
    pub clean: usize,
    /// Every anomaly, in store-key order.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Whether the store passed every check.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering (the `tifl audit` default output).
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audited {}: {} artifacts, {} clean, {} findings",
            self.dir,
            self.artifacts,
            self.clean,
            self.findings.len()
        );
        for f in &self.findings {
            let key = f.key.map_or_else(|| "-".to_string(), |k| k.to_string());
            let _ = writeln!(out, "  [{}] {} {}: {}", f.kind, key, f.path, f.message);
        }
        out
    }
}

fn rel(path: &Path, dir: &Path) -> String {
    path.strip_prefix(dir).unwrap_or(path).display().to_string()
}

/// Audit one already-loaded artifact's internal consistency: request
/// staleness against the key it is filed under, report-vs-request
/// round count, round-index contiguity, clock monotonicity, latency
/// sanity, and accuracy/loss plausibility. (File-level checks — parse,
/// claimed key, digest chain — happen in
/// [`RunStore::load_checked`](crate::store::RunStore::load_checked)
/// before this runs.)
#[must_use]
pub fn audit_artifact(key: RunKey, path: &str, artifact: &RunArtifact) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    let mut flag = |kind: &str, message: String| {
        findings.push(AuditFinding {
            key: Some(key),
            path: path.to_string(),
            kind: kind.to_string(),
            message,
        });
    };

    let resolved = RunKey::of(&artifact.request);
    if resolved != key {
        flag(
            "stale",
            format!("stored request resolves to {resolved}, artifact is filed under {key}"),
        );
    }
    let horizon = artifact.request.experiment().rounds;
    let rounds = artifact.report.rounds.len() as u64;
    if rounds != horizon {
        flag(
            "truncated",
            format!("report spans {rounds} rounds, request resolves to {horizon}"),
        );
    }

    let mut last_time = 0.0f64;
    for (i, r) in artifact.report.rounds.iter().enumerate() {
        if r.round != i as u64 {
            flag(
                "bad-round-index",
                format!("round at position {i} records index {}", r.round),
            );
        }
        if !r.time.is_finite() || r.time <= last_time {
            flag(
                "non-monotonic-clock",
                format!(
                    "round {}: time {} does not advance past {last_time}",
                    r.round, r.time
                ),
            );
        }
        if r.time.is_finite() {
            last_time = r.time;
        }
        if !r.latency.is_finite() || r.latency < 0.0 {
            flag(
                "bad-latency",
                format!("round {}: latency {}", r.round, r.latency),
            );
        }
        if let Some(acc) = r.accuracy {
            if !acc.is_finite() || !(0.0..=1.0).contains(&acc) {
                flag(
                    "bad-accuracy",
                    format!("round {}: accuracy {acc} outside [0, 1]", r.round),
                );
            }
        }
        if let Some(loss) = r.loss {
            if !loss.is_finite() {
                flag("bad-loss", format!("round {}: loss {loss}", r.round));
            }
        }
    }
    findings
}

/// Walk `store` and re-verify every artifact: bytes ↔ parse ↔ claimed
/// key ↔ digest chain (via
/// [`RunStore::load_checked`](crate::store::RunStore::load_checked)),
/// then [`audit_artifact`]'s semantic checks, plus store-level hygiene
/// (leftover `.json.tmp` files from a killed writer). Serialized-NaN
/// caveat: the canonical serializer renders non-finite floats as
/// `null`, so a NaN accuracy on disk reads back as an unevaluated
/// round — the in-memory [`audit_artifact`] entry point is where NaN
/// itself is catchable.
#[must_use]
pub fn audit_store(store: &RunStore) -> AuditReport {
    let dir = store.dir().to_path_buf();
    let mut findings = Vec::new();
    let keys = store.keys();
    let mut dirty = 0usize;

    for &key in &keys {
        let path = rel(&store.path_of(key), &dir);
        let before = findings.len();
        match store.load_checked(key) {
            Ok(artifact) => findings.extend(audit_artifact(key, &path, &artifact)),
            Err(err) => findings.push(AuditFinding {
                key: Some(key),
                path,
                kind: "corrupt".to_string(),
                message: err.to_string(),
            }),
        }
        if findings.len() > before {
            dirty += 1;
        }
    }

    // Store hygiene: a leftover temp file means a writer died mid-write
    // (the artifact it was replacing, if any, is still the valid one).
    if let Ok(entries) = std::fs::read_dir(&dir) {
        let mut tmp: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                name.ends_with(".json.tmp").then(|| name.to_string())
            })
            .collect();
        tmp.sort_unstable();
        for name in tmp {
            let key = name.strip_suffix(".json.tmp").and_then(RunKey::parse);
            findings.push(AuditFinding {
                key,
                path: name,
                kind: "tmp-leftover".to_string(),
                message: "leftover temp file from an interrupted write".to_string(),
            });
        }
    }

    AuditReport {
        dir: dir.display().to_string(),
        artifacts: keys.len(),
        clean: keys.len() - dirty,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_core::experiment::ExperimentConfig;
    use tifl_core::runner::{RunRequest, RunSpec};
    use tifl_fl::{RoundReport, TrainingReport};

    fn request(seed: u64, rounds: u64) -> RunRequest {
        let mut experiment = ExperimentConfig::tiny(seed);
        experiment.rounds = rounds;
        RunRequest {
            experiment,
            rounds: None,
            seed: None,
            clients_per_round: None,
            spec: RunSpec::default(),
        }
    }

    fn report(rounds: u64) -> TrainingReport {
        TrainingReport {
            policy: "vanilla".into(),
            rounds: (0..rounds)
                .map(|r| RoundReport {
                    round: r,
                    time: (r + 1) as f64,
                    latency: 1.0,
                    selected: vec![0],
                    aggregated: vec![0],
                    accuracy: Some(0.5),
                    loss: Some(1.0),
                    bytes_down: 10,
                    bytes_up: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn clean_artifact_has_no_findings() {
        let request = request(1, 3);
        let key = RunKey::of(&request);
        let artifact = RunArtifact::new(key, request, report(3));
        assert_eq!(audit_artifact(key, "a.json", &artifact), Vec::new());
    }

    #[test]
    fn semantic_anomalies_are_flagged_by_kind() {
        let request = request(2, 3);
        let key = RunKey::of(&request);
        let mut artifact = RunArtifact::new(key, request, report(3));
        artifact.report.rounds[1].round = 7; // discontiguous index
        artifact.report.rounds[1].time = 0.5; // clock goes backwards
        artifact.report.rounds[2].latency = -1.0;
        artifact.report.rounds[2].accuracy = Some(f64::NAN);
        artifact.report.rounds[0].loss = Some(f32::INFINITY);
        let kinds: Vec<String> = audit_artifact(key, "a.json", &artifact)
            .into_iter()
            .map(|f| f.kind)
            .collect();
        for expected in [
            "bad-round-index",
            "non-monotonic-clock",
            "bad-latency",
            "bad-accuracy",
            "bad-loss",
        ] {
            assert!(
                kinds.iter().any(|k| k == expected),
                "missing {expected} in {kinds:?}"
            );
        }
    }

    #[test]
    fn out_of_range_accuracy_and_staleness_are_flagged() {
        let request = request(3, 2);
        let key = RunKey::of(&request);
        let mut artifact = RunArtifact::new(key, request, report(2));
        artifact.report.rounds[0].accuracy = Some(1.5);
        let findings = audit_artifact(key, "a.json", &artifact);
        assert!(findings.iter().any(|f| f.kind == "bad-accuracy"));

        // Filed under a key its request does not resolve to → stale.
        let other_key = RunKey::of(&self::request(4, 2));
        let stale = RunArtifact::new(other_key, self::request(3, 2), report(2));
        let findings = audit_artifact(other_key, "a.json", &stale);
        assert!(findings.iter().any(|f| f.kind == "stale"));

        // Fewer rounds than the request's horizon → truncated.
        let request = self::request(5, 3);
        let key = RunKey::of(&request);
        let short = RunArtifact::new(key, request, report(2));
        let findings = audit_artifact(key, "a.json", &short);
        assert!(findings.iter().any(|f| f.kind == "truncated"));
    }
}
