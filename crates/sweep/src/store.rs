//! The shared artifact store: one JSON file per completed run, named
//! by its [`RunKey`], plus a sweep-level summary.
//!
//! Artifact bytes are **deterministic**: everything in a
//! [`RunArtifact`] is a pure function of the request (the report, the
//! label) or stable per host (`host_parallelism`), and the store always
//! renders through the one shared serializer ([`write_json`]). That is
//! what makes the resume contract testable — an interrupted sweep that
//! resumes produces byte-identical artifacts to one that never stopped.
//! Per-run wall-clock timings (which genuinely vary) live in the
//! [`SweepSummary`] sidecar, not in the artifacts.

use crate::manifest::RunKey;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use tifl_core::runner::RunRequest;
use tifl_fl::{ReportSummary, TrainingReport};
use tifl_obs::{Digest128, MetricsSnapshot, PhaseTotals};

/// The one JSON serializer every artifact path shares (the sweep store
/// and the `tifl run --spec --out` single-run path): pretty-printed
/// with a trailing newline.
///
/// # Errors
/// Propagates the underlying filesystem error.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let mut text = serde_json::to_string_pretty(value).expect("artifact values serialize");
    text.push('\n');
    std::fs::write(path, text)
}

/// The logical cores of this host (1 where undetectable) — recorded in
/// every artifact so perf numbers derived from a store are
/// interpretable later.
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Everything one completed run leaves behind: identity, provenance
/// (the full request), and the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunArtifact {
    /// Stable content key of the request (also the file name).
    pub key: RunKey,
    /// The run's report label.
    pub label: String,
    /// Logical cores of the host that produced the artifact.
    pub host_parallelism: usize,
    /// The request that produced the report (resume validates against
    /// it, so a manifest edit that changes a cell re-runs that cell).
    pub request: RunRequest,
    /// The full training report.
    pub report: TrainingReport,
    /// Deterministic run metrics (counters, gauges, histograms) folded
    /// from the virtual-time trace. Optional so artifacts written
    /// before the observability layer existed still load and validate.
    #[serde(default)]
    pub metrics: Option<MetricsSnapshot>,
    /// The report's per-round digest-chain head — the artifact's
    /// self-check. Optional so artifacts written before the digest
    /// chain existed still load and validate (the chain is recomputed
    /// from the report on demand either way).
    #[serde(default)]
    pub digest: Option<Digest128>,
}

impl RunArtifact {
    /// Package a completed run (without metrics; set
    /// [`RunArtifact::metrics`] afterwards for observed runs).
    #[must_use]
    pub fn new(key: RunKey, request: RunRequest, report: TrainingReport) -> Self {
        let digest = Some(report.digest_chain());
        Self {
            key,
            label: report.policy.clone(),
            host_parallelism: host_parallelism(),
            request,
            report,
            metrics: None,
            digest,
        }
    }
}

/// What went wrong loading or validating one artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// The artifact file does not exist.
    Missing,
    /// The file exists but could not be read.
    Unreadable,
    /// The file read but is not a parseable [`RunArtifact`] (the parse
    /// error is attached).
    Unparseable(String),
    /// The artifact's recorded `key` field disagrees with the key it is
    /// filed under.
    KeyMismatch {
        /// The key the artifact claims.
        claimed: RunKey,
    },
    /// The artifact's recorded digest-chain head disagrees with the
    /// chain recomputed from its report — the report bytes changed
    /// after the artifact was written.
    DigestMismatch {
        /// The head the artifact recorded at write time.
        recorded: Digest128,
        /// The head recomputed from the stored report.
        recomputed: Digest128,
    },
    /// The stored request resolves to a different [`RunKey`] than the
    /// request being validated against — a stale artifact from an
    /// edited manifest.
    RequestMismatch {
        /// The key the stored request resolves to.
        stored: RunKey,
        /// The key the scheduled request resolves to.
        expected: RunKey,
    },
    /// The report spans fewer/more rounds than the resolved request
    /// asks for — a truncated (or over-long) run.
    RoundCount {
        /// Rounds in the stored report.
        stored: u64,
        /// Rounds the resolved request expects.
        expected: u64,
    },
}

/// A load/validate failure with its full context: which file, which
/// key, and what exactly disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    /// The offending artifact path.
    pub path: PathBuf,
    /// The key the artifact is (or should be) filed under.
    pub key: RunKey,
    /// What went wrong.
    pub kind: StoreErrorKind,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let path = self.path.display();
        let key = self.key;
        match &self.kind {
            StoreErrorKind::Missing => write!(f, "artifact {key} missing: {path}"),
            StoreErrorKind::Unreadable => write!(f, "artifact {key} unreadable: {path}"),
            StoreErrorKind::Unparseable(err) => {
                write!(f, "artifact {key} unparseable ({err}): {path}")
            }
            StoreErrorKind::KeyMismatch { claimed } => write!(
                f,
                "artifact {key} claims key {claimed} (filed under {key}): {path}"
            ),
            StoreErrorKind::DigestMismatch {
                recorded,
                recomputed,
            } => write!(
                f,
                "artifact {key} digest chain {recorded} != recomputed {recomputed} \
                 (report bytes changed after write): {path}"
            ),
            StoreErrorKind::RequestMismatch { stored, expected } => write!(
                f,
                "artifact {key} is stale: stored request resolves to {stored}, \
                 scheduled request to {expected}: {path}"
            ),
            StoreErrorKind::RoundCount { stored, expected } => write!(
                f,
                "artifact {key} spans {stored} rounds, request resolves to {expected}: {path}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// One line of the sweep summary sidecar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummaryLine {
    /// The run's key.
    pub key: RunKey,
    /// `completed` / `skipped` / `failed`.
    pub status: String,
    /// Wall-clock seconds this sweep spent on the run (0 when skipped).
    pub wall_clock_sec: f64,
    /// Digest of the result (`None` for failed runs).
    pub summary: Option<ReportSummary>,
    /// Failure message (`None` unless failed).
    pub error: Option<String>,
}

/// One run on a worker's utilization timeline: when (in host seconds
/// since the sweep started) the worker picked the run up, when it put
/// it down, and where inside the run the time went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneSpan {
    /// The run's canonical manifest index.
    pub index: usize,
    /// The run's key.
    pub key: RunKey,
    /// The run's display label.
    pub label: String,
    /// Host seconds (since sweep start) when the worker started it.
    pub start_sec: f64,
    /// Host seconds (since sweep start) when the worker finished it.
    pub end_sec: f64,
    /// Per-phase host-seconds inside the run (zero for skipped/failed).
    pub phases: PhaseTotals,
}

impl LaneSpan {
    /// The span's duration in host seconds.
    #[must_use]
    pub fn dur(&self) -> f64 {
        self.end_sec - self.start_sec
    }
}

/// One worker's utilization timeline: every run it executed, in the
/// order it picked them up. Replaces the single `worker_busy_sec`
/// scalar as the sweep's occupancy observable (the scalar survives as
/// a derived sum for older consumers).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerLane {
    /// Worker index (0-based).
    pub worker: usize,
    /// The runs this worker handled, in pick-up order.
    pub runs: Vec<LaneSpan>,
}

impl WorkerLane {
    /// Host seconds this worker spent inside runs.
    #[must_use]
    pub fn busy_sec(&self) -> f64 {
        self.runs.iter().map(LaneSpan::dur).sum()
    }
}

/// The sweep-level sidecar (`sweep_summary.json`): run statuses and
/// timings. Unlike the artifacts this is *not* byte-stable across
/// re-executions — wall-clock lives here on purpose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Manifest name, if any.
    pub name: Option<String>,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// Logical cores of the host.
    pub host_parallelism: usize,
    /// Profiling passes actually executed (the shared-cache observable:
    /// one per distinct experiment × comm topology, not one per run).
    pub profiles_computed: usize,
    /// Profile-cache hits: runs that reused a pass another run paid
    /// for. Defaults for sidecars written before this field existed.
    #[serde(default)]
    pub profile_cache_hits: usize,
    /// Runs skipped by resume (a valid artifact already existed).
    #[serde(default)]
    pub resume_skips: usize,
    /// Summed per-run wall-clock over completed runs — the occupancy
    /// numerator (`worker_busy_sec / (workers * wall_clock_sec)`).
    #[serde(default)]
    pub worker_busy_sec: f64,
    /// Per-phase host-seconds summed over completed runs (plus store
    /// writes) — where the sweep's wall time actually went. Defaults
    /// for sidecars written before host profiling existed.
    #[serde(default)]
    pub host_phase_sec: PhaseTotals,
    /// Per-worker utilization timelines. Defaults (empty) for sidecars
    /// written before host profiling existed.
    #[serde(default)]
    pub worker_lanes: Vec<WorkerLane>,
    /// Total sweep wall-clock in seconds.
    pub wall_clock_sec: f64,
    /// Per-run lines, in canonical manifest order.
    pub runs: Vec<RunSummaryLine>,
}

/// A directory of keyed run artifacts.
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// Open (creating if needed) a store at `dir`.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path of `key` (`<dir>/<key>.json`).
    #[must_use]
    pub fn path_of(&self, key: RunKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// The summary sidecar path (`<dir>/sweep_summary.json`).
    #[must_use]
    pub fn summary_path(&self) -> PathBuf {
        self.dir.join("sweep_summary.json")
    }

    /// Persist an artifact under its key. Writes to a temporary file
    /// and renames, so a killed sweep never leaves a half-written
    /// artifact that could pass validation.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, artifact: &RunArtifact) -> io::Result<PathBuf> {
        let path = self.path_of(artifact.key);
        let tmp = path.with_extension("json.tmp");
        write_json(&tmp, artifact)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Load the artifact of `key`, if present and parseable.
    #[must_use]
    pub fn load(&self, key: RunKey) -> Option<RunArtifact> {
        self.load_checked(key).ok()
    }

    /// Load the artifact of `key` with integrity checks and full error
    /// context (path + key + what disagreed): the file must exist,
    /// read, parse, claim the key it is filed under, and — when it
    /// recorded a digest-chain head — that head must match the chain
    /// recomputed from the stored report. Artifacts written before the
    /// digest field existed (no `digest`) pass the digest check
    /// vacuously.
    ///
    /// # Errors
    /// A [`StoreError`] naming the artifact path, the key, and the
    /// failed check.
    pub fn load_checked(&self, key: RunKey) -> Result<RunArtifact, StoreError> {
        let path = self.path_of(key);
        let err = |kind| StoreError {
            path: path.clone(),
            key,
            kind,
        };
        if !path.exists() {
            return Err(err(StoreErrorKind::Missing));
        }
        let text = std::fs::read_to_string(&path).map_err(|_| err(StoreErrorKind::Unreadable))?;
        let artifact: RunArtifact = serde_json::from_str(&text)
            .map_err(|e| err(StoreErrorKind::Unparseable(e.to_string())))?;
        if artifact.key != key {
            return Err(err(StoreErrorKind::KeyMismatch {
                claimed: artifact.key,
            }));
        }
        if let Some(recorded) = artifact.digest {
            let recomputed = artifact.report.digest_chain();
            if recorded != recomputed {
                return Err(err(StoreErrorKind::DigestMismatch {
                    recorded,
                    recomputed,
                }));
            }
        }
        Ok(artifact)
    }

    /// Load the artifact of `key` only if it validates against
    /// `request`: the stored key matches the file's claim, the stored
    /// request *resolves to the same key* as the one being scheduled
    /// (the [`RunKey`] equivalence — a seed passed as an override and
    /// the same seed baked into the experiment are the same run, so
    /// artifacts stay shareable across manifest layouts), and the
    /// report spans the resolved round count. Anything else (missing,
    /// corrupt, stale manifest edit, truncated run) returns `None` and
    /// the run re-executes.
    #[must_use]
    pub fn load_valid(&self, key: RunKey, request: &RunRequest) -> Option<RunArtifact> {
        self.validate_checked(key, request).ok()
    }

    /// [`RunStore::load_valid`] with full error context: every
    /// [`RunStore::load_checked`] check, plus request-key equivalence
    /// and the resolved round count.
    ///
    /// # Errors
    /// A [`StoreError`] naming the artifact path, the key, and the
    /// failed check.
    pub fn validate_checked(
        &self,
        key: RunKey,
        request: &RunRequest,
    ) -> Result<RunArtifact, StoreError> {
        let artifact = self.load_checked(key)?;
        let err = |kind| StoreError {
            path: self.path_of(key),
            key,
            kind,
        };
        let stored = RunKey::of(&artifact.request);
        let expected = RunKey::of(request);
        if stored != expected {
            return Err(err(StoreErrorKind::RequestMismatch { stored, expected }));
        }
        let rounds = artifact.report.rounds.len() as u64;
        let horizon = request.experiment().rounds;
        if rounds != horizon {
            return Err(err(StoreErrorKind::RoundCount {
                stored: rounds,
                expected: horizon,
            }));
        }
        Ok(artifact)
    }

    /// Whether a valid artifact for (`key`, `request`) already exists —
    /// the resume predicate.
    #[must_use]
    pub fn validates(&self, key: RunKey, request: &RunRequest) -> bool {
        self.load_valid(key, request).is_some()
    }

    /// Keys of every artifact in the store (sorted; summary and foreign
    /// files ignored).
    #[must_use]
    pub fn keys(&self) -> Vec<RunKey> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys: Vec<RunKey> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                RunKey::parse(name.strip_suffix(".json")?)
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Persist `key`'s artifact as raw bytes, verbatim (tmp + rename,
    /// like [`RunStore::write`]). The merge path uses this so a merged
    /// store is byte-identical to its sources — no re-serialization
    /// that could mask (or introduce) a formatting drift.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_bytes(&self, key: RunKey, bytes: &[u8]) -> io::Result<PathBuf> {
        let path = self.path_of(key);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Write the sweep summary sidecar.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_summary(&self, summary: &SweepSummary) -> io::Result<PathBuf> {
        let path = self.summary_path();
        write_json(&path, summary)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_core::experiment::ExperimentConfig;
    use tifl_core::runner::RunSpec;
    use tifl_fl::RoundReport;

    fn tmp_store(tag: &str) -> RunStore {
        let dir = std::env::temp_dir().join(format!("tifl-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunStore::open(dir).expect("store opens")
    }

    fn request(seed: u64, rounds: u64) -> RunRequest {
        let mut experiment = ExperimentConfig::tiny(seed);
        experiment.rounds = rounds;
        RunRequest {
            experiment,
            rounds: None,
            seed: None,
            clients_per_round: None,
            spec: RunSpec::default(),
        }
    }

    fn report(rounds: u64) -> TrainingReport {
        TrainingReport {
            policy: "vanilla".into(),
            rounds: (0..rounds)
                .map(|r| RoundReport {
                    round: r,
                    time: (r + 1) as f64,
                    latency: 1.0,
                    selected: vec![0, 1],
                    aggregated: vec![0, 1],
                    accuracy: Some(0.5),
                    loss: Some(1.0),
                    bytes_down: 10,
                    bytes_up: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn artifacts_round_trip_and_validate() {
        let store = tmp_store("roundtrip");
        let request = request(1, 3);
        let key = RunKey::of(&request);
        let artifact = RunArtifact::new(key, request.clone(), report(3));
        let path = store.write(&artifact).expect("writes");
        assert_eq!(path, store.path_of(key));
        assert_eq!(store.load(key), Some(artifact.clone()));
        assert!(store.validates(key, &request));
        assert_eq!(store.keys(), vec![key]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn validation_rejects_corrupt_and_mismatched_artifacts() {
        let store = tmp_store("reject");
        let request = request(2, 3);
        let key = RunKey::of(&request);

        // Missing.
        assert!(!store.validates(key, &request));
        // Corrupt (truncated JSON).
        std::fs::write(store.path_of(key), "{\"key\": \"tru").expect("write");
        assert!(!store.validates(key, &request));
        // Valid bytes but a different request (e.g. edited manifest).
        let other = self::request(3, 3);
        let artifact = RunArtifact::new(key, other, report(3));
        store.write(&artifact).expect("writes");
        assert!(!store.validates(key, &request));
        // Truncated run (too few rounds for the resolved horizon).
        let short = RunArtifact::new(key, request.clone(), report(2));
        store.write(&short).expect("writes");
        assert!(!store.validates(key, &request));
        // The real thing.
        let good = RunArtifact::new(key, request.clone(), report(3));
        store.write(&good).expect("writes");
        assert!(store.validates(key, &request));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn validation_accepts_equivalent_request_layouts() {
        // A seed passed as a RunRequest override and the same seed
        // baked into the experiment resolve to the same RunKey — so an
        // artifact written by one manifest layout must satisfy a resume
        // scheduled by the other (artifacts are shareable across
        // manifest edits that keep the resolved cell).
        let store = tmp_store("layout");
        let mut exp = ExperimentConfig::tiny(1);
        exp.rounds = 3;
        let via_override = RunRequest {
            experiment: exp.clone(),
            rounds: None,
            seed: Some(9),
            clients_per_round: None,
            spec: RunSpec::default(),
        };
        let mut baked_exp = exp;
        baked_exp.seed = 9;
        let baked = RunRequest {
            experiment: baked_exp,
            rounds: None,
            seed: None,
            clients_per_round: None,
            spec: RunSpec::default(),
        };
        let key = RunKey::of(&via_override);
        assert_eq!(key, RunKey::of(&baked));
        store
            .write(&RunArtifact::new(key, via_override, report(3)))
            .expect("writes");
        assert!(store.validates(key, &baked));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn summary_and_foreign_files_are_not_keys() {
        let store = tmp_store("keys");
        std::fs::write(store.summary_path(), "{}").expect("write");
        std::fs::write(store.dir().join("notes.txt"), "hi").expect("write");
        assert_eq!(store.keys(), Vec::new());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn checked_errors_carry_path_key_and_cause() {
        let store = tmp_store("checked");
        let request = request(5, 2);
        let key = RunKey::of(&request);

        // Missing: names the path and key.
        let err = store.load_checked(key).expect_err("missing");
        assert_eq!(err.key, key);
        assert_eq!(err.path, store.path_of(key));
        assert_eq!(err.kind, StoreErrorKind::Missing);
        assert!(err.to_string().contains(&key.to_string()));
        assert!(err.to_string().contains("missing"));

        // Unparseable: the parse error is attached.
        std::fs::write(store.path_of(key), "{\"key\": \"tru").expect("write");
        let err = store.load_checked(key).expect_err("unparseable");
        assert!(matches!(err.kind, StoreErrorKind::Unparseable(_)));

        // Digest mismatch: a one-field edit to the report breaks the
        // recorded chain head.
        let mut artifact = RunArtifact::new(key, request.clone(), report(2));
        artifact.report.rounds[1].bytes_up += 1;
        store.write(&artifact).expect("writes");
        let err = store.load_checked(key).expect_err("digest mismatch");
        assert!(matches!(err.kind, StoreErrorKind::DigestMismatch { .. }));
        assert!(err.to_string().contains("digest chain"));

        // Stale request: validate_checked names both keys.
        let other = self::request(6, 2);
        store
            .write(&RunArtifact::new(key, other, report(2)))
            .expect("writes");
        let err = store.validate_checked(key, &request).expect_err("stale");
        assert!(matches!(err.kind, StoreErrorKind::RequestMismatch { .. }));

        // Truncated run: round counts on both sides.
        store
            .write(&RunArtifact::new(key, request.clone(), report(1)))
            .expect("writes");
        let err = store.validate_checked(key, &request).expect_err("short");
        assert_eq!(
            err.kind,
            StoreErrorKind::RoundCount {
                stored: 1,
                expected: 2
            }
        );

        // And the genuine artifact passes every check.
        store
            .write(&RunArtifact::new(key, request.clone(), report(2)))
            .expect("writes");
        let loaded = store.validate_checked(key, &request).expect("valid");
        assert_eq!(loaded.digest, Some(loaded.report.digest_chain()));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn predigest_artifacts_still_load_and_validate() {
        // Strip the `digest` (and `metrics`) fields the way a pre-chain
        // artifact would look on disk: it must still load, validate,
        // and recompute its chain on demand.
        let store = tmp_store("predigest");
        let request = request(7, 2);
        let key = RunKey::of(&request);
        let artifact = RunArtifact::new(key, request.clone(), report(2));
        store.write(&artifact).expect("writes");
        let text = std::fs::read_to_string(store.path_of(key)).expect("read");
        let mut value: serde::Value = serde_json::from_str(&text).expect("parses");
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(name, _)| name != "digest" && name != "metrics");
        }
        store
            .write_bytes(
                key,
                serde_json::to_string_pretty(&value)
                    .expect("renders")
                    .as_bytes(),
            )
            .expect("rewrites");
        let loaded = store.validate_checked(key, &request).expect("still valid");
        assert_eq!(loaded.digest, None);
        assert_eq!(loaded.report.digest_chain(), artifact.report.digest_chain());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn artifact_bytes_are_deterministic() {
        let store = tmp_store("bytes");
        let request = request(4, 2);
        let key = RunKey::of(&request);
        let artifact = RunArtifact::new(key, request, report(2));
        store.write(&artifact).expect("writes");
        let first = std::fs::read(store.path_of(key)).expect("read");
        store.write(&artifact).expect("writes again");
        let second = std::fs::read(store.path_of(key)).expect("read");
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
