//! Declarative sweep manifests and their deterministic expansion.
//!
//! A [`SweepManifest`] names a base experiment and one list per
//! evaluation axis; [`SweepManifest::expand`] takes the cross product
//! in a fixed canonical order and emits one keyed
//! [`RunRequest`] per cell. The
//! [`RunKey`] is a stable content hash of the *fully resolved* request
//! (scalar overrides folded into the experiment), so the same cell
//! always lands on the same artifact file — the property the resumable
//! [`RunStore`](crate::store::RunStore) is built on.

use serde::{Deserialize, Serialize};
use tifl_comm::{CodecSpec, CommSpec, LinkModel};
use tifl_core::exec::ExecBackend;
use tifl_core::experiment::ExperimentConfig;
use tifl_core::runner::{LocalTraining, RunRequest, RunSpec, SelectionStrategy};
use tifl_fl::session::AggregationMode;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a 64-bit offset basis.
const FNV_BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
/// An independent basis for the upper half of the 128-bit key (the
/// FNV-1a *128-bit* offset basis truncated to 64 bits).
const FNV_BASIS_HI: u64 = 0x6c62_272e_07bb_0142;

fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 128-bit content hash of canonical JSON (two independent FNV-1a
/// passes), used both for [`RunKey`]s and for the scheduler's
/// profile-cache keys.
#[must_use]
pub(crate) fn content_key(canonical_json: &str) -> u128 {
    let bytes = canonical_json.as_bytes();
    let lo = fnv1a64(bytes, FNV_BASIS_LO);
    let hi = fnv1a64(bytes, FNV_BASIS_HI);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// The stable identity of one run: a 128-bit content hash of the fully
/// resolved request (experiment with every scalar override applied,
/// plus the run spec). Two manifests that expand to the same cell
/// produce the same key, whatever order or axes they used — so sweep
/// artifacts are shareable and resumable across manifest edits.
///
/// Rendered (and serialized) as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub u128);

impl RunKey {
    /// The key of a request (resolves scalar overrides first).
    #[must_use]
    pub fn of(request: &RunRequest) -> Self {
        let resolved = (request.experiment(), request.spec.clone());
        let canon = serde_json::to_string(&resolved).expect("run requests serialize");
        RunKey(content_key(&canon))
    }

    /// Parse the 32-hex-digit rendering back into a key.
    #[must_use]
    pub fn parse(hex: &str) -> Option<Self> {
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(RunKey)
    }
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl From<u128> for RunKey {
    fn from(v: u128) -> Self {
        RunKey(v)
    }
}

impl Serialize for RunKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for RunKey {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => {
                RunKey::parse(s).ok_or_else(|| serde::Error::custom(format!("bad run key `{s}`")))
            }
            other => Err(serde::Error::expected("run key string", other)),
        }
    }
}

/// One list per evaluation axis; an empty list means "the base
/// experiment's value" (a single implicit cell on that axis).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepAxes {
    /// Pool sizes `|K|` (overrides `experiment.num_clients`).
    #[serde(default)]
    pub clients: Vec<usize>,
    /// Root seeds (overrides `experiment.seed`).
    #[serde(default)]
    pub seeds: Vec<u64>,
    /// Client-selection strategies.
    #[serde(default)]
    pub selection: Vec<SelectionStrategy>,
    /// Update-collection strategies (`None` inherits the experiment's).
    #[serde(default)]
    pub aggregation: Vec<Option<AggregationMode>>,
    /// Local-training variants.
    #[serde(default)]
    pub local: Vec<LocalTraining>,
    /// Update codecs (crossed with [`SweepAxes::link`] into the comm
    /// axis; both empty keeps the experiment's communication setup).
    #[serde(default)]
    pub codec: Vec<CodecSpec>,
    /// Link models (crossed with [`SweepAxes::codec`]).
    #[serde(default)]
    pub link: Vec<LinkModel>,
    /// Execution backends / thread counts (result-invariant).
    #[serde(default)]
    pub backend: Vec<ExecBackend>,
}

impl SweepAxes {
    /// The comm-axis cells this axes block implies: `None` (inherit)
    /// when neither codec nor link is swept, otherwise the codec × link
    /// cross product with the usual defaults filling the missing side.
    fn comm_cells(&self) -> Vec<Option<CommSpec>> {
        if self.codec.is_empty() && self.link.is_empty() {
            return vec![None];
        }
        let codecs = non_empty(&self.codec, CodecSpec::default());
        let links = non_empty(&self.link, LinkModel::default());
        let mut cells = Vec::with_capacity(codecs.len() * links.len());
        for &codec in &codecs {
            for &link in &links {
                cells.push(Some(CommSpec {
                    codec,
                    link,
                    hierarchy: None,
                }));
            }
        }
        cells
    }

    /// Number of cells the cross product yields (before key dedup).
    #[must_use]
    pub fn cells(&self) -> usize {
        let len = |n: usize| n.max(1);
        len(self.clients.len())
            * len(self.seeds.len())
            * len(self.selection.len())
            * len(self.aggregation.len())
            * len(self.local.len())
            * self.comm_cells().len()
            * len(self.backend.len())
    }
}

fn non_empty<T: Clone>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        axis.to_vec()
    }
}

/// A declarative multi-run sweep: one base experiment plus per-axis
/// value lists, serializable as the `tifl sweep` input format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Sweep label, recorded in the store's summary.
    #[serde(default)]
    pub name: Option<String>,
    /// The base experiment every cell starts from.
    pub experiment: ExperimentConfig,
    /// Round-count override applied to every cell.
    #[serde(default)]
    pub rounds: Option<u64>,
    /// The axes to cross.
    #[serde(default)]
    pub axes: SweepAxes,
}

/// One expanded cell: its position in canonical order, its stable key,
/// and the self-contained request to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedRun {
    /// Position in the deduplicated canonical expansion.
    pub index: usize,
    /// Stable content key (artifact identity).
    pub key: RunKey,
    /// The run to execute.
    pub request: RunRequest,
}

impl SweepManifest {
    /// A manifest over `experiment` with no axes (a single cell).
    #[must_use]
    pub fn new(experiment: ExperimentConfig) -> Self {
        Self {
            name: None,
            experiment,
            rounds: None,
            axes: SweepAxes::default(),
        }
    }

    /// Expand the axes into keyed runs, in canonical order:
    /// clients ▸ seeds ▸ selection ▸ aggregation ▸ local ▸
    /// codec ▸ link ▸ backend, each axis iterated in manifest order
    /// (outer to inner). Cells whose fully-resolved request duplicates
    /// an earlier one (identical [`RunKey`]) are dropped — running the
    /// same cell twice would race on one artifact and waste the work.
    ///
    /// The order is a pure function of the manifest, so two expansions
    /// (today, after a restart, on another host) schedule and label the
    /// runs identically — the contract the resume path and the
    /// determinism tests pin.
    #[must_use]
    pub fn expand(&self) -> Vec<KeyedRun> {
        let clients = non_empty(&self.axes.clients, self.experiment.num_clients);
        let seeds: Vec<Option<u64>> = if self.axes.seeds.is_empty() {
            vec![None]
        } else {
            self.axes.seeds.iter().map(|&s| Some(s)).collect()
        };
        let selections = non_empty(&self.axes.selection, SelectionStrategy::default());
        let aggregations = non_empty(&self.axes.aggregation, None);
        let locals = non_empty(&self.axes.local, LocalTraining::default());
        let comms = self.axes.comm_cells();
        let backends = non_empty(&self.axes.backend, ExecBackend::default());

        let mut runs: Vec<KeyedRun> = Vec::with_capacity(self.axes.cells());
        let mut seen = std::collections::HashSet::new();
        for &num_clients in &clients {
            let mut experiment = self.experiment.clone();
            experiment.num_clients = num_clients;
            for &seed in &seeds {
                for selection in &selections {
                    for &aggregation in &aggregations {
                        for &local in &locals {
                            for &comm in &comms {
                                for &backend in &backends {
                                    let request = RunRequest {
                                        experiment: experiment.clone(),
                                        rounds: self.rounds,
                                        seed,
                                        clients_per_round: None,
                                        spec: RunSpec {
                                            selection: selection.clone(),
                                            aggregation,
                                            local,
                                            reprofile_every: None,
                                            label: None,
                                            backend,
                                            comm,
                                        },
                                    };
                                    let key = RunKey::of(&request);
                                    if seen.insert(key) {
                                        runs.push(KeyedRun {
                                            index: runs.len(),
                                            key,
                                            request,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        runs
    }
}

/// Shard `runs` for cross-host splitting: slice `index` of `count`
/// keeps every run whose canonical position is `index` modulo `count`.
/// The slices are disjoint, cover the expansion, and are stable —
/// every host expanding the same manifest computes the same partition,
/// so disjoint shard stores merge (`tifl merge`) into exactly the
/// unsharded sweep's store. Runs keep their canonical `index`, so
/// artifacts and progress events are host-independent.
///
/// # Panics
/// Panics when `count` is 0 or `index >= count` (a malformed
/// `--shard i/n` should fail loudly, not silently run nothing).
#[must_use]
pub fn shard_runs(runs: &[KeyedRun], index: usize, count: usize) -> Vec<KeyedRun> {
    assert!(count > 0, "shard count must be positive");
    assert!(
        index < count,
        "shard index {index} out of range for {count} shards"
    );
    runs.iter()
        .filter(|r| r.index % count == index)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_core::policy::Policy;

    fn base() -> ExperimentConfig {
        ExperimentConfig::tiny(60)
    }

    #[test]
    fn empty_axes_expand_to_one_default_cell() {
        let manifest = SweepManifest::new(base());
        let runs = manifest.expand();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].index, 0);
        assert_eq!(runs[0].request.spec, RunSpec::default());
        assert_eq!(runs[0].request.seed, None);
        assert_eq!(runs[0].request.experiment, base());
    }

    #[test]
    fn expansion_order_is_canonical() {
        let mut manifest = SweepManifest::new(base());
        manifest.axes.seeds = vec![1, 2];
        manifest.axes.selection = vec![
            SelectionStrategy::Vanilla,
            SelectionStrategy::TierPolicy {
                policy: Policy::uniform(5),
            },
        ];
        manifest.axes.backend = vec![
            ExecBackend::Lockstep,
            ExecBackend::EventDriven { threads: 2 },
        ];
        let runs = manifest.expand();
        assert_eq!(runs.len(), 8);
        // seeds outermost, then selection, backend innermost.
        let labels: Vec<(Option<u64>, String, ExecBackend)> = runs
            .iter()
            .map(|r| {
                (
                    r.request.seed,
                    r.request.spec.display_label(),
                    r.request.spec.backend,
                )
            })
            .collect();
        assert_eq!(labels[0].0, Some(1));
        assert_eq!(labels[3].0, Some(1));
        assert_eq!(labels[4].0, Some(2));
        assert_eq!(labels[0].1, "vanilla");
        assert_eq!(labels[2].1, "uniform");
        assert_eq!(labels[0].2, ExecBackend::Lockstep);
        assert_eq!(labels[1].2, ExecBackend::EventDriven { threads: 2 });
        // Expansion is a pure function of the manifest.
        assert_eq!(runs, manifest.expand());
    }

    #[test]
    fn clients_axis_overrides_the_pool_size() {
        let mut manifest = SweepManifest::new(base());
        manifest.axes.clients = vec![10, 20];
        let runs = manifest.expand();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].request.experiment.num_clients, 10);
        assert_eq!(runs[1].request.experiment.num_clients, 20);
        assert_ne!(runs[0].key, runs[1].key);
    }

    #[test]
    fn comm_axes_cross_and_default_each_other() {
        let mut manifest = SweepManifest::new(base());
        manifest.axes.codec = vec![CodecSpec::Identity, CodecSpec::QuantizeI8];
        let runs = manifest.expand();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0].request.spec.comm,
            Some(CommSpec::default()),
            "missing link axis defaults to ClusterDefault"
        );
        assert_eq!(
            runs[1].request.spec.comm.map(|c| c.codec),
            Some(CodecSpec::QuantizeI8)
        );
        // No comm axes at all: inherit (comm = None).
        let plain = SweepManifest::new(base());
        assert_eq!(plain.expand()[0].request.spec.comm, None);
    }

    #[test]
    fn duplicate_cells_are_deduplicated_by_key() {
        let mut manifest = SweepManifest::new(base());
        manifest.axes.seeds = vec![7, 7, 8];
        let runs = manifest.expand();
        assert_eq!(runs.len(), 2, "duplicate seed collapses to one cell");
        assert_eq!(runs.iter().map(|r| r.index).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn keys_resolve_scalar_overrides() {
        // A seed override and the same seed baked into the experiment
        // are the same run, so they get the same key.
        let via_override = RunRequest {
            experiment: ExperimentConfig::tiny(1),
            rounds: None,
            seed: Some(9),
            clients_per_round: None,
            spec: RunSpec::default(),
        };
        let baked = RunRequest {
            experiment: ExperimentConfig::tiny(9),
            rounds: None,
            seed: None,
            clients_per_round: None,
            spec: RunSpec::default(),
        };
        assert_eq!(RunKey::of(&via_override), RunKey::of(&baked));
        assert_ne!(
            RunKey::of(&via_override),
            RunKey::of(&via_override).0.wrapping_add(1).into()
        );
    }

    #[test]
    fn keys_render_and_parse_as_hex() {
        let key = RunKey(0x0123_4567_89ab_cdef_0f0f_0f0f_0f0f_0f0f);
        let hex = key.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(RunKey::parse(&hex), Some(key));
        assert_eq!(RunKey::parse("xyz"), None);
        let json = serde_json::to_string(&key).expect("serializes");
        let back: RunKey = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, key);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = SweepManifest::new(base());
        manifest.name = Some("demo".into());
        manifest.rounds = Some(6);
        manifest.axes.seeds = vec![1, 2];
        manifest.axes.selection = vec![SelectionStrategy::Adaptive { config: None }];
        manifest.axes.aggregation = vec![None, Some(AggregationMode::FirstK { factor: 1.5 })];
        let json = serde_json::to_string_pretty(&manifest).expect("serializes");
        let back: SweepManifest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, manifest);
        // Sparse manifests parse with defaulted axes.
        let sparse: SweepManifest = serde_json::from_str(&format!(
            "{{\"experiment\": {}}}",
            serde_json::to_string(&base()).unwrap()
        ))
        .expect("sparse manifest parses");
        assert_eq!(sparse.axes, SweepAxes::default());
        assert_eq!(sparse.expand().len(), 1);
    }

    #[test]
    fn shards_partition_the_expansion() {
        let mut manifest = SweepManifest::new(base());
        manifest.axes.seeds = vec![1, 2, 3];
        manifest.axes.selection = vec![
            SelectionStrategy::Vanilla,
            SelectionStrategy::Adaptive { config: None },
        ];
        let runs = manifest.expand();
        assert!(runs.len() >= 5, "want a non-trivial expansion");
        for count in 1..=4 {
            let shards: Vec<Vec<KeyedRun>> =
                (0..count).map(|i| shard_runs(&runs, i, count)).collect();
            // Disjoint and covering: concatenating the shards in
            // index order reproduces the expansion exactly.
            let mut merged: Vec<KeyedRun> = shards.into_iter().flatten().collect();
            merged.sort_by_key(|r| r.index);
            assert_eq!(merged, runs, "count={count}");
        }
        // Canonical indices survive sharding (artifact identity is
        // host-independent).
        let shard = shard_runs(&runs, 1, 2);
        assert!(shard.iter().all(|r| r.index % 2 == 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let _ = shard_runs(&[], 2, 2);
    }
}
