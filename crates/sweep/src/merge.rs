//! Shard-store merging: union several [`RunStore`]s into one, with the
//! determinism audit the byte-stable artifact format makes free.
//!
//! Two hosts that ran disjoint `--shard` slices of one manifest each
//! hold half the artifacts; `tifl merge` unions them. Because artifact
//! bytes are a pure function of the request, any key present in more
//! than one input must be **byte-identical** everywhere — a mismatch
//! is corruption or a cross-host determinism bug, and the merge
//! reports it (or refuses outright under `--deny`). Artifacts are
//! copied verbatim ([`RunStore::write_bytes`]), so the merged store is
//! byte-identical to an uninterrupted unsharded sweep over the same
//! manifest. The `sweep_summary.json` sidecars are deliberately *not*
//! merged: wall-clock lives there and is per-execution by design.

use crate::manifest::RunKey;
use crate::store::RunStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One key whose bytes disagree between inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeConflict {
    /// The conflicted key.
    pub key: RunKey,
    /// The input whose copy the merge kept (first seen, in argument
    /// order).
    pub kept: String,
    /// The input holding the disagreeing copy.
    pub conflicting: String,
}

/// The machine-readable result of one merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeReport {
    /// The output store directory.
    pub out: String,
    /// The input store directories, in argument order.
    pub inputs: Vec<String>,
    /// Distinct keys across all inputs.
    pub unioned: usize,
    /// Artifacts copied into the output.
    pub copied: usize,
    /// Keys present in more than one input (all byte-compared).
    pub overlaps: usize,
    /// Byte-level disagreements between inputs (or with a pre-existing
    /// output artifact).
    pub conflicts: Vec<MergeConflict>,
    /// Per-artifact validation findings (an input artifact that fails
    /// its own integrity checks is reported and still copied, so the
    /// merge loses nothing — `tifl audit` the output to triage).
    pub findings: Vec<String>,
}

impl MergeReport {
    /// Whether every overlap byte-matched and every artifact verified.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.findings.is_empty()
    }

    /// Human-readable rendering (the `tifl merge` default output).
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "merged {} stores into {}: {} keys ({} copied, {} overlaps byte-compared)",
            self.inputs.len(),
            self.out,
            self.unioned,
            self.copied,
            self.overlaps
        );
        for c in &self.conflicts {
            let _ = writeln!(
                out,
                "  conflict {}: kept {} copy, {} disagrees",
                c.key, c.kept, c.conflicting
            );
        }
        for f in &self.findings {
            let _ = writeln!(out, "  finding: {f}");
        }
        out
    }
}

/// Union the artifacts of `inputs` into `out`. Every input directory
/// must already exist (a typo'd path is an error, not an empty shard).
/// Overlapping keys are byte-compared across inputs — and against any
/// artifact already in `out`, so re-merging into a populated store is
/// itself audited. On conflict the first-seen copy wins and the
/// conflict is recorded; the caller decides whether that fails the run
/// (`--deny`).
///
/// # Errors
/// Propagates filesystem errors (missing input dir, unreadable
/// artifact, failed write).
pub fn merge_stores(inputs: &[PathBuf], out: &RunStore) -> io::Result<MergeReport> {
    for dir in inputs {
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("input store is not a directory: {}", dir.display()),
            ));
        }
    }

    let display = |dir: &Path| dir.display().to_string();
    let mut conflicts = Vec::new();
    let mut findings = Vec::new();
    // key → (source dir rendered, bytes) of the first-seen copy.
    let mut union: BTreeMap<RunKey, (String, Vec<u8>)> = BTreeMap::new();
    let mut overlaps = 0usize;

    for dir in inputs {
        let store = RunStore::open(dir.clone())?;
        for key in store.keys() {
            let bytes = std::fs::read(store.path_of(key))?;
            if let Err(err) = store.load_checked(key) {
                findings.push(err.to_string());
            }
            match union.get(&key) {
                None => {
                    union.insert(key, (display(dir), bytes));
                }
                Some((kept, existing)) => {
                    overlaps += 1;
                    if *existing != bytes {
                        conflicts.push(MergeConflict {
                            key,
                            kept: kept.clone(),
                            conflicting: display(dir),
                        });
                    }
                }
            }
        }
    }

    let mut copied = 0usize;
    for (key, (source, bytes)) in &union {
        let target = out.path_of(*key);
        if target.exists() {
            overlaps += 1;
            let existing = std::fs::read(&target)?;
            if existing != *bytes {
                conflicts.push(MergeConflict {
                    key: *key,
                    kept: display(out.dir()),
                    conflicting: source.clone(),
                });
            }
            continue;
        }
        out.write_bytes(*key, bytes)?;
        copied += 1;
    }

    Ok(MergeReport {
        out: display(out.dir()),
        inputs: inputs.iter().map(|d| display(d)).collect(),
        unioned: union.len(),
        copied,
        overlaps,
        conflicts,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RunArtifact;
    use tifl_core::experiment::ExperimentConfig;
    use tifl_core::runner::{RunRequest, RunSpec};
    use tifl_fl::{RoundReport, TrainingReport};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tifl-merge-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(seed: u64) -> RunRequest {
        let mut experiment = ExperimentConfig::tiny(seed);
        experiment.rounds = 2;
        RunRequest {
            experiment,
            rounds: None,
            seed: None,
            clients_per_round: None,
            spec: RunSpec::default(),
        }
    }

    fn report() -> TrainingReport {
        TrainingReport {
            policy: "vanilla".into(),
            rounds: (0..2)
                .map(|r| RoundReport {
                    round: r,
                    time: (r + 1) as f64,
                    latency: 1.0,
                    selected: vec![0],
                    aggregated: vec![0],
                    accuracy: Some(0.5),
                    loss: Some(1.0),
                    bytes_down: 10,
                    bytes_up: 10,
                })
                .collect(),
        }
    }

    fn write_run(store: &RunStore, seed: u64) -> RunKey {
        let request = request(seed);
        let key = RunKey::of(&request);
        store
            .write(&RunArtifact::new(key, request, report()))
            .expect("writes");
        key
    }

    #[test]
    fn disjoint_stores_union_cleanly() {
        let (a_dir, b_dir, out_dir) = (tmp_dir("dis-a"), tmp_dir("dis-b"), tmp_dir("dis-out"));
        let a = RunStore::open(&a_dir).expect("opens");
        let b = RunStore::open(&b_dir).expect("opens");
        let ka = write_run(&a, 1);
        let kb = write_run(&b, 2);
        let out = RunStore::open(&out_dir).expect("opens");
        let report = merge_stores(&[a_dir.clone(), b_dir.clone()], &out).expect("merges");
        assert!(report.is_clean());
        assert_eq!(report.unioned, 2);
        assert_eq!(report.copied, 2);
        assert_eq!(report.overlaps, 0);
        // Byte-identical to the sources.
        for (key, src) in [(ka, &a), (kb, &b)] {
            assert_eq!(
                std::fs::read(out.path_of(key)).expect("read"),
                std::fs::read(src.path_of(key)).expect("read")
            );
        }
        for dir in [a_dir, b_dir, out_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn overlaps_byte_compare_and_conflicts_are_named() {
        let (a_dir, b_dir, out_dir) = (tmp_dir("con-a"), tmp_dir("con-b"), tmp_dir("con-out"));
        let a = RunStore::open(&a_dir).expect("opens");
        let b = RunStore::open(&b_dir).expect("opens");
        let key = write_run(&a, 1);
        write_run(&b, 1); // same key, identical bytes
        let out = RunStore::open(&out_dir).expect("opens");
        let clean = merge_stores(&[a_dir.clone(), b_dir.clone()], &out).expect("merges");
        assert!(clean.is_clean());
        assert_eq!(clean.overlaps, 1);
        assert_eq!(clean.copied, 1);

        // Perturb b's copy in a digest-invisible way (host_parallelism
        // is recorded per host, not covered by the report chain) so the
        // bytes differ while both artifacts still verify.
        let path = b.path_of(key);
        let text = std::fs::read_to_string(&path).expect("read");
        let mut value: serde::Value = serde_json::from_str(&text).expect("parses");
        if let serde::Value::Object(fields) = &mut value {
            for (name, v) in fields.iter_mut() {
                if name == "host_parallelism" {
                    *v = serde::Value::Number(serde::Number::U64(1_000_000));
                }
            }
        }
        let edited = serde_json::to_string_pretty(&value).expect("renders");
        assert_ne!(edited.trim_end(), text.trim_end(), "perturbation must hit");
        std::fs::write(&path, edited).expect("write");
        let _ = std::fs::remove_dir_all(&out_dir);
        let out = RunStore::open(&out_dir).expect("opens");
        let conflicted = merge_stores(&[a_dir.clone(), b_dir.clone()], &out).expect("merges");
        assert_eq!(conflicted.conflicts.len(), 1);
        assert_eq!(conflicted.conflicts[0].key, key);
        assert!(!conflicted.is_clean());
        // First-seen copy (a's) wins.
        assert_eq!(
            std::fs::read(out.path_of(key)).expect("read"),
            std::fs::read(a.path_of(key)).expect("read")
        );
        for dir in [a_dir, b_dir, out_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn missing_input_dir_is_an_error() {
        let out_dir = tmp_dir("missing-out");
        let out = RunStore::open(&out_dir).expect("opens");
        let missing = tmp_dir("missing-input");
        assert!(merge_stores(&[missing], &out).is_err());
        let _ = std::fs::remove_dir_all(out_dir);
    }
}
