//! FedAvg aggregation (Algorithm 1, line 8).

use std::sync::mpsc;
use tifl_comm::{CodecSpec, EncodeScratch, EncodedUpdate, ErrorFeedback};
use tifl_tensor::ParamVec;

/// One client's contribution to a round: updated weights plus the local
/// training-set size used as the aggregation weight (`s_c` in Alg. 1).
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Client id (diagnostics only; not used in the average).
    pub client: usize,
    /// Updated local weights `w^c_{r+1}`.
    pub params: ParamVec,
    /// Local training-set size `s_c`.
    pub samples: usize,
}

/// FedAvg: `w_{r+1} = Σ_c w^c * s_c / Σ_c s_c`.
///
/// # Panics
/// Panics if `updates` is empty or all sample counts are zero.
#[must_use]
pub fn aggregate_fedavg(updates: &[ClientUpdate]) -> ParamVec {
    assert!(!updates.is_empty(), "aggregate_fedavg with no updates");
    let refs: Vec<(&ParamVec, f32)> = updates
        .iter()
        .map(|u| (&u.params, u.samples as f32))
        .collect();
    ParamVec::weighted_mean_ref(&refs)
}

/// Streaming FedAvg: folds client updates into a running weighted sum
/// one at a time, holding only O(model) state instead of buffering
/// every update of the round (O(|selected| × model)).
///
/// Bit-for-bit equivalence with the batch path is guaranteed *when the
/// updates are folded in the same order* `aggregate_fedavg` would see
/// them: [`ParamVec::weighted_mean_ref`] first sums the total weight in
/// item order (as `f64` over the `f32` weights), then accumulates
/// `out += (w_i / total) as f32 · v_i` per item. This type performs the
/// identical sequence of float operations — the total weight is
/// supplied up front (it is known from the round plan before any
/// training finishes), each [`StreamingFold::fold`] is one `axpy` with
/// the same coefficient, and floating-point addition at every
/// coordinate happens in the same order. Executors that receive updates
/// out of order must re-order them (see `tifl_core::exec`) before
/// folding.
#[derive(Debug)]
pub struct StreamingFold {
    acc: ParamVec,
    total: f64,
    expected: usize,
    folded: usize,
    /// Accumulated coefficients of delta-encoded folds (TopK payloads):
    /// each such update contributes `coeff * (base + delta)`, and the
    /// `coeff * base` parts are deferred into one axpy at
    /// [`StreamingFold::finish_against`] instead of one dense pass per
    /// client.
    base_coeff: f32,
}

impl StreamingFold {
    /// Prepare a fold of `weights.len()` updates over models of
    /// `param_len` parameters. `weights` must be the aggregation weights
    /// (`s_c` as `f32`) in the canonical fold order; the total is summed
    /// exactly as the batch path sums it.
    ///
    /// # Panics
    /// Panics if updates are expected but all weights are zero
    /// (mirroring `weighted_mean`'s "zero total weight").
    #[must_use]
    pub fn new(param_len: usize, weights: &[f32]) -> Self {
        Self::with_acc(ParamVec::zeros(param_len), weights)
    }

    /// As [`StreamingFold::new`], accumulating into a caller-supplied
    /// buffer (zeroed here) instead of a fresh allocation — the
    /// allocation-free form fed from `EncodeScratch::take_zeroed` /
    /// recycled global models on the per-round hot path.
    ///
    /// # Panics
    /// Panics if updates are expected but all weights are zero
    /// (mirroring `weighted_mean`'s "zero total weight").
    #[must_use]
    pub fn with_acc(mut acc: ParamVec, weights: &[f32]) -> Self {
        let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        assert!(
            weights.is_empty() || total > 0.0,
            "weighted_mean with zero total weight"
        );
        acc.0.fill(0.0);
        Self {
            acc,
            total,
            expected: weights.len(),
            folded: 0,
            base_coeff: 0.0,
        }
    }

    /// Fold the next update (callers supply them in the order the
    /// weights were given to [`StreamingFold::new`]).
    ///
    /// # Panics
    /// Panics past the expected count or on a length mismatch.
    pub fn fold(&mut self, update: &ClientUpdate) {
        assert!(self.folded < self.expected, "fold past the expected count");
        assert_eq!(
            update.params.len(),
            self.acc.len(),
            "weighted_mean length mismatch"
        );
        let coeff = (f64::from(update.samples as f32) / self.total) as f32;
        self.acc.axpy(coeff, &update.params);
        self.folded += 1;
    }

    /// Updates folded so far.
    #[must_use]
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Updates this fold was sized for.
    #[must_use]
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Fold the next update from its encoded wire form, without
    /// materialising a dense decoded vector: dense payloads axpy
    /// directly (bit-for-bit the [`StreamingFold::fold`] sequence for
    /// the Identity codec), quantized payloads dequantize inside the
    /// axpy loop, and sparse-delta payloads touch only their kept
    /// coordinates while their base contribution is deferred to
    /// [`StreamingFold::finish_against`].
    ///
    /// `samples` is the update's aggregation weight (`s_c`), exactly as
    /// [`ClientUpdate::samples`] feeds [`StreamingFold::fold`].
    ///
    /// # Panics
    /// Panics past the expected count or on a length mismatch.
    pub fn fold_encoded(&mut self, update: &EncodedUpdate, samples: usize) {
        assert!(self.folded < self.expected, "fold past the expected count");
        assert_eq!(
            update.param_len(),
            self.acc.len(),
            "weighted_mean length mismatch"
        );
        let coeff = (f64::from(samples as f32) / self.total) as f32;
        update.axpy_into(coeff, &mut self.acc);
        if update.is_delta() {
            self.base_coeff += coeff;
        }
        self.folded += 1;
    }

    /// Encode-and-fold one client contribution on the zero-allocation
    /// path: the update is encoded with error-feedback compensation
    /// (lossy codecs carry the client's residual; `Identity` folds the
    /// raw weights directly, bit-for-bit [`StreamingFold::fold`]), the
    /// payload folds via [`StreamingFold::fold_encoded`], and its
    /// buffers return to `scratch` immediately.
    ///
    /// # Panics
    /// Panics past the expected count or on a length mismatch.
    pub fn fold_compensated(
        &mut self,
        codec: &CodecSpec,
        update: &ClientUpdate,
        base: &ParamVec,
        feedback: &mut ErrorFeedback,
        scratch: &mut EncodeScratch,
    ) {
        if matches!(codec, CodecSpec::Identity) {
            // Lossless: skip the wire-format copy entirely.
            self.fold(update);
            return;
        }
        let enc = feedback.encode(*codec, update.client, &update.params, base, scratch);
        self.fold_encoded(&enc, update.samples);
        scratch.recycle(enc);
    }

    /// The aggregated model, or `None` when the fold expected no updates
    /// (an all-dropout round leaves the global model untouched).
    ///
    /// # Panics
    /// Panics if updates are still outstanding, or if any folded update
    /// was delta-encoded (those need [`StreamingFold::finish_against`]).
    #[must_use]
    pub fn finish(self) -> Option<ParamVec> {
        assert_eq!(
            self.base_coeff, 0.0,
            "delta-encoded folds need finish_against(base)"
        );
        assert_eq!(
            self.folded, self.expected,
            "finish with updates outstanding"
        );
        (self.expected > 0).then_some(self.acc)
    }

    /// As [`StreamingFold::finish`], resolving any deferred delta bases
    /// against `base` (the global model the deltas were encoded
    /// against) in a single axpy. With no delta-encoded folds this is
    /// bit-for-bit [`StreamingFold::finish`].
    ///
    /// # Panics
    /// Panics if updates are still outstanding or on a length mismatch.
    #[must_use]
    pub fn finish_against(mut self, base: &ParamVec) -> Option<ParamVec> {
        assert_eq!(
            self.folded, self.expected,
            "finish with updates outstanding"
        );
        if self.base_coeff != 0.0 {
            self.acc.axpy(self.base_coeff, base);
        }
        (self.expected > 0).then_some(self.acc)
    }
}

/// Channel-based collector for updates produced by concurrently running
/// clients.
///
/// The paper's architecture has clients push trained weights to the
/// aggregator as they finish; this mirrors that shape: workers hold a
/// [`UpdateSender`] and the aggregator drains the channel once all
/// selected clients have reported (synchronous FL waits for every
/// response, §3.1).
pub struct UpdateCollector {
    rx: mpsc::Receiver<ClientUpdate>,
}

/// Sending half handed to each in-flight client.
#[derive(Clone)]
pub struct UpdateSender {
    tx: mpsc::Sender<ClientUpdate>,
}

impl UpdateSender {
    /// Deliver a finished update to the aggregator.
    ///
    /// # Panics
    /// Panics if the collector was dropped (protocol bug).
    pub fn send(&self, update: ClientUpdate) {
        self.tx
            .send(update)
            .expect("aggregator dropped while clients in flight");
    }
}

impl UpdateCollector {
    /// Create a collector and its sending half.
    #[must_use]
    pub fn new() -> (Self, UpdateSender) {
        let (tx, rx) = mpsc::channel();
        (Self { rx }, UpdateSender { tx })
    }

    /// Wait for exactly `expected` updates and aggregate them.
    ///
    /// Updates are sorted by client id before averaging so the result is
    /// independent of arrival order (floating-point addition is not
    /// associative; determinism requires a canonical order).
    ///
    /// # Panics
    /// Panics if the channel closes before `expected` updates arrive.
    #[must_use]
    pub fn collect_and_aggregate(&self, expected: usize) -> ParamVec {
        let mut updates: Vec<ClientUpdate> = (0..expected)
            .map(|_| {
                self.rx
                    .recv()
                    .expect("client worker dropped before reporting")
            })
            .collect();
        updates.sort_by_key(|u| u.client);
        aggregate_fedavg(&updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, vals: Vec<f32>, samples: usize) -> ClientUpdate {
        ClientUpdate {
            client,
            params: ParamVec(vals),
            samples,
        }
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let g = aggregate_fedavg(&[upd(0, vec![0.0], 100), upd(1, vec![10.0], 300)]);
        assert!((g.0[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn fedavg_identity_for_single_client() {
        let g = aggregate_fedavg(&[upd(0, vec![1.0, 2.0], 42)]);
        assert_eq!(g.0, vec![1.0, 2.0]);
    }

    #[test]
    fn fedavg_equal_updates_is_fixed_point() {
        let w = vec![0.5, -1.5, 3.0];
        let g = aggregate_fedavg(&[
            upd(0, w.clone(), 10),
            upd(1, w.clone(), 500),
            upd(2, w.clone(), 3),
        ]);
        for (a, b) in g.0.iter().zip(&w) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn fedavg_rejects_empty() {
        let _ = aggregate_fedavg(&[]);
    }

    #[test]
    fn streaming_fold_is_bitwise_equal_to_batch() {
        // The event-driven engine's contract: folding updates one at a
        // time in canonical order reproduces aggregate_fedavg exactly —
        // not approximately.
        let updates: Vec<ClientUpdate> = (0..7)
            .map(|i| {
                let vals: Vec<f32> = (0..13)
                    .map(|j| ((i * 31 + j * 7) as f32).sin() * 3.7)
                    .collect();
                upd(i, vals, 10 + i * 17)
            })
            .collect();
        let batch = aggregate_fedavg(&updates);
        let weights: Vec<f32> = updates.iter().map(|u| u.samples as f32).collect();
        let mut fold = StreamingFold::new(13, &weights);
        for u in &updates {
            fold.fold(u);
        }
        let streamed = fold.finish().expect("non-empty fold");
        assert_eq!(streamed, batch, "must match bit for bit");
    }

    #[test]
    fn encoded_identity_fold_is_bitwise_equal_to_plain_fold() {
        use tifl_comm::CodecSpec;
        let updates: Vec<ClientUpdate> = (0..5)
            .map(|i| {
                let vals: Vec<f32> = (0..9).map(|j| ((i * 13 + j * 3) as f32).cos()).collect();
                upd(i, vals, 20 + i * 7)
            })
            .collect();
        let weights: Vec<f32> = updates.iter().map(|u| u.samples as f32).collect();
        let base = ParamVec(vec![0.5; 9]);

        let mut plain = StreamingFold::new(9, &weights);
        let mut encoded = StreamingFold::new(9, &weights);
        for u in &updates {
            plain.fold(u);
            encoded.fold_encoded(&CodecSpec::Identity.encode(&u.params, &base), u.samples);
        }
        let a = plain.finish().expect("non-empty");
        let b = encoded.finish_against(&base).expect("non-empty");
        assert_eq!(a, b, "identity encoded fold must match bit for bit");
    }

    #[test]
    fn sparse_delta_fold_defers_one_base_axpy() {
        use tifl_comm::CodecSpec;
        // Folding top-k(1.0) deltas (lossless sparsification) must equal
        // decoding each update densely and folding: both are
        // Σ coeff_i (base + delta_i) with the base applied once.
        let base = ParamVec((0..16).map(|j| (j as f32 * 0.21).sin()).collect());
        let updates: Vec<ClientUpdate> = (0..4)
            .map(|i| {
                let vals: Vec<f32> = base
                    .as_slice()
                    .iter()
                    .enumerate()
                    .map(|(j, &b)| b + ((i * 7 + j) as f32 * 0.1).cos() * 0.3)
                    .collect();
                upd(i, vals, 10 + i)
            })
            .collect();
        let weights: Vec<f32> = updates.iter().map(|u| u.samples as f32).collect();
        let spec = CodecSpec::TopK { frac: 1.0 };

        let mut fold = StreamingFold::new(16, &weights);
        for u in &updates {
            fold.fold_encoded(&spec.encode(&u.params, &base), u.samples);
        }
        let streamed = fold.finish_against(&base).expect("non-empty");

        // Reference: dense decode then batch mean.
        let decoded: Vec<ClientUpdate> = updates
            .iter()
            .map(|u| ClientUpdate {
                client: u.client,
                params: spec.encode(&u.params, &base).decode(&base),
                samples: u.samples,
            })
            .collect();
        let batch = aggregate_fedavg(&decoded);
        for (a, b) in streamed.as_slice().iter().zip(batch.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "finish_against")]
    fn plain_finish_rejects_delta_folds() {
        use tifl_comm::CodecSpec;
        let base = ParamVec(vec![1.0; 4]);
        let u = upd(0, vec![2.0, 1.0, 1.0, 1.0], 5);
        let mut fold = StreamingFold::new(4, &[5.0]);
        fold.fold_encoded(&CodecSpec::TopK { frac: 0.5 }.encode(&u.params, &base), 5);
        let _ = fold.finish();
    }

    #[test]
    fn streaming_fold_empty_leaves_global_untouched() {
        let fold = StreamingFold::new(4, &[]);
        assert_eq!(fold.finish(), None);
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn streaming_fold_rejects_zero_weights() {
        let _ = StreamingFold::new(4, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "updates outstanding")]
    fn streaming_fold_rejects_early_finish() {
        let fold = StreamingFold::new(1, &[1.0]);
        let _ = fold.finish();
    }

    #[test]
    fn collector_is_order_independent() {
        let run = |order: &[usize]| {
            let (col, tx) = UpdateCollector::new();
            let updates = [
                upd(0, vec![1.0], 1),
                upd(1, vec![2.0], 2),
                upd(2, vec![4.0], 3),
            ];
            for &i in order {
                tx.send(updates[i].clone());
            }
            col.collect_and_aggregate(3)
        };
        assert_eq!(run(&[0, 1, 2]), run(&[2, 0, 1]));
    }

    #[test]
    fn collector_works_across_threads() {
        let (col, tx) = UpdateCollector::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    tx.send(upd(i, vec![i as f32], 10));
                })
            })
            .collect();
        let g = col.collect_and_aggregate(4);
        for h in handles {
            h.join().unwrap();
        }
        assert!((g.0[0] - 1.5).abs() < 1e-6);
    }
}
