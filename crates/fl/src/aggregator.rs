//! FedAvg aggregation (Algorithm 1, line 8).

use std::sync::mpsc;
use tifl_tensor::ParamVec;

/// One client's contribution to a round: updated weights plus the local
/// training-set size used as the aggregation weight (`s_c` in Alg. 1).
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Client id (diagnostics only; not used in the average).
    pub client: usize,
    /// Updated local weights `w^c_{r+1}`.
    pub params: ParamVec,
    /// Local training-set size `s_c`.
    pub samples: usize,
}

/// FedAvg: `w_{r+1} = Σ_c w^c * s_c / Σ_c s_c`.
///
/// # Panics
/// Panics if `updates` is empty or all sample counts are zero.
#[must_use]
pub fn aggregate_fedavg(updates: &[ClientUpdate]) -> ParamVec {
    assert!(!updates.is_empty(), "aggregate_fedavg with no updates");
    let refs: Vec<(&ParamVec, f32)> = updates
        .iter()
        .map(|u| (&u.params, u.samples as f32))
        .collect();
    ParamVec::weighted_mean_ref(&refs)
}

/// Channel-based collector for updates produced by concurrently running
/// clients.
///
/// The paper's architecture has clients push trained weights to the
/// aggregator as they finish; this mirrors that shape: workers hold a
/// [`UpdateSender`] and the aggregator drains the channel once all
/// selected clients have reported (synchronous FL waits for every
/// response, §3.1).
pub struct UpdateCollector {
    rx: mpsc::Receiver<ClientUpdate>,
}

/// Sending half handed to each in-flight client.
#[derive(Clone)]
pub struct UpdateSender {
    tx: mpsc::Sender<ClientUpdate>,
}

impl UpdateSender {
    /// Deliver a finished update to the aggregator.
    ///
    /// # Panics
    /// Panics if the collector was dropped (protocol bug).
    pub fn send(&self, update: ClientUpdate) {
        self.tx
            .send(update)
            .expect("aggregator dropped while clients in flight");
    }
}

impl UpdateCollector {
    /// Create a collector and its sending half.
    #[must_use]
    pub fn new() -> (Self, UpdateSender) {
        let (tx, rx) = mpsc::channel();
        (Self { rx }, UpdateSender { tx })
    }

    /// Wait for exactly `expected` updates and aggregate them.
    ///
    /// Updates are sorted by client id before averaging so the result is
    /// independent of arrival order (floating-point addition is not
    /// associative; determinism requires a canonical order).
    ///
    /// # Panics
    /// Panics if the channel closes before `expected` updates arrive.
    #[must_use]
    pub fn collect_and_aggregate(&self, expected: usize) -> ParamVec {
        let mut updates: Vec<ClientUpdate> = (0..expected)
            .map(|_| {
                self.rx
                    .recv()
                    .expect("client worker dropped before reporting")
            })
            .collect();
        updates.sort_by_key(|u| u.client);
        aggregate_fedavg(&updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, vals: Vec<f32>, samples: usize) -> ClientUpdate {
        ClientUpdate {
            client,
            params: ParamVec(vals),
            samples,
        }
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let g = aggregate_fedavg(&[upd(0, vec![0.0], 100), upd(1, vec![10.0], 300)]);
        assert!((g.0[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn fedavg_identity_for_single_client() {
        let g = aggregate_fedavg(&[upd(0, vec![1.0, 2.0], 42)]);
        assert_eq!(g.0, vec![1.0, 2.0]);
    }

    #[test]
    fn fedavg_equal_updates_is_fixed_point() {
        let w = vec![0.5, -1.5, 3.0];
        let g = aggregate_fedavg(&[
            upd(0, w.clone(), 10),
            upd(1, w.clone(), 500),
            upd(2, w.clone(), 3),
        ]);
        for (a, b) in g.0.iter().zip(&w) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn fedavg_rejects_empty() {
        let _ = aggregate_fedavg(&[]);
    }

    #[test]
    fn collector_is_order_independent() {
        let run = |order: &[usize]| {
            let (col, tx) = UpdateCollector::new();
            let updates = [
                upd(0, vec![1.0], 1),
                upd(1, vec![2.0], 2),
                upd(2, vec![4.0], 3),
            ];
            for &i in order {
                tx.send(updates[i].clone());
            }
            col.collect_and_aggregate(3)
        };
        assert_eq!(run(&[0, 1, 2]), run(&[2, 0, 1]));
    }

    #[test]
    fn collector_works_across_threads() {
        let (col, tx) = UpdateCollector::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    tx.send(upd(i, vec![i as f32], 10));
                })
            })
            .collect();
        let g = col.collect_and_aggregate(4);
        for h in handles {
            h.join().unwrap();
        }
        assert!((g.0[0] - 1.5).abs() < 1e-6);
    }
}
