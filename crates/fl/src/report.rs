//! Per-round and per-run training records, plus their content digests
//! (the per-round digest chain behind `tifl diff` / `tifl audit`).

use serde::{Deserialize, Serialize};
use tifl_obs::diff::{DiffReport, DiffSide, Divergence, FieldDelta};
use tifl_obs::digest::{Digest128, DigestChain};

/// What happened in one global training round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Virtual time at the *end* of the round (seconds).
    pub time: f64,
    /// This round's latency `max_i L_i` (seconds).
    pub latency: f64,
    /// Selected client ids (everyone asked to train).
    pub selected: Vec<usize>,
    /// Clients whose updates were aggregated. Equals the responders
    /// among `selected` under `WaitAll`; under over-selection it is the
    /// first `|C|` responders and the rest are discarded.
    pub aggregated: Vec<usize>,
    /// Global test accuracy measured after aggregation (if evaluated
    /// this round).
    pub accuracy: Option<f64>,
    /// Global test loss (if evaluated this round).
    pub loss: Option<f32>,
    /// Bytes shipped server → clients this round (the full-precision
    /// global model to every selected client).
    #[serde(default)]
    pub bytes_down: u64,
    /// Bytes shipped clients → server this round (one encoded update
    /// per aggregated contributor; equals the dense size when no codec
    /// is active).
    #[serde(default)]
    pub bytes_up: u64,
}

impl RoundReport {
    /// The round's 128-bit content digest: FNV-1a over its canonical
    /// JSON, covering every recorded field. Two rounds digest equal iff
    /// they serialize equal — the unit the per-run digest chain folds.
    #[must_use]
    pub fn content_digest(&self) -> Digest128 {
        Digest128::of_value(self)
    }

    /// Field-level deltas against `other` — one entry per recorded
    /// field whose rendering differs (`tifl diff`'s per-round detail).
    #[must_use]
    pub fn field_deltas(&self, other: &RoundReport) -> Vec<FieldDelta> {
        fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
            v.map_or_else(|| "-".to_string(), |v| v.to_string())
        }
        fn cohort(ids: &[usize]) -> String {
            const SHOWN: usize = 8;
            let head: Vec<String> = ids.iter().take(SHOWN).map(ToString::to_string).collect();
            let ellipsis = if ids.len() > SHOWN { ", …" } else { "" };
            format!("n={} [{}{ellipsis}]", ids.len(), head.join(", "))
        }
        let mut deltas = Vec::new();
        let mut push = |field: &str, a: String, b: String| {
            if a != b {
                deltas.push(FieldDelta {
                    field: field.to_string(),
                    a,
                    b,
                });
            }
        };
        push("round", self.round.to_string(), other.round.to_string());
        push("time", self.time.to_string(), other.time.to_string());
        push(
            "latency",
            self.latency.to_string(),
            other.latency.to_string(),
        );
        push("selected", cohort(&self.selected), cohort(&other.selected));
        push(
            "aggregated",
            cohort(&self.aggregated),
            cohort(&other.aggregated),
        );
        push("accuracy", opt(self.accuracy), opt(other.accuracy));
        push("loss", opt(self.loss), opt(other.loss));
        push(
            "bytes_up",
            self.bytes_up.to_string(),
            other.bytes_up.to_string(),
        );
        push(
            "bytes_down",
            self.bytes_down.to_string(),
            other.bytes_down.to_string(),
        );
        deltas
    }
}

/// A full training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Policy name that produced the run.
    pub policy: String,
    /// Per-round records, in order.
    pub rounds: Vec<RoundReport>,
}

/// A compact, serializable digest of one run — what sweep summaries
/// and CLI listings record without shipping the full per-round series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Policy label of the run.
    pub policy: String,
    /// Number of completed rounds.
    pub rounds: u64,
    /// Total virtual training time in seconds (0 for an empty run).
    pub total_time: f64,
    /// Last measured global accuracy.
    pub final_accuracy: f64,
    /// Best measured global accuracy.
    pub best_accuracy: f64,
    /// Total bytes shipped clients → server.
    pub bytes_up: u64,
    /// Total bytes shipped server → clients.
    pub bytes_down: u64,
}

impl TrainingReport {
    /// The run's [`ReportSummary`] (total time is 0 for an empty run,
    /// unlike the panicking [`TrainingReport::total_time`]).
    #[must_use]
    pub fn summary(&self) -> ReportSummary {
        ReportSummary {
            policy: self.policy.clone(),
            rounds: self.rounds.len() as u64,
            total_time: self.rounds.last().map_or(0.0, |r| r.time),
            final_accuracy: self.final_accuracy(),
            best_accuracy: self.best_accuracy(),
            bytes_up: self.total_bytes_up(),
            bytes_down: self.total_bytes_down(),
        }
    }
    /// Total virtual training time (end of last round), in seconds.
    ///
    /// # Panics
    /// Panics on an empty report.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.rounds.last().expect("empty report").time
    }

    /// Last measured global accuracy.
    #[must_use]
    pub fn final_accuracy(&self) -> f64 {
        self.rounds
            .iter()
            .rev()
            .find_map(|r| r.accuracy)
            .unwrap_or(0.0)
    }

    /// Best measured global accuracy.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        self.rounds
            .iter()
            .filter_map(|r| r.accuracy)
            .fold(0.0, f64::max)
    }

    /// `(round, accuracy)` series for accuracy-over-rounds plots
    /// (Figs. 3c/d, 4, 5, 8, 9b).
    #[must_use]
    pub fn accuracy_over_rounds(&self) -> Vec<(u64, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.round, a)))
            .collect()
    }

    /// `(virtual time, accuracy)` series for accuracy-over-time plots
    /// (Figs. 3e/f, 6e/f).
    #[must_use]
    pub fn accuracy_over_time(&self) -> Vec<(f64, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.time, a)))
            .collect()
    }

    /// First virtual time at which accuracy reached `target`, if ever.
    #[must_use]
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.accuracy.is_some_and(|a| a >= target))
            .map(|r| r.time)
    }

    /// Accuracy at the largest evaluated time `<= t` (for fixed-budget
    /// comparisons like Fig. 3e at a given wall-clock cut).
    #[must_use]
    pub fn accuracy_at_time(&self, t: f64) -> Option<f64> {
        self.rounds
            .iter()
            .take_while(|r| r.time <= t)
            .filter_map(|r| r.accuracy)
            .last()
    }

    /// How often each client was selected across the run.
    #[must_use]
    pub fn selection_counts(&self, num_clients: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_clients];
        for r in &self.rounds {
            for &c in &r.selected {
                counts[c] += 1;
            }
        }
        counts
    }

    /// How often each client actually contributed an aggregated update.
    #[must_use]
    pub fn contribution_counts(&self, num_clients: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_clients];
        for r in &self.rounds {
            for &c in &r.aggregated {
                counts[c] += 1;
            }
        }
        counts
    }

    /// Fraction of selected trainings whose updates were discarded
    /// (non-zero only under over-selection or dropouts) — the wasted
    /// client work the paper criticises in §2.
    #[must_use]
    pub fn discarded_work_fraction(&self) -> f64 {
        let selected: usize = self.rounds.iter().map(|r| r.selected.len()).sum();
        let aggregated: usize = self.rounds.iter().map(|r| r.aggregated.len()).sum();
        if selected == 0 {
            return 0.0;
        }
        1.0 - aggregated as f64 / selected as f64
    }

    /// Total bytes shipped clients → server across the run.
    #[must_use]
    pub fn total_bytes_up(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_up).sum()
    }

    /// Total bytes shipped server → clients across the run.
    #[must_use]
    pub fn total_bytes_down(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_down).sum()
    }

    /// One content digest per round, in round order (the digest-chain
    /// input).
    #[must_use]
    pub fn round_digests(&self) -> Vec<Digest128> {
        self.rounds
            .iter()
            .map(RoundReport::content_digest)
            .collect()
    }

    /// The per-round chain heads: `chain_heads()[k]` commits to rounds
    /// `0..=k` in order. Prefix-stable, so a diff walking two runs'
    /// heads localizes the first divergent round without re-running.
    #[must_use]
    pub fn chain_heads(&self) -> Vec<Digest128> {
        DigestChain::heads(self.rounds.iter().map(RoundReport::content_digest))
    }

    /// The digest-chain head over the whole run — the integrity field
    /// sweep artifacts embed, recomputable from the report alone (so
    /// artifacts written before the field existed still verify).
    #[must_use]
    pub fn digest_chain(&self) -> Digest128 {
        DigestChain::of(self.rounds.iter().map(RoundReport::content_digest))
    }

    /// Compare against `other` via the digest chains: localize the
    /// first divergent round (O(rounds), no re-running) and attach its
    /// field-level deltas. `name_*` label the operands in the output
    /// (file paths in the CLI).
    #[must_use]
    pub fn diff(&self, name_a: &str, other: &TrainingReport, name_b: &str) -> DiffReport {
        let digests_a = self.round_digests();
        let digests_b = other.round_digests();
        let heads_a = DigestChain::heads(digests_a.iter().copied());
        let heads_b = DigestChain::heads(digests_b.iter().copied());
        let divergence = match tifl_obs::diff::first_divergence(&digests_a, &digests_b) {
            Some(i) => Divergence::DivergedAt {
                round: i as u64,
                chain_a: heads_a[i],
                chain_b: heads_b[i],
                deltas: self.rounds[i].field_deltas(&other.rounds[i]),
            },
            None if digests_a.len() == digests_b.len() => Divergence::Identical,
            None => Divergence::Truncated {
                shared_rounds: digests_a.len().min(digests_b.len()) as u64,
            },
        };
        let side = |name: &str, report: &TrainingReport| DiffSide {
            name: name.to_string(),
            policy: report.policy.clone(),
            rounds: report.rounds.len() as u64,
            chain_head: report.digest_chain(),
        };
        DiffReport {
            a: side(name_a, self),
            b: side(name_b, other),
            divergence,
        }
    }

    /// Mean per-round latency in seconds.
    #[must_use]
    pub fn mean_round_latency(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        // tifl-lint: allow(float-reduce-order) — fixed-order fold: rounds are appended in round order and iterated sequentially
        self.rounds.iter().map(|r| r.latency).sum::<f64>() / self.rounds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TrainingReport {
        TrainingReport {
            policy: "test".into(),
            rounds: vec![
                RoundReport {
                    round: 0,
                    time: 10.0,
                    latency: 10.0,
                    selected: vec![0, 1],
                    aggregated: Vec::new(),
                    accuracy: Some(0.3),
                    loss: Some(2.0),
                    bytes_down: 200,
                    bytes_up: 100,
                },
                RoundReport {
                    round: 1,
                    time: 25.0,
                    latency: 15.0,
                    selected: vec![1, 2],
                    aggregated: Vec::new(),
                    accuracy: None,
                    loss: None,
                    bytes_down: 200,
                    bytes_up: 50,
                },
                RoundReport {
                    round: 2,
                    time: 30.0,
                    latency: 5.0,
                    selected: vec![0, 2],
                    aggregated: Vec::new(),
                    accuracy: Some(0.7),
                    loss: Some(1.0),
                    bytes_down: 200,
                    bytes_up: 100,
                },
            ],
        }
    }

    #[test]
    fn totals_and_finals() {
        let r = report();
        assert_eq!(r.total_time(), 30.0);
        assert_eq!(r.final_accuracy(), 0.7);
        assert_eq!(r.best_accuracy(), 0.7);
        assert!((r.mean_round_latency() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_digests_the_run() {
        let r = report();
        let s = r.summary();
        assert_eq!(s.policy, "test");
        assert_eq!(s.rounds, 3);
        assert_eq!(s.total_time, 30.0);
        assert_eq!(s.final_accuracy, 0.7);
        assert_eq!(s.bytes_up, 250);
        assert_eq!(s.bytes_down, 600);
        // Empty runs digest without panicking.
        let empty = TrainingReport {
            policy: "empty".into(),
            rounds: Vec::new(),
        };
        assert_eq!(empty.summary().total_time, 0.0);
        assert_eq!(empty.summary().rounds, 0);
    }

    #[test]
    fn byte_totals_accumulate() {
        let r = report();
        assert_eq!(r.total_bytes_down(), 600);
        assert_eq!(r.total_bytes_up(), 250);
    }

    #[test]
    fn series_skip_unevaluated_rounds() {
        let r = report();
        assert_eq!(r.accuracy_over_rounds(), vec![(0, 0.3), (2, 0.7)]);
        assert_eq!(r.accuracy_over_time(), vec![(10.0, 0.3), (30.0, 0.7)]);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = report();
        assert_eq!(r.time_to_accuracy(0.5), Some(30.0));
        assert_eq!(r.time_to_accuracy(0.2), Some(10.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn accuracy_at_time_respects_budget() {
        let r = report();
        assert_eq!(r.accuracy_at_time(5.0), None);
        assert_eq!(r.accuracy_at_time(12.0), Some(0.3));
        assert_eq!(r.accuracy_at_time(100.0), Some(0.7));
    }

    #[test]
    fn selection_counts_accumulate() {
        let r = report();
        assert_eq!(r.selection_counts(3), vec![2, 2, 2]);
    }

    #[test]
    fn digest_chain_commits_to_every_round_in_order() {
        let r = report();
        assert_eq!(r.round_digests().len(), 3);
        assert_eq!(r.chain_heads().len(), 3);
        assert_eq!(r.chain_heads()[2], r.digest_chain());
        // Equal reports chain equal; any single-field edit changes the
        // head; the chain over a prefix matches the intermediate head.
        let same = report();
        assert_eq!(same.digest_chain(), r.digest_chain());
        let mut edited = report();
        edited.rounds[1].bytes_up += 1;
        assert_ne!(edited.digest_chain(), r.digest_chain());
        let mut prefix = report();
        prefix.rounds.truncate(2);
        assert_eq!(prefix.digest_chain(), r.chain_heads()[1]);
        // Swapping two rounds changes the head even though the digest
        // multiset is unchanged.
        let mut swapped = report();
        swapped.rounds.swap(0, 2);
        assert_ne!(swapped.digest_chain(), r.digest_chain());
    }

    #[test]
    fn diff_localizes_the_first_divergent_round() {
        let r = report();
        assert!(r.diff("a", &report(), "b").identical());

        let mut perturbed = report();
        perturbed.rounds[1].accuracy = Some(0.99);
        let d = r.diff("a", &perturbed, "b");
        match &d.divergence {
            Divergence::DivergedAt { round, deltas, .. } => {
                assert_eq!(*round, 1);
                assert_eq!(deltas.len(), 1);
                assert_eq!(deltas[0].field, "accuracy");
                assert_eq!(deltas[0].a, "-");
                assert_eq!(deltas[0].b, "0.99");
            }
            other => panic!("expected DivergedAt, got {other:?}"),
        }

        let mut truncated = report();
        truncated.rounds.truncate(1);
        assert_eq!(
            r.diff("a", &truncated, "b").divergence,
            Divergence::Truncated { shared_rounds: 1 }
        );
    }
}
