//! Hierarchical master–child aggregation (§3.1, §4.1).
//!
//! Google's production FL architecture shards clients over *child*
//! aggregators whose partial aggregates a *master* combines, so a single
//! box never has to absorb millions of updates. The paper's prototype
//! simplifies to one aggregator but notes that "multiple layers of
//! aggregator can be easily integrated into TiFL"; this module supplies
//! that integration:
//!
//! * [`AggregationTree::aggregate`] — numerically faithful two-level
//!   FedAvg: each child computes a sample-weighted partial mean, the
//!   master combines partials weighted by their child's total samples.
//!   The result equals flat FedAvg up to floating-point rounding (tested
//!   to 1e-5) regardless of how updates are sharded.
//! * [`AggregationTree::aggregation_latency`] — the simulated wall time
//!   of the tree: children work in parallel (their costs take a max),
//!   the master adds its own combine cost on top.

use crate::aggregator::ClientUpdate;
use serde::{Deserialize, Serialize};
use tifl_tensor::ParamVec;

/// Shape and cost parameters of the aggregation hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationTree {
    /// Maximum client updates handled per child aggregator.
    pub fan_out: usize,
    /// Cost to absorb one update at any node, seconds per megabyte.
    pub sec_per_update_mb: f64,
}

impl AggregationTree {
    /// A tree with the given fan-out and a default absorb cost of
    /// 5 ms/MB (a 1.6 Gbit/s aggregation plane).
    ///
    /// # Panics
    /// Panics if `fan_out == 0`.
    #[must_use]
    pub fn with_fan_out(fan_out: usize) -> Self {
        Self::with_plane(fan_out, 2.0e8)
    }

    /// A tree over an aggregation plane of `plane_bps` bytes/s: the
    /// absorb cost per node is exactly
    /// [`tifl_comm::link::transfer_secs`] over that bandwidth, so the
    /// hierarchy's combine latency is expressed in the same
    /// `CommCost` units as every client transfer (a
    /// `tifl_comm::HierarchySpec` maps onto this constructor).
    ///
    /// # Panics
    /// Panics if `fan_out == 0` or `plane_bps` is not positive.
    #[must_use]
    pub fn with_plane(fan_out: usize, plane_bps: f64) -> Self {
        assert!(fan_out > 0, "fan-out must be positive");
        assert!(plane_bps > 0.0, "bandwidth must be positive");
        Self {
            fan_out,
            // cost(bytes) = bytes / 1e6 * sec_per_update_mb
            //             = transfer_secs(bytes, plane_bps).
            sec_per_update_mb: 1.0e6 / plane_bps,
        }
    }

    /// Number of child aggregators needed for `updates` updates.
    #[must_use]
    pub fn num_children(&self, updates: usize) -> usize {
        updates.div_ceil(self.fan_out)
    }

    /// Two-level FedAvg over `updates`.
    ///
    /// Each chunk of `fan_out` updates is reduced to a partial
    /// (sample-weighted) mean carrying its total sample count; the
    /// master then takes the weighted mean of partials. Equivalent to
    /// flat [`crate::aggregator::aggregate_fedavg`] because weighted
    /// means compose: `mean(mean(A) w_A, mean(B) w_B) = mean(A ∪ B)`.
    ///
    /// # Panics
    /// Panics if `updates` is empty.
    #[must_use]
    pub fn aggregate(&self, updates: &[ClientUpdate]) -> ParamVec {
        assert!(!updates.is_empty(), "aggregate with no updates");
        let partials: Vec<(ParamVec, f32)> = updates
            .chunks(self.fan_out)
            .map(|chunk| {
                let total: usize = chunk.iter().map(|u| u.samples).sum();
                let refs: Vec<(&ParamVec, f32)> = chunk
                    .iter()
                    .map(|u| (&u.params, u.samples as f32))
                    .collect();
                (ParamVec::weighted_mean_ref(&refs), total as f32)
            })
            .collect();
        let refs: Vec<(&ParamVec, f32)> = partials.iter().map(|(p, w)| (p, *w)).collect();
        ParamVec::weighted_mean_ref(&refs)
    }

    /// Simulated latency of aggregating `updates` updates of
    /// `update_bytes` each: children run in parallel, the master absorbs
    /// one partial per child.
    #[must_use]
    pub fn aggregation_latency(&self, updates: usize, update_bytes: u64) -> f64 {
        self.aggregation_latency_encoded(updates, update_bytes, update_bytes)
    }

    /// As [`AggregationTree::aggregation_latency`] with compressed
    /// client uploads: children absorb `client_bytes` (the encoded wire
    /// size) per update, the master absorbs one *dense* partial of
    /// `partial_bytes` per child (children decode-and-fold, so their
    /// partial aggregates are full precision). This is how an update
    /// codec shrinks the child layer of the hierarchy but not the
    /// master hop.
    #[must_use]
    pub fn aggregation_latency_encoded(
        &self,
        updates: usize,
        client_bytes: u64,
        partial_bytes: u64,
    ) -> f64 {
        if updates == 0 {
            return 0.0;
        }
        let children = self.num_children(updates);
        // The busiest child absorbs up to `fan_out` updates.
        let busiest = updates.min(self.fan_out);
        let child_cost = busiest as f64 * client_bytes as f64 / 1.0e6 * self.sec_per_update_mb;
        let master_cost = children as f64 * partial_bytes as f64 / 1.0e6 * self.sec_per_update_mb;
        child_cost + master_cost
    }

    /// Latency of the flat single-aggregator design, for comparison.
    #[must_use]
    pub fn flat_latency(&self, updates: usize, update_bytes: u64) -> f64 {
        updates as f64 * update_bytes as f64 / 1.0e6 * self.sec_per_update_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::aggregate_fedavg;

    fn updates(n: usize, dim: usize) -> Vec<ClientUpdate> {
        (0..n)
            .map(|c| ClientUpdate {
                client: c,
                params: ParamVec(
                    (0..dim)
                        .map(|i| ((c * 31 + i * 7) % 100) as f32 / 50.0 - 1.0)
                        .collect(),
                ),
                samples: 50 + (c * 13) % 200,
            })
            .collect()
    }

    #[test]
    fn tree_matches_flat_fedavg() {
        let ups = updates(37, 16);
        let flat = aggregate_fedavg(&ups);
        for fan_out in [1usize, 2, 5, 10, 37, 100] {
            let tree = AggregationTree::with_fan_out(fan_out);
            let hier = tree.aggregate(&ups);
            for (a, b) in hier.as_slice().iter().zip(flat.as_slice()) {
                assert!((a - b).abs() < 1e-5, "fan_out {fan_out}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn single_chunk_is_plain_fedavg() {
        let ups = updates(5, 8);
        let tree = AggregationTree::with_fan_out(10);
        assert_eq!(tree.num_children(5), 1);
        let hier = tree.aggregate(&ups);
        let flat = aggregate_fedavg(&ups);
        for (a, b) in hier.as_slice().iter().zip(flat.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn child_count_rounds_up() {
        let tree = AggregationTree::with_fan_out(10);
        assert_eq!(tree.num_children(1), 1);
        assert_eq!(tree.num_children(10), 1);
        assert_eq!(tree.num_children(11), 2);
        assert_eq!(tree.num_children(95), 10);
    }

    #[test]
    fn hierarchy_beats_flat_at_scale() {
        let tree = AggregationTree::with_fan_out(100);
        let bytes = 40_000;
        // 10k clients: flat absorbs 10k updates serially; the tree's
        // critical path is 100 (child) + 100 (master).
        let flat = tree.flat_latency(10_000, bytes);
        let hier = tree.aggregation_latency(10_000, bytes);
        assert!(
            hier < flat / 10.0,
            "hierarchy {hier} should be far below flat {flat}"
        );
    }

    #[test]
    fn small_rounds_prefer_flat() {
        // With |C| = 5 updates the tree only adds the master hop — the
        // paper's justification for the single-aggregator prototype.
        let tree = AggregationTree::with_fan_out(100);
        let flat = tree.flat_latency(5, 40_000);
        let hier = tree.aggregation_latency(5, 40_000);
        assert!(hier >= flat, "tiny rounds gain nothing from the tree");
    }

    #[test]
    #[should_panic(expected = "fan-out must be positive")]
    fn rejects_zero_fan_out() {
        let _ = AggregationTree::with_fan_out(0);
    }

    #[test]
    fn plane_costs_are_comm_transfer_seconds() {
        // One update through a 1-child tree: child absorbs it, master
        // absorbs the partial — two transfers over the plane, priced
        // exactly like any other link in the comm model.
        let bps = 5.0e7;
        let tree = AggregationTree::with_plane(10, bps);
        let bytes = 123_456u64;
        let expect = 2.0 * tifl_comm::link::transfer_secs(bytes, bps);
        assert!((tree.aggregation_latency(1, bytes) - expect).abs() < 1e-12);
    }

    #[test]
    fn encoded_uploads_shrink_the_child_layer_only() {
        let tree = AggregationTree::with_plane(100, 1.0e6);
        let dense = 400_000u64;
        let encoded = 100_000u64;
        let full = tree.aggregation_latency(100, dense);
        let compressed = tree.aggregation_latency_encoded(100, encoded, dense);
        // Child layer shrinks 4x, master hop (1 partial) unchanged.
        let expect = 100.0 * 0.1 + 1.0 * 0.4;
        assert!((compressed - expect).abs() < 1e-9, "got {compressed}");
        assert!(compressed < full);
    }
}
