//! Round timelines: a discrete-event trace of one training round.
//!
//! The round engine only needs `max_i L_i` (Eq. 1), but understanding
//! *why* a round is slow — who straggled, how long the aggregator sat
//! idle — needs the full event order. [`RoundTimeline::build`] replays a
//! round through the simulator's event queue and returns the ordered
//! trace: dispatches at `t = 0`, completions at each client's response
//! latency, aggregation after the last contributor.

use crate::hierarchy::AggregationTree;
use serde::{Deserialize, Serialize};
use tifl_sim::event::EventQueue;

/// One entry in a round's event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimelineEvent {
    /// The aggregator dispatched the training task to a client.
    Dispatch {
        /// Client id.
        client: usize,
    },
    /// A client's update arrived at the aggregator.
    Complete {
        /// Client id.
        client: usize,
    },
    /// A selected client never responded (timeout / dropout).
    TimedOut {
        /// Client id.
        client: usize,
    },
    /// An in-flight client was cancelled before completing — the
    /// over-selection engine cuts stragglers loose the moment the
    /// target count of updates has arrived (their virtual deadline).
    Cancelled {
        /// Client id.
        client: usize,
    },
    /// Aggregation finished; the round is over.
    RoundEnd,
}

/// A fully ordered trace of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTimeline {
    /// `(virtual time, event)` pairs in chronological order.
    pub events: Vec<(f64, TimelineEvent)>,
}

impl RoundTimeline {
    /// Replay a round. `responses[i] = (client, Some(latency) | None)`;
    /// non-responders are charged `tmax`. If `tree` is given, the
    /// aggregation cost of the hierarchical design is appended after the
    /// last completion; otherwise aggregation is instantaneous.
    ///
    /// # Panics
    /// Panics if `responses` is empty.
    #[must_use]
    pub fn build(
        responses: &[(usize, Option<f64>)],
        tmax: f64,
        tree: Option<(AggregationTree, u64)>,
    ) -> Self {
        assert!(!responses.is_empty(), "timeline of an empty round");
        let mut queue = EventQueue::new();
        let mut completions = 0usize;
        for &(client, latency) in responses {
            queue.schedule(0.0, TimelineEvent::Dispatch { client });
            match latency {
                Some(l) => {
                    queue.schedule(l.min(tmax), TimelineEvent::Complete { client });
                    completions += 1;
                }
                None => {
                    queue.schedule(tmax, TimelineEvent::TimedOut { client });
                }
            }
        }

        let mut events = Vec::with_capacity(responses.len() * 2 + 1);
        let mut last = 0.0f64;
        while let Some(e) = queue.pop() {
            last = e.time;
            events.push((e.time, e.payload));
        }
        let agg_cost = tree.map_or(0.0, |(t, bytes)| t.aggregation_latency(completions, bytes));
        events.push((last + agg_cost, TimelineEvent::RoundEnd));
        Self { events }
    }

    /// Virtual time at which the round ended.
    ///
    /// # Panics
    /// Never — a timeline always contains `RoundEnd`.
    #[must_use]
    pub fn round_end(&self) -> f64 {
        self.events.last().expect("RoundEnd always present").0
    }

    /// Time the aggregator spent waiting between the first and last
    /// client completion — the idle window stragglers create.
    #[must_use]
    pub fn straggler_wait(&self) -> f64 {
        let completions: Vec<f64> = self
            .events
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    TimelineEvent::Complete { .. }
                        | TimelineEvent::TimedOut { .. }
                        | TimelineEvent::Cancelled { .. }
                )
            })
            .map(|&(t, _)| t)
            .collect();
        match (completions.first(), completions.last()) {
            (Some(first), Some(last)) => last - first,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_time_ordered() {
        let t = RoundTimeline::build(
            &[(0, Some(3.0)), (1, Some(1.0)), (2, Some(2.0))],
            100.0,
            None,
        );
        for w in t.events.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {w:?}");
        }
        assert_eq!(t.round_end(), 3.0);
    }

    #[test]
    fn dispatches_precede_completions() {
        let t = RoundTimeline::build(&[(7, Some(0.5))], 100.0, None);
        assert_eq!(t.events[0], (0.0, TimelineEvent::Dispatch { client: 7 }));
        assert_eq!(t.events[1], (0.5, TimelineEvent::Complete { client: 7 }));
    }

    #[test]
    fn timeouts_charged_tmax() {
        let t = RoundTimeline::build(&[(0, Some(1.0)), (1, None)], 50.0, None);
        assert_eq!(t.round_end(), 50.0);
        assert!(t
            .events
            .iter()
            .any(|(time, e)| *time == 50.0 && matches!(e, TimelineEvent::TimedOut { client: 1 })));
    }

    #[test]
    fn straggler_wait_measures_completion_spread() {
        let t = RoundTimeline::build(
            &[(0, Some(1.0)), (1, Some(9.0)), (2, Some(2.0))],
            100.0,
            None,
        );
        assert!((t.straggler_wait() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_tree_extends_round() {
        let tree = AggregationTree::with_fan_out(10);
        let t = RoundTimeline::build(
            &[(0, Some(1.0)), (1, Some(2.0))],
            100.0,
            Some((tree, 1_000_000)),
        );
        let expected = 2.0 + tree.aggregation_latency(2, 1_000_000);
        assert!((t.round_end() - expected).abs() < 1e-12);
    }

    #[test]
    fn similar_latencies_have_small_wait() {
        // The tiering pitch in one assert: same-tier clients finish close
        // together, so the aggregator barely waits.
        let same_tier = RoundTimeline::build(
            &[(0, Some(10.0)), (1, Some(10.5)), (2, Some(10.2))],
            100.0,
            None,
        );
        let mixed = RoundTimeline::build(
            &[(0, Some(1.0)), (1, Some(45.0)), (2, Some(4.0))],
            100.0,
            None,
        );
        assert!(same_tier.straggler_wait() < mixed.straggler_wait() / 10.0);
    }
}
