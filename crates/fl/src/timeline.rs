//! Round timelines: a discrete-event trace of one training round.
//!
//! The round engine only needs `max_i L_i` (Eq. 1), but understanding
//! *why* a round is slow — who straggled, how long the aggregator sat
//! idle — needs the full event order. There is exactly one source of
//! that order: [`schedule_plan_events`], the canonical virtual-time
//! schedule of a planned round (dispatches at `t = 0`, completions at
//! each response latency, timeouts at `tmax`, cancellations at the
//! over-selection deadline). [`RoundTimeline::from_plan`] is its thin
//! per-round view, the live engine trace maps it onto
//! `tifl_obs::TraceEvent`s, and [`RoundTimeline::build`] remains for
//! hypothetical what-if replays from raw response lists (it reproduces
//! the same ordering through the simulator's event queue).

use crate::hierarchy::AggregationTree;
use crate::session::RoundPlan;
use serde::{Deserialize, Serialize};
use tifl_sim::event::EventQueue;

/// One entry in a round's event trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimelineEvent {
    /// The aggregator dispatched the training task to a client.
    Dispatch {
        /// Client id.
        client: usize,
    },
    /// A client's update arrived at the aggregator.
    Complete {
        /// Client id.
        client: usize,
    },
    /// A selected client never responded (timeout / dropout).
    TimedOut {
        /// Client id.
        client: usize,
    },
    /// An in-flight client was cancelled before completing — the
    /// over-selection engine cuts stragglers loose the moment the
    /// target count of updates has arrived (their virtual deadline).
    Cancelled {
        /// Client id.
        client: usize,
    },
    /// Aggregation finished; the round is over.
    RoundEnd,
}

/// Populate `out` with the canonical event schedule of a planned
/// synchronous round: `(round-relative time, tiebreak seq, event)`
/// triples sorted by `(time, seq)`.
///
/// This is the single source of event ordering for everything trace-
/// shaped in the workspace — [`RoundTimeline::from_plan`], the live
/// engine trace, and (historically) the event-queue replay — so the
/// ordering rules live here, once:
///
/// * every selected client's `Dispatch` fires at `t = 0`, in
///   selection order;
/// * a responder's `Complete` fires at its response latency — unless
///   over-selection (`first_k`) closed the round without it, in which
///   case it is `Cancelled` at the round deadline (`plan.latency`)
///   instead and its `Complete` never fires;
/// * a non-responder is `TimedOut` at `tmax` (`WaitAll`) or
///   `Cancelled` at the deadline (`first_k`);
/// * `RoundEnd` fires at `plan.latency`, after every same-time event.
///
/// Reuses `out`'s capacity across calls (it is cleared, filled, and
/// sorted in place with no intermediate allocation), so a warm caller
/// traces rounds allocation-free.
pub fn schedule_plan_events(
    plan: &RoundPlan,
    first_k: bool,
    tmax: f64,
    out: &mut Vec<(f64, u32, TimelineEvent)>,
) {
    out.clear();
    for &(client, _) in &plan.responses {
        let seq = out.len() as u32;
        out.push((0.0, seq, TimelineEvent::Dispatch { client }));
    }
    for &(client, latency) in &plan.responses {
        let seq = out.len() as u32;
        match latency {
            Some(l) if !first_k || plan.contributors.contains(&client) => {
                out.push((l, seq, TimelineEvent::Complete { client }));
            }
            // An over-selection straggler: its completion is cancelled
            // below, in deadline order after the in-schedule events.
            Some(_) => {}
            None if first_k => {
                out.push((plan.latency, seq, TimelineEvent::Cancelled { client }));
            }
            None => out.push((tmax, seq, TimelineEvent::TimedOut { client })),
        }
    }
    if first_k {
        for &(client, latency) in &plan.responses {
            if latency.is_some() && !plan.contributors.contains(&client) {
                let seq = out.len() as u32;
                out.push((plan.latency, seq, TimelineEvent::Cancelled { client }));
            }
        }
    }
    let seq = out.len() as u32;
    out.push((plan.latency, seq, TimelineEvent::RoundEnd));
    out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

/// A fully ordered trace of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTimeline {
    /// `(virtual time, event)` pairs in chronological order.
    pub events: Vec<(f64, TimelineEvent)>,
}

impl RoundTimeline {
    /// The timeline of a planned round, derived from the same
    /// canonical schedule the live engine trace emits
    /// ([`schedule_plan_events`]). `first_k` selects the
    /// over-selection semantics (stragglers cancelled at the
    /// deadline); under `WaitAll` pass `false`.
    #[must_use]
    pub fn from_plan(plan: &RoundPlan, first_k: bool, tmax: f64) -> Self {
        let mut scratch = Vec::new();
        schedule_plan_events(plan, first_k, tmax, &mut scratch);
        Self {
            events: scratch.into_iter().map(|(t, _, e)| (t, e)).collect(),
        }
    }
    /// Replay a round. `responses[i] = (client, Some(latency) | None)`;
    /// non-responders are charged `tmax`. If `tree` is given, the
    /// aggregation cost of the hierarchical design is appended after the
    /// last completion; otherwise aggregation is instantaneous.
    ///
    /// # Panics
    /// Panics if `responses` is empty.
    #[must_use]
    pub fn build(
        responses: &[(usize, Option<f64>)],
        tmax: f64,
        tree: Option<(AggregationTree, u64)>,
    ) -> Self {
        assert!(!responses.is_empty(), "timeline of an empty round");
        let mut queue = EventQueue::new();
        let mut completions = 0usize;
        for &(client, latency) in responses {
            queue.schedule(0.0, TimelineEvent::Dispatch { client });
            match latency {
                Some(l) => {
                    queue.schedule(l.min(tmax), TimelineEvent::Complete { client });
                    completions += 1;
                }
                None => {
                    queue.schedule(tmax, TimelineEvent::TimedOut { client });
                }
            }
        }

        let mut events = Vec::with_capacity(responses.len() * 2 + 1);
        let mut last = 0.0f64;
        while let Some(e) = queue.pop() {
            last = e.time;
            events.push((e.time, e.payload));
        }
        let agg_cost = tree.map_or(0.0, |(t, bytes)| t.aggregation_latency(completions, bytes));
        events.push((last + agg_cost, TimelineEvent::RoundEnd));
        Self { events }
    }

    /// Virtual time at which the round ended.
    ///
    /// # Panics
    /// Never — a timeline always contains `RoundEnd`.
    #[must_use]
    pub fn round_end(&self) -> f64 {
        self.events.last().expect("RoundEnd always present").0
    }

    /// Time the aggregator spent waiting between the first and last
    /// client completion — the idle window stragglers create.
    #[must_use]
    pub fn straggler_wait(&self) -> f64 {
        let completions: Vec<f64> = self
            .events
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    TimelineEvent::Complete { .. }
                        | TimelineEvent::TimedOut { .. }
                        | TimelineEvent::Cancelled { .. }
                )
            })
            .map(|&(t, _)| t)
            .collect();
        match (completions.first(), completions.last()) {
            (Some(first), Some(last)) => last - first,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_time_ordered() {
        let t = RoundTimeline::build(
            &[(0, Some(3.0)), (1, Some(1.0)), (2, Some(2.0))],
            100.0,
            None,
        );
        for w in t.events.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {w:?}");
        }
        assert_eq!(t.round_end(), 3.0);
    }

    #[test]
    fn dispatches_precede_completions() {
        let t = RoundTimeline::build(&[(7, Some(0.5))], 100.0, None);
        assert_eq!(t.events[0], (0.0, TimelineEvent::Dispatch { client: 7 }));
        assert_eq!(t.events[1], (0.5, TimelineEvent::Complete { client: 7 }));
    }

    #[test]
    fn timeouts_charged_tmax() {
        let t = RoundTimeline::build(&[(0, Some(1.0)), (1, None)], 50.0, None);
        assert_eq!(t.round_end(), 50.0);
        assert!(t
            .events
            .iter()
            .any(|(time, e)| *time == 50.0 && matches!(e, TimelineEvent::TimedOut { client: 1 })));
    }

    #[test]
    fn straggler_wait_measures_completion_spread() {
        let t = RoundTimeline::build(
            &[(0, Some(1.0)), (1, Some(9.0)), (2, Some(2.0))],
            100.0,
            None,
        );
        assert!((t.straggler_wait() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_tree_extends_round() {
        let tree = AggregationTree::with_fan_out(10);
        let t = RoundTimeline::build(
            &[(0, Some(1.0)), (1, Some(2.0))],
            100.0,
            Some((tree, 1_000_000)),
        );
        let expected = 2.0 + tree.aggregation_latency(2, 1_000_000);
        assert!((t.round_end() - expected).abs() < 1e-12);
    }

    fn plan(
        responses: Vec<(usize, Option<f64>)>,
        contributors: Vec<usize>,
        latency: f64,
    ) -> RoundPlan {
        RoundPlan {
            round: 0,
            selected: responses.iter().map(|&(c, _)| c).collect(),
            responses,
            contributors,
            latency,
        }
    }

    #[test]
    fn wait_all_trace_matches_timeline_shape() {
        let p = plan(vec![(0, Some(2.0)), (1, None)], vec![0], 50.0);
        let t = RoundTimeline::from_plan(&p, false, 50.0);
        assert!(t
            .events
            .iter()
            .any(|(time, e)| *time == 50.0 && matches!(e, TimelineEvent::TimedOut { client: 1 })));
        assert_eq!(t.round_end(), 50.0);
    }

    #[test]
    fn first_k_trace_cancels_stragglers_at_the_deadline() {
        // Three responders, two contribute: the slowest is cancelled at
        // the 2nd-fastest completion time and its Complete never fires.
        let p = plan(
            vec![(0, Some(1.0)), (1, Some(9.0)), (2, Some(2.0))],
            vec![0, 2],
            2.0,
        );
        let t = RoundTimeline::from_plan(&p, true, 100.0);
        assert!(t
            .events
            .iter()
            .any(|(time, e)| *time == 2.0 && matches!(e, TimelineEvent::Cancelled { client: 1 })));
        assert!(
            !t.events
                .iter()
                .any(|(_, e)| matches!(e, TimelineEvent::Complete { client: 1 })),
            "cancelled straggler must not complete: {:?}",
            t.events
        );
        assert_eq!(t.round_end(), 2.0);
    }

    #[test]
    fn first_k_trace_cancels_non_responders_too() {
        let p = plan(vec![(0, Some(1.0)), (1, None)], vec![0], 1.0);
        let t = RoundTimeline::from_plan(&p, true, 100.0);
        assert!(t
            .events
            .iter()
            .any(|(time, e)| *time == 1.0 && matches!(e, TimelineEvent::Cancelled { client: 1 })));
        assert_eq!(t.round_end(), 1.0);
    }

    #[test]
    fn from_plan_matches_the_event_queue_builder_under_wait_all() {
        // The what-if builder replays responses through the simulator's
        // event queue; the plan-derived view must order identically,
        // RoundEnd included (`plan.latency` = max response-or-tmax).
        let responses = vec![(3, Some(4.0)), (1, Some(1.5)), (4, None), (2, Some(1.5))];
        let tmax = 20.0;
        let p = plan(responses.clone(), vec![3, 1, 2], 20.0);
        assert_eq!(
            RoundTimeline::from_plan(&p, false, tmax),
            RoundTimeline::build(&responses, tmax, None)
        );
    }

    #[test]
    fn similar_latencies_have_small_wait() {
        // The tiering pitch in one assert: same-tier clients finish close
        // together, so the aggregator barely waits.
        let same_tier = RoundTimeline::build(
            &[(0, Some(10.0)), (1, Some(10.5)), (2, Some(10.2))],
            100.0,
            None,
        );
        let mixed = RoundTimeline::build(
            &[(0, Some(1.0)), (1, Some(45.0)), (2, Some(4.0))],
            100.0,
            None,
        );
        assert!(same_tier.straggler_wait() < mixed.straggler_wait() / 10.0);
    }
}
