//! Client-side local training (Algorithm 1, `TrainClient`).

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use tifl_data::Dataset;
use tifl_nn::models::ModelSpec;
use tifl_nn::optim::{Optimizer, RmsProp, Sgd};
use tifl_nn::Sequential;
use tifl_tensor::{seed_rng, split_seed, ParamVec};

/// Serialisable optimiser choice (§5: RMSprop for the synthetic
/// datasets, SGD for LEAF/FEMNIST).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Plain SGD.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical momentum.
    SgdMomentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// RMSprop (`rho = 0.9`).
    RmsProp {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerSpec {
    /// Instantiate with the learning rate scaled by `lr_factor`
    /// (per-round decay is applied by the session).
    #[must_use]
    pub fn build(&self, lr_factor: f32) -> Box<dyn Optimizer> {
        match *self {
            OptimizerSpec::Sgd { lr } => Box::new(Sgd::new(lr * lr_factor)),
            OptimizerSpec::SgdMomentum { lr, momentum } => {
                Box::new(Sgd::with_momentum(lr * lr_factor, momentum))
            }
            OptimizerSpec::RmsProp { lr } => Box::new(RmsProp::new(lr * lr_factor)),
        }
    }

    /// Base learning rate.
    #[must_use]
    pub fn base_lr(&self) -> f32 {
        match *self {
            OptimizerSpec::Sgd { lr }
            | OptimizerSpec::SgdMomentum { lr, .. }
            | OptimizerSpec::RmsProp { lr } => lr,
        }
    }
}

/// Local-training hyper-parameters shared by all clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Mini-batch size (paper: 10).
    pub batch_size: usize,
    /// Local epochs per round (paper: 1).
    pub local_epochs: usize,
    /// Optimiser (paper: RMSprop lr 0.01 / SGD lr 0.004 for LEAF).
    pub optimizer: OptimizerSpec,
    /// Multiplicative learning-rate decay applied once per global round
    /// (paper: 0.995).
    pub lr_round_decay: f32,
    /// FedProx proximal coefficient μ (Li et al., the heterogeneity
    /// baseline of §2): each mini-batch step additionally pulls the
    /// local weights toward the round's global weights with strength
    /// `μ‖w − w_global‖²/2`. Zero disables the term (plain FedAvg).
    #[serde(default)]
    pub proximal_mu: f32,
    /// Client-level differential privacy (§4.6): clip the local update
    /// and add Gaussian noise before reporting. `None` disables DP.
    #[serde(default)]
    pub dp: Option<DpNoiseConfig>,
}

/// Clip-and-noise parameters for client-level DP updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpNoiseConfig {
    /// L2 clipping bound on the update `w_local − w_global`.
    pub clip: f32,
    /// Noise multiplier z: Gaussian noise with σ = z · clip is added to
    /// every coordinate of the (clipped) update.
    pub noise_multiplier: f32,
}

impl ClientConfig {
    /// The paper's synthetic-dataset configuration (§5.1): RMSprop,
    /// lr 0.01, decay 0.995, batch 10, 1 local epoch.
    #[must_use]
    pub fn paper_synthetic() -> Self {
        Self {
            batch_size: 10,
            local_epochs: 1,
            optimizer: OptimizerSpec::RmsProp { lr: 0.01 },
            lr_round_decay: 0.995,
            proximal_mu: 0.0,
            dp: None,
        }
    }

    /// The LEAF default (§5.1): SGD, lr 0.004, batch 10.
    #[must_use]
    pub fn paper_leaf() -> Self {
        Self {
            batch_size: 10,
            local_epochs: 1,
            optimizer: OptimizerSpec::Sgd { lr: 0.004 },
            lr_round_decay: 1.0,
            proximal_mu: 0.0,
            dp: None,
        }
    }
}

/// Train the global model on one client's local data for one round.
///
/// * builds a fresh model from `spec`, loads `global` weights;
/// * runs `local_epochs` epochs of mini-batch SGD/RMSprop over a
///   shuffled copy of the local training set;
/// * returns the updated weights.
///
/// Deterministic in `(seed, client, round)`: the shuffle RNG is derived
/// from all three, so parallel execution across clients cannot change
/// results.
#[must_use]
pub fn local_train(
    spec: &ModelSpec,
    global: &ParamVec,
    data: &Dataset,
    config: &ClientConfig,
    round: u64,
    client: usize,
    seed: u64,
) -> ParamVec {
    assert!(!data.is_empty(), "client {client} has no training data");
    // Model seed irrelevant (weights are overwritten) except for dropout
    // streams; derive it from (seed, client, round) so dropout noise
    // differs across rounds.
    let model_seed = split_seed(seed, split_seed(client as u64, round ^ 0xD80F));
    let mut model = spec.build(model_seed);
    model.set_params(global);

    let lr_factor = config.lr_round_decay.powi(round as i32);
    let mut opt = config.optimizer.build(lr_factor);

    let mut shuffle_rng = seed_rng(split_seed(seed, split_seed(client as u64, round)));
    let mut indices: Vec<usize> = (0..data.len()).collect();

    // Hoisted FedProx scratch: the proximal pull runs once per
    // mini-batch, so per-batch `ParamVec` allocations here dominate the
    // training hot path. Both buffers grow once and are reused.
    let mut prox_params = ParamVec::default();
    let mut prox_pull = ParamVec::default();

    for _ in 0..config.local_epochs {
        indices.shuffle(&mut shuffle_rng);
        for batch in indices.chunks(config.batch_size.max(1)) {
            let x = data.x.gather_rows(batch);
            let y: Vec<usize> = batch.iter().map(|&i| data.y[i]).collect();
            let _ = model.train_batch(x, &y, opt.as_mut());
            if config.proximal_mu > 0.0 {
                // FedProx: gradient of μ‖w − w_global‖²/2 is
                // μ(w − w_global); apply it as an extra SGD step at the
                // optimiser's current learning rate.
                model.params_into(&mut prox_params);
                let step = opt.learning_rate() * config.proximal_mu;
                prox_pull.0.clear();
                prox_pull.0.extend_from_slice(prox_params.as_slice());
                prox_pull.axpy(-1.0, global);
                prox_params.axpy(-step, &prox_pull);
                model.set_params(&prox_params);
            }
        }
    }

    let mut params = model.params();
    if let Some(dp) = config.dp {
        apply_dp_noise(
            &mut params,
            global,
            dp,
            split_seed(seed, split_seed(client as u64, round ^ 0xD9)),
        );
    }
    params
}

/// Clip the update `params − global` to L2 norm `dp.clip` and add
/// per-coordinate Gaussian noise with σ = `clip · noise_multiplier`
/// (the Abadi et al. mechanism each client runs locally, §4.6).
fn apply_dp_noise(params: &mut ParamVec, global: &ParamVec, dp: DpNoiseConfig, seed: u64) {
    assert!(dp.clip > 0.0, "DP clip bound must be positive");
    assert!(dp.noise_multiplier >= 0.0, "noise multiplier must be >= 0");
    // Turn `params` into the delta in place; the clipped/noised delta is
    // re-based onto `global` at the end. Same per-element operation order
    // as the old buffer-copy formulation, so results are bit-identical.
    params.axpy(-1.0, global);
    let delta = params;
    let norm = delta
        .as_slice()
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        // tifl-lint: allow(float-reduce-order) — fixed-order fold: sequential slice iteration in f64, same order on every run
        .sum::<f64>()
        .sqrt();
    if norm > f64::from(dp.clip) {
        delta.scale((f64::from(dp.clip) / norm) as f32);
    }
    if dp.noise_multiplier > 0.0 {
        use rand_distr::{Distribution, Normal};
        let sigma = dp.clip * dp.noise_multiplier;
        let normal = Normal::new(0.0f32, sigma).expect("valid normal");
        let mut rng = seed_rng(seed);
        for v in &mut delta.0 {
            *v += normal.sample(&mut rng);
        }
    }
    // delta + 1.0 * global is exact in the multiply, so this matches the
    // old `global + 1.0 * delta` bit for bit (f32 addition commutes).
    delta.axpy(1.0, global);
}

/// Train one client of a federated dataset and package the result as a
/// [`ClientUpdate`] (weights + the training-set size FedAvg weights
/// by). The one canonical construction shared by the lockstep round
/// loop and the event-driven executor — both backends' bit-for-bit
/// equality rests on there being exactly one of these.
///
/// [`ClientUpdate`]: crate::aggregator::ClientUpdate
#[must_use]
pub fn train_update(
    spec: &ModelSpec,
    global: &ParamVec,
    data: &tifl_data::FederatedDataset,
    config: &ClientConfig,
    round: u64,
    client: usize,
    seed: u64,
) -> crate::aggregator::ClientUpdate {
    crate::aggregator::ClientUpdate {
        client,
        params: local_train(
            spec,
            global,
            &data.clients[client].train,
            config,
            round,
            client,
            seed,
        ),
        samples: data.clients[client].train.len(),
    }
}

/// Build a model for evaluation with the given global weights.
#[must_use]
pub fn eval_model(spec: &ModelSpec, global: &ParamVec) -> Sequential {
    let mut model = spec.build(0);
    model.set_params(global);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_data::synth::{Generator, SynthFamily, SynthSpec};

    fn setup() -> (ModelSpec, ParamVec, Dataset) {
        let spec = ModelSpec::Mlp {
            input: 64,
            hidden: 32,
            classes: 10,
        };
        let global = spec.build(1).params();
        let gen = Generator::new(SynthSpec::family(SynthFamily::Mnist), 0);
        let data = gen.generate_uniform(60, 0);
        (spec, global, data)
    }

    #[test]
    fn local_train_changes_weights() {
        let (spec, global, data) = setup();
        let cfg = ClientConfig::paper_synthetic();
        let updated = local_train(&spec, &global, &data, &cfg, 0, 0, 42);
        assert_eq!(updated.len(), global.len());
        assert!(updated.l2_distance(&global) > 1e-4);
    }

    #[test]
    fn local_train_is_deterministic() {
        let (spec, global, data) = setup();
        let cfg = ClientConfig::paper_synthetic();
        let a = local_train(&spec, &global, &data, &cfg, 3, 7, 42);
        let b = local_train(&spec, &global, &data, &cfg, 3, 7, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rounds_shuffle_differently() {
        let (spec, global, data) = setup();
        let cfg = ClientConfig::paper_synthetic();
        let a = local_train(&spec, &global, &data, &cfg, 0, 7, 42);
        let b = local_train(&spec, &global, &data, &cfg, 1, 7, 42);
        assert_ne!(a, b);
    }

    #[test]
    fn local_train_reduces_local_loss() {
        let (spec, global, data) = setup();
        let cfg = ClientConfig {
            local_epochs: 5,
            ..ClientConfig::paper_synthetic()
        };
        let mut before = eval_model(&spec, &global);
        let loss_before = before.evaluate(&data.x, &data.y).loss;
        let updated = local_train(&spec, &global, &data, &cfg, 0, 0, 42);
        let mut after = eval_model(&spec, &updated);
        let loss_after = after.evaluate(&data.x, &data.y).loss;
        assert!(
            loss_after < loss_before,
            "local training did not reduce loss: {loss_before} -> {loss_after}"
        );
    }

    #[test]
    fn lr_decay_shrinks_updates() {
        let (spec, global, data) = setup();
        let mut cfg = ClientConfig::paper_synthetic();
        cfg.optimizer = OptimizerSpec::Sgd { lr: 0.1 };
        cfg.lr_round_decay = 0.5;
        // Same shuffle stream (same round index would be needed), so
        // compare magnitudes over many rounds of decay instead.
        let early = local_train(&spec, &global, &data, &cfg, 0, 0, 42);
        let late = local_train(&spec, &global, &data, &cfg, 20, 0, 42);
        let d_early = early.l2_distance(&global);
        let d_late = late.l2_distance(&global);
        assert!(
            d_late < d_early * 0.1,
            "decay not applied: early {d_early}, late {d_late}"
        );
    }

    #[test]
    fn proximal_term_pulls_toward_global() {
        let (spec, global, data) = setup();
        let plain = ClientConfig::paper_synthetic();
        let prox = ClientConfig {
            proximal_mu: 5.0,
            ..plain
        };
        let w_plain = local_train(&spec, &global, &data, &plain, 0, 0, 42);
        let w_prox = local_train(&spec, &global, &data, &prox, 0, 0, 42);
        assert!(
            w_prox.l2_distance(&global) < w_plain.l2_distance(&global),
            "proximal update ({}) should stay closer to global than plain ({})",
            w_prox.l2_distance(&global),
            w_plain.l2_distance(&global)
        );
    }

    #[test]
    fn proximal_zero_is_plain_fedavg() {
        let (spec, global, data) = setup();
        let plain = ClientConfig::paper_synthetic();
        let prox0 = ClientConfig {
            proximal_mu: 0.0,
            ..plain
        };
        assert_eq!(
            local_train(&spec, &global, &data, &plain, 0, 0, 42),
            local_train(&spec, &global, &data, &prox0, 0, 0, 42)
        );
    }

    #[test]
    fn dp_clipping_bounds_update_norm() {
        let (spec, global, data) = setup();
        let clip = 0.05f32;
        let cfg = ClientConfig {
            dp: Some(DpNoiseConfig {
                clip,
                noise_multiplier: 0.0,
            }),
            ..ClientConfig::paper_synthetic()
        };
        let w = local_train(&spec, &global, &data, &cfg, 0, 0, 42);
        let norm = w.l2_distance(&global);
        assert!(
            norm <= clip * 1.001,
            "update norm {norm} exceeds clip {clip}"
        );
    }

    #[test]
    fn dp_noise_perturbs_updates_deterministically() {
        let (spec, global, data) = setup();
        let noiseless = ClientConfig {
            dp: Some(DpNoiseConfig {
                clip: 1.0,
                noise_multiplier: 0.0,
            }),
            ..ClientConfig::paper_synthetic()
        };
        let noisy = ClientConfig {
            dp: Some(DpNoiseConfig {
                clip: 1.0,
                noise_multiplier: 0.5,
            }),
            ..ClientConfig::paper_synthetic()
        };
        let a = local_train(&spec, &global, &data, &noisy, 0, 0, 42);
        let b = local_train(&spec, &global, &data, &noisy, 0, 0, 42);
        assert_eq!(a, b, "DP noise must be seed-deterministic");
        let clean = local_train(&spec, &global, &data, &noiseless, 0, 0, 42);
        assert_ne!(a, clean, "noise multiplier should perturb the update");
    }

    #[test]
    fn dp_small_updates_pass_unclipped() {
        // With a huge clip bound and zero noise, DP is a no-op.
        let (spec, global, data) = setup();
        let plain = ClientConfig::paper_synthetic();
        let dp = ClientConfig {
            dp: Some(DpNoiseConfig {
                clip: 1e9,
                noise_multiplier: 0.0,
            }),
            ..plain
        };
        let a = local_train(&spec, &global, &data, &plain, 0, 0, 42);
        let b = local_train(&spec, &global, &data, &dp, 0, 0, 42);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn optimizer_spec_builds_expected_lr() {
        let s = OptimizerSpec::RmsProp { lr: 0.01 };
        let opt = s.build(0.5);
        assert!((opt.learning_rate() - 0.005).abs() < 1e-9);
        assert!((s.base_lr() - 0.01).abs() < 1e-9);
    }
}
