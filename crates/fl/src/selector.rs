//! Client-selection interface.
//!
//! The round engine is policy-agnostic: anything implementing
//! [`ClientSelector`] can drive selection. The vanilla baseline
//! ([`RandomSelector`], §3.1) picks `|C|` clients uniformly at random
//! from the full pool; `tifl-core` provides the tier-based selectors.

use crate::checkpoint::SelectorState;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use tifl_tensor::{seed_rng, split_seed};

/// A client-selection policy.
pub trait ClientSelector: Send {
    /// Human-readable policy name (used in reports and experiment output).
    fn name(&self) -> String;

    /// Choose `count` distinct clients for `round`.
    fn select(&mut self, round: u64, count: usize) -> Vec<usize>;

    /// Client groups whose holdout accuracy the selector wants evaluated
    /// after `round` completes (`TestData_t` per tier for the adaptive
    /// algorithm). `None` skips group evaluation for that round —
    /// selectors that only consume accuracies every `I` rounds should
    /// return `Some` only on the rounds they will read, sparing the
    /// aggregator needless evaluation work.
    fn monitored_groups(&self, _round: u64) -> Option<Vec<Vec<usize>>> {
        None
    }

    /// Receive the per-group accuracies requested via
    /// [`ClientSelector::monitored_groups`], in the same group order.
    fn observe(&mut self, _round: u64, _group_accuracies: &[f64]) {}

    /// Serialisable working state for checkpointing, if the selector
    /// carries any between rounds (adaptive credits, probabilities,
    /// accuracy history). Stateless selectors return `None`: rebuilt
    /// from their seed they replay identically.
    fn export_state(&self) -> Option<SelectorState> {
        None
    }

    /// Restore state previously produced by
    /// [`ClientSelector::export_state`] on a selector with the same
    /// configuration. The default ignores it (stateless selectors).
    fn restore_state(&mut self, _state: &SelectorState) {}
}

/// Vanilla FedAvg selection: uniform random `|C|` clients from `K`
/// (Algorithm 1, line 3) — heterogeneity-agnostic.
pub struct RandomSelector {
    pool: Vec<usize>,
    seed: u64,
}

impl RandomSelector {
    /// Select uniformly from clients `0..num_clients`.
    #[must_use]
    pub fn new(num_clients: usize, seed: u64) -> Self {
        Self {
            pool: (0..num_clients).collect(),
            seed,
        }
    }

    /// Select uniformly from an explicit pool (e.g. excluding dropouts).
    #[must_use]
    pub fn from_pool(pool: Vec<usize>, seed: u64) -> Self {
        Self { pool, seed }
    }
}

impl ClientSelector for RandomSelector {
    fn name(&self) -> String {
        "vanilla".to_string()
    }

    fn select(&mut self, round: u64, count: usize) -> Vec<usize> {
        assert!(
            count <= self.pool.len(),
            "cannot select {count} clients from a pool of {}",
            self.pool.len()
        );
        let mut rng: StdRng = seed_rng(split_seed(self.seed, round));
        let mut pool = self.pool.clone();
        pool.shuffle(&mut rng);
        pool.truncate(count);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count_distinct() {
        let mut s = RandomSelector::new(50, 0);
        let sel = s.select(0, 5);
        assert_eq!(sel.len(), 5);
        let mut d = sel.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn deterministic_per_round() {
        let mut s1 = RandomSelector::new(50, 7);
        let mut s2 = RandomSelector::new(50, 7);
        assert_eq!(s1.select(3, 5), s2.select(3, 5));
    }

    #[test]
    fn different_rounds_differ() {
        let mut s = RandomSelector::new(50, 7);
        assert_ne!(s.select(0, 5), s.select(1, 5));
    }

    #[test]
    fn covers_pool_over_many_rounds() {
        let mut s = RandomSelector::new(20, 1);
        let mut seen = [false; 20];
        for r in 0..200 {
            for c in s.select(r, 5) {
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "some clients never selected");
    }

    #[test]
    fn selection_frequency_is_roughly_uniform() {
        let mut s = RandomSelector::new(10, 2);
        let mut counts = [0usize; 10];
        let rounds = 2000;
        for r in 0..rounds {
            for c in s.select(r, 2) {
                counts[c] += 1;
            }
        }
        let expect = rounds as f64 * 2.0 / 10.0;
        for (c, &n) in counts.iter().enumerate() {
            let dev = (n as f64 - expect).abs() / expect;
            assert!(
                dev < 0.15,
                "client {c} selected {n} times (expect ~{expect})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_oversized_request() {
        let mut s = RandomSelector::new(3, 0);
        let _ = s.select(0, 5);
    }
}
