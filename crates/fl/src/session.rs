//! The round engine: drives Algorithm 1 against the simulated testbed.

use crate::aggregator::{ClientUpdate, StreamingFold};
use crate::client::{self, ClientConfig};
use crate::hierarchy::AggregationTree;
use crate::report::{RoundReport, TrainingReport};
use crate::selector::ClientSelector;
use crate::timeline::{schedule_plan_events, TimelineEvent};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tifl_comm::{CodecSpec, CommSpec, EncodeScratch, ErrorFeedback};
use tifl_data::FederatedDataset;
use tifl_nn::model::EvalResult;
use tifl_nn::models::ModelSpec;
use tifl_obs::{HostProfiler, Phase, RunObserver, TraceEvent, TraceSink};
use tifl_sim::latency::TrainingTask;
use tifl_sim::{Cluster, VirtualClock};
use tifl_tensor::{split_seed, ParamVec};

/// How a round collects client updates.
///
/// The paper's prototype (and Algorithm 1) waits for every selected
/// client. Bonawitz et al. instead over-select by ~30 % and discard the
/// stragglers that have not reported by the time the target count is
/// reached — the baseline TiFL's related work contrasts against (§2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Synchronous FL: wait for all `|C|` selected clients (Eq. 1).
    #[default]
    WaitAll,
    /// Over-selection: ask `ceil(|C| * factor)` clients, aggregate the
    /// first `|C|` to respond, discard the rest. Round latency is the
    /// `|C|`-th fastest response.
    FirstK {
        /// Over-selection factor (Bonawitz et al. use 1.3).
        factor: f64,
    },
    /// Staleness-aware asynchronous aggregation (FedAsync-style): the
    /// server keeps `|C|` clients in flight, folds each update into the
    /// global model the moment it arrives (damped by its staleness), and
    /// immediately dispatches a replacement. An update trained against a
    /// global model more than `max_staleness` versions old is discarded.
    ///
    /// This mode only exists on the event-driven execution backend
    /// (`tifl_core::exec`): the lockstep round loop has no notion of
    /// overlapping rounds and panics on it.
    Async {
        /// Maximum tolerated model-version staleness.
        max_staleness: u64,
    },
}

/// Round-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Global model architecture.
    pub model: ModelSpec,
    /// Local-training hyper-parameters.
    pub client: ClientConfig,
    /// `|C|`: clients selected per round (paper: 5 for the synthetic
    /// datasets, 10 for LEAF).
    pub clients_per_round: usize,
    /// Total global rounds `N` (paper: 500 / 2000).
    pub rounds: u64,
    /// Evaluate the global model every `eval_every` rounds (1 = every
    /// round; the final round is always evaluated).
    pub eval_every: u64,
    /// Latency cap per round: a client that does not respond within
    /// `tmax_sec` is dropped from aggregation and the round is charged
    /// `tmax_sec`.
    pub tmax_sec: f64,
    /// Update-collection strategy.
    #[serde(default)]
    pub aggregation: AggregationMode,
    /// Communication model: update codec × link model (× optional
    /// aggregation hierarchy). `None` is the legacy scalar-bandwidth,
    /// uncompressed behaviour; `Some(CommSpec::default())` is its
    /// bit-for-bit comm-subsystem equivalent.
    #[serde(default)]
    pub comm: Option<CommSpec>,
    /// Root seed for model init, shuffles and jitter.
    pub seed: u64,
}

/// Per-run overrides a run specification applies on top of a base
/// [`SessionConfig`] (see `tifl_core::runner::RunSpec`).
///
/// `None` leaves the corresponding base setting untouched, so a spec
/// that does not care about (say) the local objective composes with
/// whatever the experiment already configured.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SessionOverrides {
    /// Replace the update-collection strategy.
    #[serde(default)]
    pub aggregation: Option<AggregationMode>,
    /// Replace the FedProx proximal coefficient (`Some(0.0)` forces
    /// plain FedAvg even if the base config enabled the proximal term).
    #[serde(default)]
    pub proximal_mu: Option<f32>,
    /// Replace the communication model (codec × link model).
    #[serde(default)]
    pub comm: Option<CommSpec>,
}

impl SessionConfig {
    /// This config with `overrides` applied.
    #[must_use]
    pub fn with_overrides(mut self, overrides: &SessionOverrides) -> Self {
        if let Some(aggregation) = overrides.aggregation {
            self.aggregation = aggregation;
        }
        if let Some(mu) = overrides.proximal_mu {
            self.client.proximal_mu = mu;
        }
        if let Some(comm) = overrides.comm {
            self.comm = Some(comm);
        }
        self
    }
}

/// One fully simulated round, before any local training has happened.
///
/// Everything here derives from the latency/dropout models and the
/// selector alone — client training results cannot influence it — so
/// both execution backends (the lockstep loop and the event-driven
/// engine in `tifl_core::exec`) share one source of truth for *what* a
/// round is and only differ in *how* they execute the training.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// Round index this plan was made for.
    pub round: u64,
    /// Every client asked to train, in selection order.
    pub selected: Vec<usize>,
    /// Observed response latency per selected client, in selection order
    /// (`None` = no response within `tmax_sec`).
    pub responses: Vec<(usize, Option<f64>)>,
    /// Clients whose updates will be aggregated, in the canonical
    /// aggregation order (selection order under [`AggregationMode::WaitAll`],
    /// response-time order under [`AggregationMode::FirstK`]). FedAvg's
    /// weighted mean is folded in exactly this order, so any executor
    /// reproducing it is bit-for-bit equivalent.
    pub contributors: Vec<usize>,
    /// Round latency `max_i L_i` (Eq. 1) in virtual seconds.
    pub latency: f64,
}

/// The federated training session: global model + testbed + data.
pub struct Session {
    data: Arc<FederatedDataset>,
    cluster: Cluster,
    config: SessionConfig,
    global: ParamVec,
    clock: VirtualClock,
    flops_per_sample: u64,
    update_bytes: u64,
    /// Exact wire size of one encoded client upload (`None` without a
    /// comm spec: uncompressed, `update_bytes` both ways).
    upload_bytes: Option<u64>,
    round: u64,
    /// Reusable encode/fold buffers: at steady state a round's
    /// aggregation path allocates nothing.
    codec_scratch: EncodeScratch,
    /// Per-client error-feedback residuals for lossy codecs.
    feedback: ErrorFeedback,
    /// Reusable per-round aggregation-weight buffer.
    fold_weights: Vec<f32>,
    /// Optional tracing/metrics sink (attached by
    /// `tifl_core::runner::Runner::run_observed`). `None` is the free
    /// path: one branch per round.
    observer: Option<RunObserver>,
    /// Reusable scratch for the canonical per-round trace schedule.
    trace_scratch: Vec<(f64, u32, TimelineEvent)>,
    /// Optional host-time phase profiler (attached alongside the
    /// observer). Host time is operator-facing only: it never feeds
    /// the virtual clock, the reports, or any deterministic bytes.
    host_prof: Option<HostProfiler>,
}

impl Session {
    /// Create a session; initialises global weights from `config.seed`.
    ///
    /// # Panics
    /// Panics if the cluster is smaller than the client count, or the
    /// model's input width does not match the data.
    #[must_use]
    pub fn new(data: FederatedDataset, mut cluster: Cluster, config: SessionConfig) -> Self {
        assert!(
            cluster.num_devices() >= data.num_clients(),
            "cluster has {} devices for {} clients",
            cluster.num_devices(),
            data.num_clients()
        );
        assert!(
            config.clients_per_round <= data.num_clients(),
            "clients_per_round exceeds client count"
        );
        assert_eq!(
            config.model.input_features(),
            data.global_test.features(),
            "model input width does not match dataset features"
        );
        let template = config.model.build(config.seed);
        let global = template.params();
        // Activate the communication subsystem: install the spec's
        // per-client links on the cluster (every latency path — rounds,
        // profiling, deadlines — sees them) and price the encoded
        // upload once (wire sizes are data-independent).
        let upload_bytes = config.comm.map(|spec| {
            let device_bps: Vec<f64> = (0..cluster.num_devices())
                .map(|d| cluster.device(d).bandwidth_bps)
                .collect();
            let links = spec
                .link
                .materialize(&device_bps, split_seed(config.seed, 0xC033));
            cluster.set_links(links.into_links());
            spec.codec.encoded_bytes(global.len())
        });
        Self {
            flops_per_sample: template.flops_per_sample(),
            update_bytes: template.update_bytes(),
            upload_bytes,
            data: Arc::new(data),
            cluster,
            config,
            global,
            clock: VirtualClock::new(),
            round: 0,
            codec_scratch: EncodeScratch::new(),
            feedback: ErrorFeedback::new(),
            fold_weights: Vec::new(),
            observer: None,
            trace_scratch: Vec::new(),
            host_prof: None,
        }
    }

    /// Attach a tracing/metrics observer. Every subsequent round emits
    /// the canonical virtual-time event stream (see
    /// [`schedule_plan_events`]) into it; both execution backends
    /// derive the stream from the round plans alone, so it is
    /// bit-for-bit identical across backends and thread counts.
    pub fn attach_observer(&mut self, observer: RunObserver) {
        self.observer = Some(observer);
    }

    /// Detach the observer (to harvest its trace and metrics).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }

    /// Attach a host-time phase profiler. Subsequent rounds attribute
    /// real seconds to the canonical phases (plan, train, encode,
    /// fold, eval). Durations come from the profiler's [`HostClock`];
    /// nothing simulated ever reads them.
    ///
    /// [`HostClock`]: tifl_obs::HostClock
    pub fn attach_host_profiler(&mut self, prof: HostProfiler) {
        self.host_prof = Some(prof);
    }

    /// Detach the host profiler (to harvest its spans and totals).
    pub fn take_host_profiler(&mut self) -> Option<HostProfiler> {
        self.host_prof.take()
    }

    /// Open a host-time phase (no-op stamp without a profiler). Public
    /// so the executors in `tifl_core::exec`, which drive the session
    /// from outside, share the same profiler.
    #[must_use]
    pub fn host_begin(&self) -> f64 {
        self.host_prof.as_ref().map_or(0.0, HostProfiler::begin)
    }

    /// Close a host-time phase opened by [`Session::host_begin`]
    /// (no-op without a profiler).
    pub fn host_end(&mut self, phase: Phase, round: u64, start: f64) {
        if let Some(prof) = self.host_prof.as_mut() {
            prof.end(phase, round, start);
        }
    }

    /// Record a single event at virtual time `vt` (no-op without an
    /// observer). Hook for emission sites outside the round loop: the
    /// profiler pass and the asynchronous engine's arrival stream.
    pub fn trace_event(&mut self, vt: f64, event: TraceEvent) {
        if let Some(obs) = self.observer.as_mut() {
            obs.record(vt, event);
        }
    }

    /// Emit the canonical trace of a planned round, anchored at the
    /// current virtual time (called from [`Session::finish_round`]
    /// *before* the clock advances). Allocation-free at steady state:
    /// the schedule builds in the session's reusable scratch and every
    /// event is `Copy`.
    fn trace_round(&mut self, plan: &RoundPlan) {
        if self.observer.is_none() {
            return;
        }
        let first_k = matches!(self.config.aggregation, AggregationMode::FirstK { .. });
        let tmax = self.config.tmax_sec;
        let eval = self.is_eval_round(plan.round);
        let wire_bytes = self.upload_wire_bytes();
        let bytes_down = self.update_bytes * plan.selected.len() as u64;
        let t0 = self.clock.now();
        schedule_plan_events(plan, first_k, tmax, &mut self.trace_scratch);
        let Some(observer) = self.observer.as_mut() else {
            return;
        };
        observer.record(
            t0,
            TraceEvent::RoundStart {
                round: plan.round,
                selected: plan.selected.len() as u32,
            },
        );
        for &(t, _, event) in &self.trace_scratch {
            let mapped = match event {
                TimelineEvent::Dispatch { client } => TraceEvent::Dispatch {
                    round: plan.round,
                    client: client as u32,
                },
                TimelineEvent::Complete { client } => TraceEvent::Complete {
                    round: plan.round,
                    client: client as u32,
                },
                TimelineEvent::TimedOut { client } => TraceEvent::TimedOut {
                    round: plan.round,
                    client: client as u32,
                },
                TimelineEvent::Cancelled { client } => TraceEvent::Cancelled {
                    round: plan.round,
                    client: client as u32,
                },
                TimelineEvent::RoundEnd => continue,
            };
            observer.record(t0 + t, mapped);
        }
        for &c in &plan.contributors {
            observer.record(
                t0 + plan.latency,
                TraceEvent::Fold {
                    round: plan.round,
                    client: c as u32,
                    wire_bytes,
                },
            );
        }
        // Evaluation is traced whenever the round is an eval round,
        // whether the backend evaluates inline or defers it onto a
        // worker — the *virtual* schedule is the same either way.
        if eval {
            observer.record(t0 + plan.latency, TraceEvent::Eval { round: plan.round });
        }
        observer.record(
            t0 + plan.latency,
            TraceEvent::RoundEnd {
                round: plan.round,
                latency: plan.latency,
                contributors: plan.contributors.len() as u32,
                bytes_up: wire_bytes * plan.contributors.len() as u64,
                bytes_down,
            },
        );
    }

    /// The federated dataset.
    #[must_use]
    pub fn data(&self) -> &FederatedDataset {
        &self.data
    }

    /// Shared handle to the (immutable) federated dataset, for executors
    /// that train clients on worker threads while the session itself
    /// advances on the coordinating thread.
    #[must_use]
    pub fn data_handle(&self) -> Arc<FederatedDataset> {
        Arc::clone(&self.data)
    }

    /// The simulated testbed.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Session configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Current global parameters.
    #[must_use]
    pub fn global_params(&self) -> &ParamVec {
        &self.global
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// The training task client `c` would execute this round (feeds the
    /// latency model and the profiler).
    #[must_use]
    pub fn task_for(&self, c: usize) -> TrainingTask {
        TrainingTask {
            samples: self.data.clients[c].train.len(),
            epochs: self.config.client.local_epochs,
            flops_per_sample: self.flops_per_sample,
            update_bytes: self.update_bytes,
            upload_bytes: self.upload_bytes,
        }
    }

    /// Bytes one client uploads per round: the codec's exact wire size,
    /// or the dense `update_bytes` when no comm spec is active.
    #[must_use]
    pub fn upload_wire_bytes(&self) -> u64 {
        self.upload_bytes.unwrap_or(self.update_bytes)
    }

    /// Bytes one client downloads per round (the full-precision global
    /// model).
    #[must_use]
    pub fn download_wire_bytes(&self) -> u64 {
        self.update_bytes
    }

    /// Evaluate the global model on the balanced global test set.
    #[must_use]
    pub fn evaluate_global(&self) -> EvalResult {
        let mut model = client::eval_model(&self.config.model, &self.global);
        model.evaluate(&self.data.global_test.x, &self.data.global_test.y)
    }

    /// Per-class accuracy of the global model on the global test set —
    /// the bias diagnostic behind the paper's finding that aggressive
    /// fast-tier policies starve the classes held by slower tiers.
    #[must_use]
    pub fn evaluate_global_per_class(&self) -> Vec<Option<f64>> {
        let mut model = client::eval_model(&self.config.model, &self.global);
        let logits = model.forward(self.data.global_test.x.clone(), false);
        tifl_nn::metrics::per_class_accuracy(&logits, &self.data.global_test.y, self.data.classes)
    }

    /// Evaluate the global model on the union of the given clients'
    /// holdout sets (a tier's `TestData_t`, Algorithm 2 lines 22-24).
    #[must_use]
    pub fn evaluate_group(&self, clients: &[usize]) -> f64 {
        if clients.is_empty() {
            return 0.0;
        }
        let test = self.data.tier_test_set(clients);
        let mut model = client::eval_model(&self.config.model, &self.global);
        model.evaluate(&test.x, &test.y).accuracy
    }

    /// Snapshot the session for checkpointing (no selector state; use
    /// [`Session::snapshot_with`] for stateful selectors).
    #[must_use]
    pub fn snapshot(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            round: self.round,
            time: self.clock.now(),
            global: self.global.clone(),
            selector: None,
        }
    }

    /// Snapshot the session *and* the run's selector: stateful
    /// selectors (adaptive credits, probabilities, accuracy history)
    /// export their working set so a restored run replays bit-for-bit.
    #[must_use]
    pub fn snapshot_with(&self, selector: &dyn ClientSelector) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            selector: selector.export_state(),
            ..self.snapshot()
        }
    }

    /// Restore a snapshot taken from a session with the same config.
    /// Subsequent rounds replay exactly as if training never stopped
    /// (all per-round randomness is keyed by `(seed, client, round)`).
    ///
    /// # Panics
    /// Panics if the checkpoint's parameter count does not match the
    /// model.
    pub fn restore(&mut self, checkpoint: &crate::checkpoint::Checkpoint) {
        assert_eq!(
            checkpoint.global.len(),
            self.global.len(),
            "checkpoint does not match this session's model"
        );
        self.global = checkpoint.global.clone();
        self.clock.reset();
        self.clock.advance(checkpoint.time);
        self.round = checkpoint.round;
        // Residuals are not part of the checkpoint: a restored lossy run
        // restarts with clean error-feedback compensation.
        self.feedback.reset();
    }

    /// Simulate the next round up to (but excluding) local training:
    /// select clients, sample their response latencies, and decide which
    /// updates will count and how long the round takes. Pure with
    /// respect to training — see [`RoundPlan`].
    ///
    /// # Panics
    /// Panics under [`AggregationMode::Async`] (which has no round
    /// plans; use the event-driven engine), on an over-selection factor
    /// below 1, or if the selector returns no clients.
    pub fn plan_round(&self, selector: &mut dyn ClientSelector) -> RoundPlan {
        let round = self.round;
        let target = self.config.clients_per_round;
        let ask = match self.config.aggregation {
            AggregationMode::WaitAll => target,
            AggregationMode::FirstK { factor } => {
                assert!(factor >= 1.0, "over-selection factor must be >= 1");
                ((target as f64 * factor).ceil() as usize).min(self.data.num_clients())
            }
            AggregationMode::Async { .. } => {
                // tifl-lint: allow(panic-in-library) — documented precondition: config validation rejects Async on the lockstep backend before a session starts
                panic!("Async aggregation requires the event-driven backend (ExecBackend::EventDriven)")
            }
        };
        let selected = selector.select(round, ask);
        assert!(!selected.is_empty(), "selector returned no clients");

        // Observed response latency of every selected client this round
        // (`None` = did not respond within Tmax).
        let responses: Vec<(usize, Option<f64>)> = selected
            .iter()
            .map(|&c| {
                let l = self
                    .cluster
                    .response(c, round, &self.task_for(c))
                    .filter(|&l| l <= self.config.tmax_sec);
                (c, l)
            })
            .collect();

        // Which updates count, and how long the round takes.
        let (contributors, latency) = match self.config.aggregation {
            AggregationMode::WaitAll => {
                // Synchronous FL: wait for everyone; non-responders cost
                // Tmax (Eq. 1).
                let latency = responses
                    .iter()
                    .map(|(_, l)| l.unwrap_or(self.config.tmax_sec))
                    .fold(0.0f64, f64::max);
                let contributors: Vec<usize> = responses
                    .iter()
                    .filter_map(|&(c, l)| l.map(|_| c))
                    .collect();
                (contributors, latency)
            }
            AggregationMode::FirstK { .. } => {
                // Over-selection: take the `target` fastest responders;
                // the round ends when the last of them reports.
                let mut ok: Vec<(usize, f64)> = responses
                    .iter()
                    .filter_map(|&(c, l)| l.map(|l| (c, l)))
                    .collect();
                ok.sort_by(|a, b| a.1.total_cmp(&b.1));
                ok.truncate(target);
                let latency = ok.last().map_or(self.config.tmax_sec, |&(_, l)| l);
                (ok.into_iter().map(|(c, _)| c).collect(), latency)
            }
            // tifl-lint: allow(panic-in-library) — invariant panic: Async mode already rejected at session entry
            AggregationMode::Async { .. } => unreachable!("rejected above"),
        };

        // Hierarchical aggregation: the master/child combine cost rides
        // on top of the slowest client, in the same transfer-seconds
        // units as every link (children absorb encoded uploads, the
        // master absorbs dense partials).
        let latency = match self.config.comm.and_then(|spec| spec.hierarchy) {
            Some(h) => {
                let tree = AggregationTree::with_plane(h.fan_out, h.plane_bps);
                latency
                    + tree.aggregation_latency_encoded(
                        contributors.len(),
                        self.upload_wire_bytes(),
                        self.update_bytes,
                    )
            }
            None => latency,
        };

        RoundPlan {
            round,
            selected,
            responses,
            contributors,
            latency,
        }
    }

    /// Train one contributing client of `round` against the current
    /// global model. Deterministic in `(seed, client, round)`.
    #[must_use]
    pub fn train_contributor(&self, c: usize, round: u64) -> ClientUpdate {
        client::train_update(
            &self.config.model,
            &self.global,
            &self.data,
            &self.config.client,
            round,
            c,
            self.config.seed,
        )
    }

    /// True when the global model is evaluated after `round` (every
    /// `eval_every` rounds, plus always on the final configured round).
    #[must_use]
    pub fn is_eval_round(&self, round: u64) -> bool {
        round.is_multiple_of(self.config.eval_every) || round + 1 == self.config.rounds
    }

    /// Commit a planned round: advance the clock by the plan's latency,
    /// install the aggregated model (if any update arrived), evaluate
    /// when due, feed monitored-group accuracies back to the selector,
    /// and record the round.
    ///
    /// `eval_inline: false` skips the global-test evaluation and leaves
    /// `accuracy`/`loss` unset — for executors that evaluate the
    /// round's (immutable) global snapshot concurrently with later
    /// rounds and patch the report afterwards. Monitored-group
    /// evaluation is never deferred: the selector may need it before
    /// the next selection.
    pub fn finish_round(
        &mut self,
        plan: RoundPlan,
        new_global: Option<ParamVec>,
        selector: &mut dyn ClientSelector,
        eval_inline: bool,
    ) -> RoundReport {
        self.trace_round(&plan);
        let RoundPlan {
            round,
            selected,
            contributors,
            latency,
            ..
        } = plan;
        self.clock.advance(latency);
        if let Some(global) = new_global {
            assert_eq!(global.len(), self.global.len(), "aggregated model size");
            let old = std::mem::replace(&mut self.global, global);
            // The displaced model's buffer becomes next round's fold
            // accumulator.
            self.codec_scratch.recycle_dense(old);
        }

        let (accuracy, loss) = if eval_inline && self.is_eval_round(round) {
            let t_eval = self.host_begin();
            let e = self.evaluate_global();
            self.host_end(Phase::Eval, round, t_eval);
            (Some(e.accuracy), Some(e.loss))
        } else {
            (None, None)
        };

        // Feed monitored-group accuracies back to the selector.
        if let Some(groups) = selector.monitored_groups(round) {
            let accs: Vec<f64> = groups.iter().map(|g| self.evaluate_group(g)).collect();
            selector.observe(round, &accs);
        }

        self.round += 1;
        RoundReport {
            round,
            time: self.clock.now(),
            latency,
            // Every selected client downloads the global model; every
            // aggregated contributor's (encoded) update crossed the
            // uplink. Both derive from the plan alone, so the two
            // execution backends account identically.
            bytes_down: self.update_bytes * selected.len() as u64,
            bytes_up: self.upload_wire_bytes() * contributors.len() as u64,
            selected,
            aggregated: contributors,
            accuracy,
            loss,
        }
    }

    // -- low-level hooks for the asynchronous engine ----------------------

    /// Replace the global model (the asynchronous engine's per-update
    /// fold commits through this).
    ///
    /// # Panics
    /// Panics if the parameter count does not match the model.
    pub fn set_global_params(&mut self, params: ParamVec) {
        assert_eq!(params.len(), self.global.len(), "global model size");
        let old = std::mem::replace(&mut self.global, params);
        self.codec_scratch.recycle_dense(old);
    }

    /// Disjoint borrows of the error-feedback state and the encode
    /// scratch arena, for executors that encode updates outside
    /// [`Session::run_round`] while reading the global model.
    pub fn codec_state_mut(&mut self) -> (&mut ErrorFeedback, &mut EncodeScratch) {
        (&mut self.feedback, &mut self.codec_scratch)
    }

    /// Pooled zeroed accumulator sized for the global model (feeds
    /// `StreamingFold::with_acc`; the buffer cycles back through
    /// [`Session::finish_round`] / [`Session::set_global_params`]).
    #[must_use]
    pub fn take_fold_acc(&mut self) -> ParamVec {
        let n = self.global.len();
        self.codec_scratch.take_zeroed(n)
    }

    /// Return a dense buffer to the session's pool (an executor's
    /// decoded arrival it has finished folding).
    pub fn recycle_dense(&mut self, p: ParamVec) {
        self.codec_scratch.recycle_dense(p);
    }

    /// Round-trip one client's update through its encoded wire form
    /// against the current global model — the asynchronous engine's
    /// server-side view of an arrival. Encodes with error-feedback
    /// compensation and decodes into a pooled buffer (return it via
    /// [`Session::recycle_dense`] after folding).
    ///
    /// # Panics
    /// Panics if the update's parameter count does not match the model.
    #[must_use]
    pub fn roundtrip_through_codec(
        &mut self,
        codec: &CodecSpec,
        update: &ClientUpdate,
    ) -> ParamVec {
        let t_enc = self.host_begin();
        let enc = self.feedback.encode(
            *codec,
            update.client,
            &update.params,
            &self.global,
            &mut self.codec_scratch,
        );
        let mut out = self.codec_scratch.take_empty();
        enc.decode_into(&self.global, &mut out);
        self.codec_scratch.recycle(enc);
        self.host_end(Phase::Encode, self.round, t_enc);
        out
    }

    /// FedAsync mix step, in place: `global = (1 − beta) · global +
    /// beta · params`. Same scale-then-axpy operation order as mixing
    /// on a copy, so the result is bit-for-bit identical — without the
    /// per-arrival model clone.
    ///
    /// # Panics
    /// Panics if the parameter count does not match the model.
    pub fn mix_global(&mut self, beta: f32, params: &ParamVec) {
        assert_eq!(params.len(), self.global.len(), "global model size");
        self.global.scale(1.0 - beta);
        self.global.axpy(beta, params);
    }

    /// Advance the virtual clock to an absolute time (asynchronous
    /// aggregation events carry absolute arrival times rather than
    /// per-round latencies).
    ///
    /// # Panics
    /// Panics if `t` would move the clock backwards.
    pub fn advance_time_to(&mut self, t: f64) {
        self.clock.advance_to(t);
    }

    /// Count one completed aggregation step (the asynchronous analogue
    /// of a round, so `rounds_done` and checkpoints stay meaningful).
    pub fn mark_round_done(&mut self) {
        self.round += 1;
    }

    /// Execute one global round with `selector` and return its record.
    pub fn run_round(&mut self, selector: &mut dyn ClientSelector) -> RoundReport {
        let t_plan = self.host_begin();
        let plan = self.plan_round(selector);
        self.host_end(Phase::Plan, plan.round, t_plan);
        // Local training in parallel across contributing clients. Each
        // client's result depends only on (seed, client, round), so rayon
        // scheduling cannot perturb the outcome. On a single-threaded
        // pool the fan-out is pure overhead — worse, the pool's lone
        // worker briefly spin-waits for more work after the collect,
        // contending with this thread for the only core exactly while
        // the fold below runs — so train inline instead (same results
        // either way).
        // Host attribution: one batch-level Train span per round from
        // the coordinator's side (parallel workers are not individually
        // attributed; per-worker lanes are a sweep-scheduler concept).
        let t_train = self.host_begin();
        let updates: Vec<ClientUpdate> = if rayon::current_num_threads() > 1 {
            plan.contributors
                .par_iter()
                .map(|&c| self.train_contributor(c, plan.round))
                .collect()
        } else {
            plan.contributors
                .iter()
                .map(|&c| self.train_contributor(c, plan.round))
                .collect()
        };
        self.host_end(Phase::Train, plan.round, t_train);
        // Synchronous aggregation over the received updates, in the
        // plan's canonical contributor order. With a comm spec the
        // server folds each update from its encoded wire form — the
        // exact decode-and-fold path the event-driven engine streams.
        // Every buffer (accumulator, weights, payloads) cycles through
        // the session's scratch pools: a steady-state round allocates
        // nothing on this path.
        let t_fold = self.host_begin();
        let new_global = if updates.is_empty() {
            None
        } else {
            self.fold_weights.clear();
            self.fold_weights
                .extend(updates.iter().map(|u| u.samples as f32));
            let acc = self.codec_scratch.take_zeroed(self.global.len());
            let mut fold = StreamingFold::with_acc(acc, &self.fold_weights);
            match self.config.comm.map(|spec| spec.codec) {
                // The plain streaming fold is bitwise `aggregate_fedavg`
                // (pinned in the aggregator tests) — Identity skips the
                // wire-format copy the encode would make.
                None | Some(CodecSpec::Identity) => {
                    for u in &updates {
                        fold.fold(u);
                    }
                    fold.finish()
                }
                Some(codec) => {
                    for u in &updates {
                        fold.fold_compensated(
                            &codec,
                            u,
                            &self.global,
                            &mut self.feedback,
                            &mut self.codec_scratch,
                        );
                    }
                    fold.finish_against(&self.global)
                }
            }
        };
        self.host_end(Phase::Fold, plan.round, t_fold);
        self.finish_round(plan, new_global, selector, true)
    }

    /// Run the configured number of rounds and collect the full report.
    pub fn run(&mut self, selector: &mut dyn ClientSelector) -> TrainingReport {
        let mut rounds = Vec::with_capacity(self.config.rounds as usize);
        for _ in self.round..self.config.rounds {
            rounds.push(self.run_round(selector));
        }
        TrainingReport {
            policy: selector.name(),
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::RandomSelector;
    use tifl_data::partition;
    use tifl_data::synth::{Generator, SynthFamily, SynthSpec};
    use tifl_sim::resource::profiles;
    use tifl_sim::ClusterConfig;
    use tifl_tensor::seed_rng;

    fn small_session(rounds: u64, seed: u64) -> Session {
        let gen = Generator::new(SynthSpec::family(SynthFamily::Mnist), seed);
        let part = partition::iid(10, 60, 10, &mut seed_rng(seed));
        let fed = FederatedDataset::materialize(&gen, &part, 0.2, 20, seed);
        let mut ccfg = ClusterConfig::equal_groups(10, &profiles::MNIST, seed);
        // Make compute dominate latency for the tiny test model so the
        // hardware-ordering assertions are meaningful.
        ccfg.latency.flops_per_cpu_sec = 1.0e5;
        ccfg.latency.base_overhead_sec = 0.0;
        let cluster = Cluster::new(&ccfg);
        let config = SessionConfig {
            model: ModelSpec::Mlp {
                input: 64,
                hidden: 32,
                classes: 10,
            },
            client: ClientConfig::paper_synthetic(),
            clients_per_round: 3,
            rounds,
            eval_every: 1,
            tmax_sec: 1e9,
            aggregation: AggregationMode::WaitAll,
            comm: None,
            seed,
        };
        Session::new(fed, cluster, config)
    }

    #[test]
    fn run_produces_one_report_per_round() {
        let mut s = small_session(5, 0);
        let mut sel = RandomSelector::new(10, 0);
        let report = s.run(&mut sel);
        assert_eq!(report.rounds.len(), 5);
        assert!(report.rounds.iter().all(|r| r.selected.len() == 3));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut s = small_session(5, 1);
        let mut sel = RandomSelector::new(10, 1);
        let report = s.run(&mut sel);
        for w in report.rounds.windows(2) {
            assert!(w[1].time > w[0].time);
        }
        assert!(
            (report.total_time() - report.rounds.iter().map(|r| r.latency).sum::<f64>()).abs()
                < 1e-9
        );
    }

    #[test]
    fn training_improves_accuracy_over_rounds() {
        let mut s = small_session(40, 2);
        let initial = s.evaluate_global().accuracy; // untrained model
        let mut sel = RandomSelector::new(10, 2);
        let report = s.run(&mut sel);
        let last = report.final_accuracy();
        assert!(
            initial < 0.3,
            "untrained model should be near chance, got {initial}"
        );
        assert!(
            last > 0.7,
            "federated training did not learn: {initial} -> {last}"
        );
    }

    #[test]
    fn session_is_deterministic() {
        let run = |seed| {
            let mut s = small_session(8, seed);
            let mut sel = RandomSelector::new(10, seed);
            s.run(&mut sel)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn wait_all_aggregates_every_responder() {
        let mut s = small_session(5, 10);
        let mut sel = RandomSelector::new(10, 10);
        let report = s.run(&mut sel);
        for r in &report.rounds {
            let mut sel_sorted = r.selected.clone();
            sel_sorted.sort_unstable();
            let mut agg_sorted = r.aggregated.clone();
            agg_sorted.sort_unstable();
            assert_eq!(
                sel_sorted, agg_sorted,
                "no dropouts: all selected aggregate"
            );
        }
        assert_eq!(report.discarded_work_fraction(), 0.0);
    }

    #[test]
    fn over_selection_discards_stragglers() {
        let mut s = small_session(12, 11);
        s.config.aggregation = AggregationMode::FirstK { factor: 2.0 };
        let mut sel = RandomSelector::new(10, 11);
        let report = s.run(&mut sel);
        for r in &report.rounds {
            assert_eq!(r.selected.len(), 6, "asks 2x the target");
            assert_eq!(r.aggregated.len(), 3, "aggregates only the target");
            assert!(r.aggregated.iter().all(|c| r.selected.contains(c)));
        }
        assert!((report.discarded_work_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn over_selection_reduces_round_latency() {
        // The k-th fastest of 2k clients is stochastically below the max
        // of k clients — over-selection should cut round latency on a
        // heterogeneous cluster.
        let run = |mode| {
            let mut s = small_session(20, 12);
            s.config.aggregation = mode;
            let mut sel = RandomSelector::new(10, 12);
            s.run(&mut sel).total_time()
        };
        let wait_all = run(AggregationMode::WaitAll);
        let first_k = run(AggregationMode::FirstK { factor: 2.0 });
        assert!(
            first_k < wait_all,
            "over-selection ({first_k}) should be faster than wait-all ({wait_all})"
        );
    }

    #[test]
    fn over_selection_latency_is_kth_fastest() {
        let mut s = small_session(1, 13);
        s.config.aggregation = AggregationMode::FirstK { factor: 2.0 };
        let mut sel = RandomSelector::new(10, 13);
        let r = s.run_round(&mut sel);
        // The reported latency equals the slowest *aggregated* client,
        // not the slowest selected one.
        let agg_latencies: Vec<f64> = r
            .aggregated
            .iter()
            .map(|&c| s.cluster.response(c, 0, &s.task_for(c)).unwrap())
            .collect();
        let max_agg = agg_latencies.iter().copied().fold(0.0f64, f64::max);
        assert!((r.latency - max_agg).abs() < 1e-12);
    }

    #[test]
    fn overrides_apply_only_what_they_set() {
        let base = small_session(1, 0).config;
        let same = base.with_overrides(&SessionOverrides::default());
        assert_eq!(same, base);

        let changed = base.with_overrides(&SessionOverrides {
            aggregation: Some(AggregationMode::FirstK { factor: 1.3 }),
            proximal_mu: Some(0.5),
            comm: Some(CommSpec::default()),
        });
        assert_eq!(changed.aggregation, AggregationMode::FirstK { factor: 1.3 });
        assert_eq!(changed.client.proximal_mu, 0.5);
        assert_eq!(changed.comm, Some(CommSpec::default()));
        // Everything else is untouched.
        assert_eq!(changed.model, base.model);
        assert_eq!(changed.seed, base.seed);
    }

    /// `small_session` with a communication spec installed through the
    /// constructor (so links and upload pricing activate).
    fn comm_session(rounds: u64, seed: u64, comm: Option<CommSpec>) -> Session {
        let config = SessionConfig {
            comm,
            ..small_session(rounds, seed).config
        };
        let gen = Generator::new(SynthSpec::family(SynthFamily::Mnist), seed);
        let part = partition::iid(10, 60, 10, &mut seed_rng(seed));
        let fed = FederatedDataset::materialize(&gen, &part, 0.2, 20, seed);
        let mut ccfg = ClusterConfig::equal_groups(10, &profiles::MNIST, seed);
        ccfg.latency.flops_per_cpu_sec = 1.0e5;
        ccfg.latency.base_overhead_sec = 0.0;
        Session::new(fed, Cluster::new(&ccfg), config)
    }

    #[test]
    fn default_comm_spec_is_bit_for_bit_legacy() {
        // Identity codec over the cluster-default link model must not
        // perturb anything: reports, times, weights — all identical.
        let run = |comm: Option<CommSpec>| {
            let mut s = comm_session(6, 21, comm);
            let mut sel = RandomSelector::new(10, 21);
            let report = s.run(&mut sel);
            (report, s.global_params().clone())
        };
        let (legacy_report, legacy_weights) = run(None);
        let (comm_report, comm_weights) = run(Some(CommSpec::default()));
        assert_eq!(legacy_report, comm_report);
        assert_eq!(legacy_weights, comm_weights);
    }

    #[test]
    fn compressed_sessions_report_fewer_uplink_bytes() {
        use tifl_comm::CodecSpec;
        let run = |codec: CodecSpec| {
            let mut s = comm_session(4, 22, Some(CommSpec::with_codec(codec)));
            let mut sel = RandomSelector::new(10, 22);
            s.run(&mut sel)
        };
        let identity = run(CodecSpec::Identity);
        let quant = run(CodecSpec::QuantizeI8);
        let topk = run(CodecSpec::TopK { frac: 0.1 });
        assert!(identity.total_bytes_up() > 0);
        assert!(quant.total_bytes_up() < identity.total_bytes_up());
        assert!(topk.total_bytes_up() < identity.total_bytes_up());
        // The downlink still ships the dense model.
        assert_eq!(quant.total_bytes_down(), identity.total_bytes_down());
        // Quantized rounds are faster in virtual time (smaller uploads).
        assert!(quant.total_time() < identity.total_time());
    }

    #[test]
    fn eval_every_skips_rounds() {
        let mut s = small_session(10, 4);
        s.config.eval_every = 5;
        let mut sel = RandomSelector::new(10, 4);
        let report = s.run(&mut sel);
        let evaluated: Vec<u64> = report
            .rounds
            .iter()
            .filter(|r| r.accuracy.is_some())
            .map(|r| r.round)
            .collect();
        assert_eq!(evaluated, vec![0, 5, 9]); // 0, 5, and forced final
    }

    #[test]
    fn evaluate_group_uses_holdouts() {
        let s = small_session(1, 5);
        let acc = s.evaluate_group(&[0, 1, 2]);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(s.evaluate_group(&[]), 0.0);
    }

    #[test]
    fn slower_hardware_dominates_round_latency() {
        // All clients on device group 5 (0.25 CPU) must yield slower
        // rounds than all on group 1 (2 CPUs).
        let s = small_session(1, 6);
        let fast: Vec<(usize, TrainingTask)> = vec![(0, s.task_for(0)), (1, s.task_for(1))];
        let slow: Vec<(usize, TrainingTask)> = vec![(8, s.task_for(8)), (9, s.task_for(9))];
        let lf = s.cluster().round_latency(&fast, 0, 1e9);
        let ls = s.cluster().round_latency(&slow, 0, 1e9);
        assert!(ls > 2.0 * lf, "fast {lf}, slow {ls}");
    }
}
