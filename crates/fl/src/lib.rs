//! Federated-learning substrate.
//!
//! Implements the vanilla cross-device FL process of the paper's §3.1
//! (Algorithm 1, FedAvg): a central [`aggregator`] holds the global
//! model; each round a [`selector`] picks `|C|` clients from the pool
//! `K`; every selected [`client`] trains locally on its own data and
//! returns updated weights; the aggregator averages them weighted by
//! local training-set size. The [`session`] round engine drives this
//! loop against the simulated testbed, advancing the virtual clock by
//! the round latency `max_i L_i` (Eq. 1) and recording a
//! [`report::RoundReport`] per round.
//!
//! TiFL itself (profiling, tiering, tier selection) lives in
//! `tifl-core` and plugs in through the [`selector::ClientSelector`]
//! trait — exactly the paper's claim that TiFL is non-intrusive and
//! "simply regulates client selection without intervening the
//! underlying training process" (§4.1).

#![forbid(unsafe_code)]

pub mod aggregator;
pub mod checkpoint;
pub mod client;
pub mod hierarchy;
pub mod report;
pub mod selector;
pub mod session;
pub mod timeline;

pub use aggregator::{aggregate_fedavg, ClientUpdate, StreamingFold};
pub use checkpoint::{Checkpoint, SelectorState};
pub use client::{ClientConfig, OptimizerSpec};
pub use report::{ReportSummary, RoundReport, TrainingReport};
pub use selector::{ClientSelector, RandomSelector};
pub use session::{RoundPlan, Session, SessionConfig};
