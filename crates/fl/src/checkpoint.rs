//! Session checkpointing.
//!
//! Long federated runs (the paper's LEAF experiment is 2000 rounds)
//! need to survive restarts. A [`Checkpoint`] captures everything the
//! round engine owns — global weights, virtual clock, round counter —
//! plus, when the run uses a stateful selector, that selector's state
//! ([`SelectorState`]: adaptive credits, probabilities and accuracy
//! history). [`Session::restore`](crate::session::Session) resumes
//! exactly where training left off: because every per-round source of
//! randomness is keyed by `(seed, client, round)`, a restored run is
//! bit-identical to one that never stopped — including credit-based
//! adaptive runs, whose selector restores through
//! [`ClientSelector::restore_state`](crate::selector::ClientSelector)
//! (tested in `tests/end_to_end.rs`).
//!
//! Static selectors are stateless given the round number and export
//! `None`.

use serde::{Deserialize, Serialize};
use tifl_tensor::ParamVec;

/// Serialisable state of a stateful client selector (the adaptive
/// credit-based algorithm's working set). Diagnostics like tier
/// histories are deliberately excluded: they never influence future
/// selections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectorState {
    /// Current per-tier selection probabilities.
    pub probs: Vec<f64>,
    /// Remaining credits per tier.
    pub credits: Vec<u64>,
    /// The tier whose accuracy trend gates the next probability update.
    pub current_tier: usize,
    /// Observed per-tier holdout accuracies, keyed by round, ascending.
    pub acc_history: Vec<(u64, Vec<f64>)>,
}

/// A serialisable snapshot of a training session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Rounds completed when the snapshot was taken.
    pub round: u64,
    /// Virtual time at the snapshot.
    pub time: f64,
    /// Global model parameters.
    pub global: ParamVec,
    /// State of the run's selector, when it has any (`None` for
    /// stateless selectors and for checkpoints written before this
    /// field existed).
    #[serde(default)]
    pub selector: Option<SelectorState>,
}

impl Checkpoint {
    /// Serialise to JSON.
    ///
    /// # Panics
    /// Never — all fields are plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint is plain data")
    }

    /// Parse from JSON.
    ///
    /// # Errors
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let c = Checkpoint {
            round: 123,
            time: 456.75,
            global: ParamVec(vec![1.0, -2.5, 3.25]),
            selector: None,
        };
        let back = Checkpoint::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn json_round_trip_with_selector_state() {
        let c = Checkpoint {
            round: 50,
            time: 10.5,
            global: ParamVec(vec![0.0]),
            selector: Some(SelectorState {
                probs: vec![0.25, 0.75],
                credits: vec![3, 0],
                current_tier: 1,
                acc_history: vec![(9, vec![0.5, 0.6]), (19, vec![0.7, 0.8])],
            }),
        };
        let back = Checkpoint::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn selector_field_defaults_for_old_checkpoints() {
        // A pre-selector-state checkpoint (no `selector` key) still
        // parses, whatever the shim's ParamVec encoding looks like.
        #[derive(serde::Serialize)]
        struct Old {
            round: u64,
            time: f64,
            global: ParamVec,
        }
        let json = serde_json::to_string(&Old {
            round: 1,
            time: 2.0,
            global: ParamVec(vec![1.0]),
        })
        .unwrap();
        let c = Checkpoint::from_json(&json).unwrap();
        assert_eq!(c.selector, None);
        assert_eq!(c.round, 1);
        assert_eq!(c.global, ParamVec(vec![1.0]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Checkpoint::from_json("{not json").is_err());
    }
}
