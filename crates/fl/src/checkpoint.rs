//! Session checkpointing.
//!
//! Long federated runs (the paper's LEAF experiment is 2000 rounds)
//! need to survive restarts. A [`Checkpoint`] captures everything the
//! round engine owns — global weights, virtual clock, round counter —
//! and [`Session::restore`](crate::session::Session) resumes exactly
//! where training left off: because every per-round source of
//! randomness is keyed by `(seed, client, round)`, a restored run is
//! bit-identical to one that never stopped (tested in
//! `tests/end_to_end.rs`).
//!
//! Selector state (adaptive credits, accuracy history) is the
//! scheduler's to checkpoint; the static selectors are stateless given
//! the round number.

use serde::{Deserialize, Serialize};
use tifl_tensor::ParamVec;

/// A serialisable snapshot of a training session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Rounds completed when the snapshot was taken.
    pub round: u64,
    /// Virtual time at the snapshot.
    pub time: f64,
    /// Global model parameters.
    pub global: ParamVec,
}

impl Checkpoint {
    /// Serialise to JSON.
    ///
    /// # Panics
    /// Never — all fields are plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint is plain data")
    }

    /// Parse from JSON.
    ///
    /// # Errors
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let c = Checkpoint {
            round: 123,
            time: 456.75,
            global: ParamVec(vec![1.0, -2.5, 3.25]),
        };
        let back = Checkpoint::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Checkpoint::from_json("{not json").is_err());
    }
}
