//! Sequential model container.

use crate::layer::Layer;
use crate::loss::softmax_cross_entropy;
use crate::optim::Optimizer;
use tifl_tensor::{ops, Matrix, ParamVec};

/// A stack of layers trained with softmax cross-entropy.
///
/// This is the "model" unit the FL layer clones to clients each round:
/// it can export/import all parameters as a flat [`ParamVec`]
/// ([`Sequential::params`] / [`Sequential::set_params`]), which is what
/// the aggregator averages.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Build from a list of layers.
    #[must_use]
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Approximate FLOPs to process one sample (forward + backward).
    /// The simulator's latency model scales this by sample count and the
    /// client's CPU share.
    #[must_use]
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_per_sample()).sum()
    }

    /// Size of a serialised model update in bytes (4 bytes/param), used
    /// by the simulator's communication model.
    #[must_use]
    pub fn update_bytes(&self) -> u64 {
        4 * self.param_count() as u64
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: Matrix, train: bool) -> Matrix {
        self.layers
            .iter_mut()
            .fold(x, |acc, layer| layer.forward(acc, train))
    }

    /// Backward pass through all layers (call after `forward`).
    pub fn backward(&mut self, grad: Matrix) -> Matrix {
        self.layers
            .iter_mut()
            .rev()
            .fold(grad, |acc, layer| layer.backward(acc))
    }

    /// Export all parameters as a flat vector.
    #[must_use]
    pub fn params(&self) -> ParamVec {
        let mut out = ParamVec::default();
        self.params_into(&mut out);
        out
    }

    /// Export all parameters into a caller-owned buffer, reusing its
    /// capacity. Allocation-free once `out` has grown to `param_count()`.
    pub fn params_into(&self, out: &mut ParamVec) {
        out.0.clear();
        out.0.reserve(self.param_count());
        for layer in &self.layers {
            layer.append_params(&mut out.0);
        }
    }

    /// Export the gradients recorded by the last backward pass.
    #[must_use]
    pub fn grads(&self) -> ParamVec {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.append_grads(&mut out);
        }
        ParamVec(out)
    }

    /// Load parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `params.len() != self.param_count()`.
    pub fn set_params(&mut self, params: &ParamVec) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "set_params length mismatch: {} vs {}",
            params.len(),
            self.param_count()
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.load_params(&params.as_slice()[offset..]);
        }
        debug_assert_eq!(offset, params.len());
    }

    /// One optimisation step on a mini-batch; returns the batch loss.
    pub fn train_batch(&mut self, x: Matrix, labels: &[usize], opt: &mut dyn Optimizer) -> f32 {
        let logits = self.forward(x, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        self.backward(dlogits);
        let grads = self.grads();
        let mut params = self.params();
        opt.step(&mut params, &grads);
        self.set_params(&params);
        loss
    }

    /// Evaluate mean loss and accuracy on a labelled set (no dropout).
    #[must_use]
    pub fn evaluate(&mut self, x: &Matrix, labels: &[usize]) -> EvalResult {
        assert_eq!(x.rows(), labels.len(), "evaluate: label count mismatch");
        if labels.is_empty() {
            return EvalResult {
                loss: 0.0,
                accuracy: 0.0,
                samples: 0,
            };
        }
        let logits = self.forward(x.clone(), false);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        let preds = ops::row_argmax(&logits);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        EvalResult {
            loss,
            accuracy: correct as f64 / labels.len() as f64,
            samples: labels.len(),
        }
    }
}

/// Result of [`Sequential::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use crate::optim::Sgd;
    use tifl_tensor::seed_rng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = seed_rng(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 16, &mut rng)),
            Box::new(Relu::new(16)),
            Box::new(Dense::new(16, 3, &mut rng)),
        ])
    }

    /// A linearly separable 3-class toy problem.
    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        use rand::Rng;
        let mut rng = seed_rng(seed);
        let mut x = Matrix::zeros(n, 4);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..3usize);
            let row = x.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = rng.gen::<f32>() * 0.2 + if j == class { 1.0 } else { 0.0 };
            }
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn params_round_trip() {
        let m = tiny_mlp(0);
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        let mut m2 = tiny_mlp(1);
        m2.set_params(&p);
        assert_eq!(m2.params(), p);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_params_rejects_wrong_length() {
        let mut m = tiny_mlp(0);
        m.set_params(&ParamVec::zeros(3));
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut m = tiny_mlp(2);
        let (x, y) = toy_data(128, 3);
        let mut opt = Sgd::new(0.5);
        let first = m.train_batch(x.clone(), &y, &mut opt);
        let mut last = first;
        for _ in 0..60 {
            last = m.train_batch(x.clone(), &y, &mut opt);
        }
        assert!(last < first * 0.5, "loss {first} -> {last} did not halve");
        let eval = m.evaluate(&x, &y);
        assert!(eval.accuracy > 0.9, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn evaluate_empty_set_is_zero() {
        let mut m = tiny_mlp(4);
        let r = m.evaluate(&Matrix::zeros(0, 4), &[]);
        assert_eq!(r.samples, 0);
        assert_eq!(r.accuracy, 0.0);
    }

    #[test]
    fn identical_seeds_give_identical_training() {
        let run = || {
            let mut m = tiny_mlp(5);
            let (x, y) = toy_data(64, 6);
            let mut opt = Sgd::new(0.1);
            for _ in 0..5 {
                m.train_batch(x.clone(), &y, &mut opt);
            }
            m.params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flops_positive_and_additive() {
        let m = tiny_mlp(7);
        // dense(4x16): 6*64, relu: 32, dense(16x3): 6*48
        assert_eq!(m.flops_per_sample(), 6 * 64 + 32 + 6 * 48);
        assert_eq!(m.update_bytes(), 4 * m.param_count() as u64);
    }
}
