//! From-scratch neural-network substrate for the TiFL reproduction.
//!
//! The paper trains small Keras CNNs with TensorFlow; this crate provides
//! the equivalent building blocks in pure Rust: composable [`layer`]s, a
//! [`model::Sequential`] container, softmax cross-entropy [`loss`],
//! [`optim`] (SGD and RMSprop, the two optimisers used in §5), accuracy
//! [`metrics`], and per-layer FLOP counting (used by the simulator's
//! latency model).
//!
//! Models flatten to [`tifl_tensor::ParamVec`] so the FL layer can
//! aggregate them without knowing their structure.

#![forbid(unsafe_code)]

pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optim;

pub use layer::Layer;
pub use loss::softmax_cross_entropy;
pub use model::Sequential;
pub use optim::{Optimizer, RmsProp, Sgd};
