//! Loss functions.

use tifl_tensor::Matrix;

/// Numerically stable softmax cross-entropy.
///
/// Takes raw logits (`batch x classes`) and integer labels; returns the
/// mean loss over the batch and the gradient w.r.t. the logits
/// (`(softmax - onehot) / batch`), ready to feed into the model's
/// backward pass.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
#[must_use]
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    let (batch, classes) = logits.shape();
    assert_eq!(labels.len(), batch, "label count must match batch size");
    assert!(batch > 0, "empty batch");

    let mut grad = Matrix::zeros(batch, classes);
    let mut total_loss = 0.0f64;
    let inv_batch = 1.0 / batch as f32;

    for (i, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let grow = grad.row_mut(i);
        for (g, &z) in grow.iter_mut().zip(row) {
            let e = (z - max).exp();
            *g = e;
            sum += e;
        }
        let log_sum = sum.ln();
        total_loss += f64::from(log_sum - (row[label] - max));
        for g in grow.iter_mut() {
            *g = *g / sum * inv_batch;
        }
        grow[label] -= inv_batch;
    }

    ((total_loss / batch as f64) as f32, grad)
}

/// Softmax probabilities (row-wise), for inspection / calibration tests.
#[must_use]
pub fn softmax(logits: &Matrix) -> Matrix {
    let (batch, classes) = logits.shape();
    let mut out = Matrix::zeros(batch, classes);
    for i in 0..batch {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let orow = out.row_mut(i);
        let mut sum = 0.0f32;
        for (o, &z) in orow.iter_mut().zip(row) {
            *o = (z - max).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Mean-squared-error loss and gradient, `mean((pred-target)^2)`.
///
/// # Panics
/// Panics if the shapes differ.
#[must_use]
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f64;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let d = p - t;
        loss += f64::from(d * d);
        *g = 2.0 * d / n;
    }
    ((loss / f64::from(n)) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Matrix::zeros(4, 10);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits[(0, 1)] = 20.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.3, -0.8, 0.1, 1.2, 0.4, -0.5]);
        let labels = [1usize, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp[(r, c)] += eps;
                let mut lm = logits.clone();
                lm[(r, c)] -= eps;
                let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
                let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
                let fd = (loss_p - loss_m) / (2.0 * eps);
                assert!(
                    (fd - grad[(r, c)]).abs() < 1e-3,
                    "({r},{c}): fd {fd} vs analytic {}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let logits = Matrix::from_vec(2, 3, vec![5.0, 1.0, -2.0, 0.0, 0.0, 0.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn mse_zero_for_equal_inputs() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = softmax_cross_entropy(&Matrix::zeros(1, 3), &[3]);
    }
}
