//! Composable layers.
//!
//! Each layer owns its parameters and the activation cache needed for the
//! backward pass. Layers communicate through row-major matrices whose
//! rows are samples; convolutional layers interpret the feature columns
//! as a flattened `channels x height x width` volume described by
//! [`Shape3`].

use rand::rngs::StdRng;
use rand::Rng;
use tifl_tensor::{init, ops, Matrix};

/// Spatial interpretation of a feature vector: `channels x height x width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape3 {
    /// Number of channels.
    pub c: usize,
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
}

impl Shape3 {
    /// Total number of features (`c*h*w`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// True when the volume is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A differentiable layer.
///
/// The contract is the classic two-pass protocol: `forward` must be
/// called before `backward`, and `backward` consumes the cache written by
/// the most recent `forward`.
pub trait Layer: Send {
    /// Human-readable layer name (diagnostics only).
    fn name(&self) -> &'static str;

    /// Forward pass. `train` enables stochastic behaviour (dropout).
    fn forward(&mut self, x: Matrix, train: bool) -> Matrix;

    /// Backward pass: receives `dL/d(output)`, returns `dL/d(input)` and
    /// records parameter gradients internally.
    fn backward(&mut self, grad: Matrix) -> Matrix;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Append the parameters, in a fixed order, to `out`.
    fn append_params(&self, _out: &mut Vec<f32>) {}

    /// Append the gradients recorded by the last `backward`, in the same
    /// order as [`Layer::append_params`].
    fn append_grads(&self, _out: &mut Vec<f32>) {}

    /// Load parameters from the front of `src`, returning how many values
    /// were consumed. Must consume exactly [`Layer::param_count`].
    fn load_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    /// Approximate FLOPs needed to push one sample through the forward
    /// and backward pass. Feeds the simulator's latency model.
    fn flops_per_sample(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x W + b`.
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    cache_x: Option<Matrix>,
}

impl Dense {
    /// New dense layer with Xavier-uniform weights and zero bias.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            w: init::xavier_uniform(in_features, out_features, rng),
            b: vec![0.0; out_features],
            grad_w: Matrix::zeros(in_features, out_features),
            grad_b: vec![0.0; out_features],
            cache_x: None,
        }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.w.rows()
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.w.cols()
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        let mut y = ops::matmul(&x, &self.w);
        ops::add_bias(&mut y, &self.b);
        self.cache_x = Some(x);
        y
    }

    fn backward(&mut self, grad: Matrix) -> Matrix {
        let x = self
            .cache_x
            .take()
            .expect("Dense::backward called without a preceding forward");
        self.grad_w = ops::matmul_transpose_a(&x, &grad);
        self.grad_b = ops::col_sum(&grad);
        ops::matmul_transpose_b(&grad, &self.w)
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn append_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    fn append_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_w.as_slice());
        out.extend_from_slice(&self.grad_b);
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let nw = self.w.len();
        let nb = self.b.len();
        self.w.as_mut_slice().copy_from_slice(&src[..nw]);
        self.b.copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    fn flops_per_sample(&self) -> u64 {
        // forward GEMM + two backward GEMMs, 2 flops per MAC.
        6 * (self.w.rows() * self.w.cols()) as u64
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
    width: usize,
}

impl Relu {
    /// New ReLU for feature width `width` (used only for FLOP counting).
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            mask: Vec::new(),
            width,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, mut x: Matrix, _train: bool) -> Matrix {
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.as_mut_slice() {
            let keep = *v > 0.0;
            self.mask.push(keep);
            if !keep {
                *v = 0.0;
            }
        }
        x
    }

    fn backward(&mut self, mut grad: Matrix) -> Matrix {
        assert_eq!(
            grad.len(),
            self.mask.len(),
            "Relu::backward shape mismatch with cached forward"
        );
        for (g, &keep) in grad.as_mut_slice().iter_mut().zip(&self.mask) {
            if !keep {
                *g = 0.0;
            }
        }
        grad
    }

    fn flops_per_sample(&self) -> u64 {
        2 * self.width as u64
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: at train time zeroes activations with probability
/// `p` and scales survivors by `1/(1-p)`; identity at eval time.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Vec<f32>,
    width: usize,
}

impl Dropout {
    /// New dropout layer with drop probability `p in [0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn new(p: f32, width: usize, rng: StdRng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Self {
            p,
            rng,
            mask: Vec::new(),
            width,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, mut x: Matrix, train: bool) -> Matrix {
        if !train || self.p == 0.0 {
            // Identity; mark mask empty so backward passes gradients through.
            self.mask.clear();
            return x;
        }
        let scale = 1.0 / (1.0 - self.p);
        self.mask.clear();
        self.mask.reserve(x.len());
        for v in x.as_mut_slice() {
            let keep = self.rng.gen::<f32>() >= self.p;
            let m = if keep { scale } else { 0.0 };
            self.mask.push(m);
            *v *= m;
        }
        x
    }

    fn backward(&mut self, mut grad: Matrix) -> Matrix {
        if self.mask.is_empty() {
            return grad;
        }
        assert_eq!(
            grad.len(),
            self.mask.len(),
            "Dropout::backward shape mismatch with cached forward"
        );
        for (g, &m) in grad.as_mut_slice().iter_mut().zip(&self.mask) {
            *g *= m;
        }
        grad
    }

    fn flops_per_sample(&self) -> u64 {
        2 * self.width as u64
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution (stride 1, no padding) over flattened `CxHxW` columns.
pub struct Conv2d {
    in_shape: Shape3,
    out_channels: usize,
    ksize: usize,
    /// Weights laid out `[out_c][in_c][kh][kw]`, stored as a matrix of
    /// shape `(out_c, in_c*k*k)` so the forward pass is a GEMM over
    /// im2col patches.
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    cache_cols: Option<Matrix>,
    cache_batch: usize,
}

impl Conv2d {
    /// New convolution layer. Output spatial size is
    /// `(h - k + 1) x (w - k + 1)`.
    ///
    /// # Panics
    /// Panics if the kernel does not fit in the input.
    #[must_use]
    pub fn new(in_shape: Shape3, out_channels: usize, ksize: usize, rng: &mut StdRng) -> Self {
        assert!(
            ksize <= in_shape.h && ksize <= in_shape.w,
            "kernel {ksize} larger than input {}x{}",
            in_shape.h,
            in_shape.w
        );
        let fan_in = in_shape.c * ksize * ksize;
        Self {
            in_shape,
            out_channels,
            ksize,
            w: init::he_uniform(out_channels, fan_in, rng),
            b: vec![0.0; out_channels],
            grad_w: Matrix::zeros(out_channels, fan_in),
            grad_b: vec![0.0; out_channels],
            cache_cols: None,
            cache_batch: 0,
        }
    }

    /// Output volume shape.
    #[must_use]
    pub fn out_shape(&self) -> Shape3 {
        Shape3 {
            c: self.out_channels,
            h: self.in_shape.h - self.ksize + 1,
            w: self.in_shape.w - self.ksize + 1,
        }
    }

    /// im2col: expand every output position of every sample into a row of
    /// the patch matrix with `in_c*k*k` columns.
    fn im2col(&self, x: &Matrix) -> Matrix {
        let Shape3 { c, h, w } = self.in_shape;
        let k = self.ksize;
        let oh = h - k + 1;
        let ow = w - k + 1;
        let batch = x.rows();
        let mut cols = Matrix::zeros(batch * oh * ow, c * k * k);
        for s in 0..batch {
            let xrow = x.row(s);
            for oy in 0..oh {
                for ox in 0..ow {
                    let dst = cols.row_mut(s * oh * ow + oy * ow + ox);
                    let mut di = 0;
                    for ch in 0..c {
                        let base = ch * h * w;
                        for ky in 0..k {
                            let src = base + (oy + ky) * w + ox;
                            dst[di..di + k].copy_from_slice(&xrow[src..src + k]);
                            di += k;
                        }
                    }
                }
            }
        }
        cols
    }

    /// Reverse of im2col: scatter-add patch-gradient rows back to the
    /// input layout.
    fn col2im(&self, cols: &Matrix, batch: usize) -> Matrix {
        let Shape3 { c, h, w } = self.in_shape;
        let k = self.ksize;
        let oh = h - k + 1;
        let ow = w - k + 1;
        let mut x = Matrix::zeros(batch, c * h * w);
        for s in 0..batch {
            let xrow = x.row_mut(s);
            for oy in 0..oh {
                for ox in 0..ow {
                    let src = cols.row(s * oh * ow + oy * ow + ox);
                    let mut si = 0;
                    for ch in 0..c {
                        let base = ch * h * w;
                        for ky in 0..k {
                            let dst = base + (oy + ky) * w + ox;
                            for kx in 0..k {
                                xrow[dst + kx] += src[si + kx];
                            }
                            si += k;
                        }
                    }
                }
            }
        }
        x
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_shape.len(),
            "Conv2d input width does not match declared shape"
        );
        let batch = x.rows();
        let out_shape = self.out_shape();
        let oh_ow = out_shape.h * out_shape.w;
        let cols = self.im2col(&x);
        // (batch*oh*ow, fan_in) x (fan_in, out_c)
        let prod = ops::matmul_transpose_b(&cols, &self.w);
        // Rearrange to (batch, out_c*oh*ow) with channel-major columns.
        let mut y = Matrix::zeros(batch, out_shape.len());
        for s in 0..batch {
            let yrow = y.row_mut(s);
            for p in 0..oh_ow {
                let prow = prod.row(s * oh_ow + p);
                for (oc, &v) in prow.iter().enumerate() {
                    yrow[oc * oh_ow + p] = v + self.b[oc];
                }
            }
        }
        self.cache_cols = Some(cols);
        self.cache_batch = batch;
        y
    }

    fn backward(&mut self, grad: Matrix) -> Matrix {
        let cols = self
            .cache_cols
            .take()
            .expect("Conv2d::backward called without a preceding forward");
        let batch = self.cache_batch;
        let out_shape = self.out_shape();
        let oh_ow = out_shape.h * out_shape.w;

        // Un-rearrange grad to patch-major (batch*oh*ow, out_c).
        let mut gp = Matrix::zeros(batch * oh_ow, self.out_channels);
        for s in 0..batch {
            let grow = grad.row(s);
            for p in 0..oh_ow {
                let dst = gp.row_mut(s * oh_ow + p);
                for (oc, d) in dst.iter_mut().enumerate() {
                    *d = grow[oc * oh_ow + p];
                }
            }
        }

        // dW = gp^T * cols ; db = column sums of gp.
        self.grad_w = ops::matmul_transpose_a(&gp, &cols);
        self.grad_b = ops::col_sum(&gp);
        // dcols = gp * W
        let dcols = ops::matmul(&gp, &self.w);
        self.col2im(&dcols, batch)
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn append_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    fn append_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_w.as_slice());
        out.extend_from_slice(&self.grad_b);
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let nw = self.w.len();
        let nb = self.b.len();
        self.w.as_mut_slice().copy_from_slice(&src[..nw]);
        self.b.copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    fn flops_per_sample(&self) -> u64 {
        let out = self.out_shape();
        let fan_in = self.in_shape.c * self.ksize * self.ksize;
        // forward + two backward GEMM-equivalents.
        6 * (out.h * out.w * out.c * fan_in) as u64
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// 2x2 max pooling with stride 2 over flattened `CxHxW` columns.
pub struct MaxPool2d {
    in_shape: Shape3,
    argmax: Vec<usize>,
    cache_batch: usize,
}

impl MaxPool2d {
    /// New pooling layer.
    ///
    /// # Panics
    /// Panics if height or width is not even.
    #[must_use]
    pub fn new(in_shape: Shape3) -> Self {
        assert!(
            in_shape.h.is_multiple_of(2) && in_shape.w.is_multiple_of(2),
            "MaxPool2d requires even spatial dims, got {}x{}",
            in_shape.h,
            in_shape.w
        );
        Self {
            in_shape,
            argmax: Vec::new(),
            cache_batch: 0,
        }
    }

    /// Output volume shape.
    #[must_use]
    pub fn out_shape(&self) -> Shape3 {
        Shape3 {
            c: self.in_shape.c,
            h: self.in_shape.h / 2,
            w: self.in_shape.w / 2,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: Matrix, _train: bool) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_shape.len(),
            "MaxPool2d input width mismatch"
        );
        let Shape3 { c, h, w } = self.in_shape;
        let (oh, ow) = (h / 2, w / 2);
        let batch = x.rows();
        let mut y = Matrix::zeros(batch, c * oh * ow);
        self.argmax.clear();
        self.argmax.resize(batch * c * oh * ow, 0);
        for s in 0..batch {
            let xrow = x.row(s);
            let yrow = y.row_mut(s);
            for ch in 0..c {
                let base = ch * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let i0 = base + (2 * oy) * w + 2 * ox;
                        let candidates = [i0, i0 + 1, i0 + w, i0 + w + 1];
                        let (best_idx, best_val) = candidates
                            .iter()
                            .map(|&i| (i, xrow[i]))
                            .max_by(|a, b| {
                                a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .expect("non-empty window");
                        let oi = ch * oh * ow + oy * ow + ox;
                        yrow[oi] = best_val;
                        self.argmax[s * c * oh * ow + oi] = best_idx;
                    }
                }
            }
        }
        self.cache_batch = batch;
        y
    }

    fn backward(&mut self, grad: Matrix) -> Matrix {
        let batch = self.cache_batch;
        let out_len = self.out_shape().len();
        assert_eq!(grad.rows(), batch, "MaxPool2d::backward batch mismatch");
        let mut dx = Matrix::zeros(batch, self.in_shape.len());
        for s in 0..batch {
            let grow = grad.row(s);
            let drow = dx.row_mut(s);
            for oi in 0..out_len {
                drow[self.argmax[s * out_len + oi]] += grow[oi];
            }
        }
        dx
    }

    fn flops_per_sample(&self) -> u64 {
        4 * self.in_shape.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_tensor::seed_rng;

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 2, &mut seed_rng(0));
        d.load_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        let y = d.forward(Matrix::from_vec(1, 2, vec![1.0, 1.0]), false);
        // [1,1] * [[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_param_round_trip() {
        let d = Dense::new(3, 4, &mut seed_rng(1));
        let mut flat = Vec::new();
        d.append_params(&mut flat);
        assert_eq!(flat.len(), d.param_count());
        let mut d2 = Dense::new(3, 4, &mut seed_rng(2));
        let consumed = d2.load_params(&flat);
        assert_eq!(consumed, flat.len());
        let mut flat2 = Vec::new();
        d2.append_params(&mut flat2);
        assert_eq!(flat, flat2);
    }

    /// Finite-difference check of Dense gradients.
    #[test]
    fn dense_gradients_match_finite_difference() {
        let mut rng = seed_rng(3);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);
        // Loss = sum of outputs; dL/dy = ones.
        let y = d.forward(x.clone(), true);
        let ones = Matrix::filled(y.rows(), y.cols(), 1.0);
        let dx = d.backward(ones);

        let mut params = Vec::new();
        d.append_params(&mut params);
        let mut grads = Vec::new();
        d.append_grads(&mut grads);

        let eps = 1e-3f32;
        for pi in 0..params.len() {
            let mut plus = params.clone();
            plus[pi] += eps;
            let mut minus = params.clone();
            minus[pi] -= eps;
            d.load_params(&plus);
            let lp: f32 = d.forward(x.clone(), true).as_slice().iter().sum();
            d.load_params(&minus);
            let lm: f32 = d.forward(x.clone(), true).as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[pi]).abs() < 1e-2,
                "param {pi}: finite-diff {fd} vs analytic {}",
                grads[pi]
            );
        }
        // Input gradient: every input contributes sum of its weight row.
        d.load_params(&params);
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let lp: f32 = d.forward(xp, true).as_slice().iter().sum();
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let lm: f32 = d.forward(xm, true).as_slice().iter().sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - dx[(r, c)]).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn relu_zeroes_negatives_and_masks_grads() {
        let mut r = Relu::new(4);
        let y = r.forward(Matrix::from_vec(1, 4, vec![-1.0, 2.0, 0.0, 3.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        let g = r.backward(Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_identity_at_eval() {
        let mut d = Dropout::new(0.5, 4, seed_rng(5));
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let y = d.forward(x.clone(), false);
        assert_eq!(y, x);
        let g = d.backward(Matrix::filled(1, 4, 1.0));
        assert_eq!(g.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn dropout_scales_survivors_at_train() {
        let mut d = Dropout::new(0.5, 1000, seed_rng(6));
        let y = d.forward(Matrix::filled(1, 1000, 1.0), true);
        let survivors: Vec<f32> = y.as_slice().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(survivors.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        // roughly half survive
        let frac = survivors.len() as f32 / 1000.0;
        assert!((0.4..0.6).contains(&frac), "survivor fraction {frac}");
    }

    #[test]
    fn maxpool_forward_backward() {
        let shape = Shape3 { c: 1, h: 2, w: 2 };
        let mut p = MaxPool2d::new(shape);
        let y = p.forward(Matrix::from_vec(1, 4, vec![1.0, 5.0, 3.0, 2.0]), true);
        assert_eq!(y.as_slice(), &[5.0]);
        let g = p.backward(Matrix::from_vec(1, 1, vec![7.0]));
        assert_eq!(g.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let shape = Shape3 { c: 1, h: 3, w: 3 };
        let mut conv = Conv2d::new(shape, 1, 1, &mut seed_rng(7));
        conv.load_params(&[2.0, 0.0]); // w = [[2]], b = 0
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(x, false);
        assert_eq!(y.cols(), 9);
        for (i, &v) in y.as_slice().iter().enumerate() {
            assert!((v - 2.0 * (i + 1) as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn conv2d_gradients_match_finite_difference() {
        let shape = Shape3 { c: 2, h: 4, w: 4 };
        let mut rng = seed_rng(8);
        let mut conv = Conv2d::new(shape, 3, 3, &mut rng);
        let x = Matrix::from_fn(2, shape.len(), |r, c| {
            ((r * 13 + c * 7) % 11) as f32 / 11.0 - 0.5
        });
        let y = conv.forward(x.clone(), true);
        let ones = Matrix::filled(y.rows(), y.cols(), 1.0);
        let _ = conv.backward(ones);
        let mut params = Vec::new();
        conv.append_params(&mut params);
        let mut grads = Vec::new();
        conv.append_grads(&mut grads);

        let eps = 1e-2f32;
        // Check a deterministic sample of parameters (full sweep is slow).
        for pi in (0..params.len()).step_by(7) {
            let mut plus = params.clone();
            plus[pi] += eps;
            conv.load_params(&plus);
            let lp: f32 = conv.forward(x.clone(), true).as_slice().iter().sum();
            let mut minus = params.clone();
            minus[pi] -= eps;
            conv.load_params(&minus);
            let lm: f32 = conv.forward(x.clone(), true).as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[pi]).abs() < 0.05 * grads[pi].abs().max(1.0),
                "param {pi}: fd {fd} vs analytic {}",
                grads[pi]
            );
        }
    }

    #[test]
    fn conv_pool_shapes_compose() {
        let in_shape = Shape3 { c: 1, h: 8, w: 8 };
        let mut rng = seed_rng(9);
        let conv = Conv2d::new(in_shape, 4, 3, &mut rng);
        let cs = conv.out_shape();
        assert_eq!(cs, Shape3 { c: 4, h: 6, w: 6 });
        let pool = MaxPool2d::new(cs);
        assert_eq!(pool.out_shape(), Shape3 { c: 4, h: 3, w: 3 });
    }
}
