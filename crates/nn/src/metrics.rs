//! Classification metrics.

use tifl_tensor::{ops, Matrix};

/// Top-1 accuracy of `logits` against integer `labels`.
///
/// # Panics
/// Panics if row counts disagree.
#[must_use]
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "accuracy: label count mismatch"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let preds = ops::row_argmax(logits);
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Per-class accuracy: `result[c]` is the accuracy over samples whose
/// true label is `c` (`None` when the class is absent from `labels`).
///
/// Used to measure the class-bias effects the paper attributes to
/// aggressive tier-selection policies.
#[must_use]
pub fn per_class_accuracy(logits: &Matrix, labels: &[usize], classes: usize) -> Vec<Option<f64>> {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "per_class_accuracy: label count mismatch"
    );
    let preds = ops::row_argmax(logits);
    let mut correct = vec![0usize; classes];
    let mut total = vec![0usize; classes];
    for (&p, &l) in preds.iter().zip(labels) {
        assert!(l < classes, "label {l} out of range");
        total[l] += 1;
        if p == l {
            correct[l] += 1;
        }
    }
    correct
        .iter()
        .zip(&total)
        .map(|(&c, &t)| {
            if t == 0 {
                None
            } else {
                Some(c as f64 / t as f64)
            }
        })
        .collect()
}

/// Confusion matrix: `m[(true, pred)]` counts.
#[must_use]
pub fn confusion_matrix(logits: &Matrix, labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    let preds = ops::row_argmax(logits);
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &l) in preds.iter().zip(labels) {
        m[l][p.min(classes - 1)] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(preds: &[usize], classes: usize) -> Matrix {
        let mut m = Matrix::zeros(preds.len(), classes);
        for (i, &p) in preds.iter().enumerate() {
            m[(i, p)] = 1.0;
        }
        m
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = logits_for(&[0, 1, 2, 1], 3);
        assert_eq!(accuracy(&logits, &[0, 1, 0, 1]), 0.75);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        assert_eq!(accuracy(&Matrix::zeros(0, 3), &[]), 0.0);
    }

    #[test]
    fn per_class_handles_absent_classes() {
        let logits = logits_for(&[0, 0], 3);
        let pc = per_class_accuracy(&logits, &[0, 1], 3);
        assert_eq!(pc[0], Some(1.0));
        assert_eq!(pc[1], Some(0.0));
        assert_eq!(pc[2], None);
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect() {
        let logits = logits_for(&[0, 1, 2], 3);
        let cm = confusion_matrix(&logits, &[0, 1, 2], 3);
        for (i, row) in cm.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, usize::from(i == j));
            }
        }
    }
}
