//! Optimisers.
//!
//! The paper's synthetic-dataset experiments use RMSprop with initial
//! learning rate 0.01 and per-round decay 0.995 (§5); the LEAF/FEMNIST
//! experiments use plain SGD with lr 0.004. Both operate on flat
//! [`ParamVec`]s so they are agnostic to model structure.

use serde::{Deserialize, Serialize};
use tifl_tensor::ParamVec;

/// A first-order optimiser over flat parameter vectors.
pub trait Optimizer: Send {
    /// Apply one update step: mutate `params` using `grads`.
    ///
    /// # Panics
    /// Implementations panic on length mismatch between `params`/`grads`.
    fn step(&mut self, params: &mut ParamVec, grads: &ParamVec);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Multiply the learning rate by `factor` (per-round decay).
    fn decay_lr(&mut self, factor: f32);

    /// Reset any accumulated state (fresh client, new round).
    fn reset_state(&mut self);
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no momentum.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    #[must_use]
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamVec, grads: &ParamVec) {
        assert_eq!(params.len(), grads.len(), "Sgd::step length mismatch");
        if self.momentum == 0.0 {
            params.axpy(-self.lr, grads);
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((v, p), &g) in self
            .velocity
            .iter_mut()
            .zip(params.0.iter_mut())
            .zip(grads.as_slice())
        {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// RMSprop: adaptive per-parameter step sizes from a running mean of
/// squared gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsProp {
    lr: f32,
    rho: f32,
    eps: f32,
    cache: Vec<f32>,
}

impl RmsProp {
    /// RMSprop with the paper's defaults (`rho = 0.9`, `eps = 1e-7`).
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Self::with_params(lr, 0.9, 1e-7)
    }

    /// RMSprop with explicit smoothing constant and epsilon.
    #[must_use]
    pub fn with_params(lr: f32, rho: f32, eps: f32) -> Self {
        Self {
            lr,
            rho,
            eps,
            cache: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut ParamVec, grads: &ParamVec) {
        assert_eq!(params.len(), grads.len(), "RmsProp::step length mismatch");
        if self.cache.len() != params.len() {
            self.cache = vec![0.0; params.len()];
        }
        for ((c, p), &g) in self
            .cache
            .iter_mut()
            .zip(params.0.iter_mut())
            .zip(grads.as_slice())
        {
            *c = self.rho * *c + (1.0 - self.rho) * g * g;
            *p -= self.lr * g / (c.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    fn reset_state(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.1);
        let mut p = ParamVec(vec![1.0, -1.0]);
        opt.step(&mut p, &ParamVec(vec![2.0, -2.0]));
        assert_eq!(p.0, vec![0.8, -0.8]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut p = ParamVec(vec![0.0]);
        let g = ParamVec(vec![1.0]);
        opt.step(&mut p, &g); // v=1, p=-0.1
        opt.step(&mut p, &g); // v=1.9, p=-0.29
        assert!((p.0[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn rmsprop_normalises_gradient_scale() {
        // With very different gradient magnitudes, RMSprop steps should be
        // of comparable size after warm-up.
        let mut opt = RmsProp::new(0.01);
        let mut p = ParamVec(vec![0.0, 0.0]);
        let g = ParamVec(vec![100.0, 0.01]);
        for _ in 0..50 {
            opt.step(&mut p, &g);
        }
        let ratio = p.0[0] / p.0[1];
        assert!(
            (0.5..2.0).contains(&ratio),
            "steps not normalised, ratio {ratio}"
        );
    }

    #[test]
    fn decay_reduces_lr() {
        let mut opt = RmsProp::new(0.01);
        opt.decay_lr(0.995);
        assert!((opt.learning_rate() - 0.00995).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = RmsProp::new(0.01);
        let mut p = ParamVec(vec![0.0]);
        opt.step(&mut p, &ParamVec(vec![1.0]));
        opt.reset_state();
        let mut p2 = ParamVec(vec![0.0]);
        opt.step(&mut p2, &ParamVec(vec![1.0]));
        assert!((p.0[0] - p2.0[0]).abs() < 1e-9, "state leaked across reset");
    }

    #[test]
    fn sgd_minimises_quadratic() {
        // f(x) = (x-3)^2, grad = 2(x-3)
        let mut opt = Sgd::new(0.1);
        let mut p = ParamVec(vec![0.0]);
        for _ in 0..100 {
            let g = ParamVec(vec![2.0 * (p.0[0] - 3.0)]);
            opt.step(&mut p, &g);
        }
        assert!((p.0[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn rmsprop_minimises_quadratic() {
        let mut opt = RmsProp::new(0.05);
        let mut p = ParamVec(vec![10.0]);
        for _ in 0..500 {
            let g = ParamVec(vec![2.0 * (p.0[0] - 3.0)]);
            opt.step(&mut p, &g);
        }
        assert!((p.0[0] - 3.0).abs() < 0.05, "got {}", p.0[0]);
    }
}
