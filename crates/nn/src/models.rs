//! Model factories mirroring the architectures of §5.
//!
//! The paper uses small Keras CNNs (conv-conv-pool-dense for MNIST /
//! FMNIST, a four-conv-layer net for CIFAR-10, and the LEAF default for
//! FEMNIST). Our synthetic datasets are lower-dimensional, so each
//! factory offers the same *family* at a size matched to the generated
//! data: a CNN head over an `8x8` image plus dense classifier, and
//! cheaper MLP / logistic variants used where thousands of federated
//! rounds must run inside a test budget.
//!
//! Every factory takes an explicit RNG so global-model initialisation is
//! reproducible.

use crate::layer::{Conv2d, Dense, Dropout, MaxPool2d, Relu, Shape3};
use crate::model::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tifl_tensor::split_seed;

/// Architecture selector, serialisable so experiment configs can name it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Multinomial logistic regression (single dense layer).
    Logistic {
        /// Input feature count.
        input: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Two-layer MLP with ReLU (the default experiment model).
    Mlp {
        /// Input feature count.
        input: usize,
        /// Hidden width.
        hidden: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Small CNN over a square single-channel image:
    /// conv3x3(c1) - ReLU - conv3x3(c2) - ReLU - maxpool2x2 -
    /// dropout(0.25) - dense(hidden) - ReLU - dropout(0.5) -
    /// dense(classes). This mirrors the paper's MNIST/FMNIST
    /// architecture scaled to the synthetic image size.
    Cnn {
        /// Image side length (must leave even dims after two 3x3 convs).
        side: usize,
        /// Channels of the two conv layers.
        channels: (usize, usize),
        /// Hidden dense width.
        hidden: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl ModelSpec {
    /// Input feature count expected by the model.
    #[must_use]
    pub fn input_features(&self) -> usize {
        match *self {
            ModelSpec::Logistic { input, .. } | ModelSpec::Mlp { input, .. } => input,
            ModelSpec::Cnn { side, .. } => side * side,
        }
    }

    /// Number of output classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        match *self {
            ModelSpec::Logistic { classes, .. }
            | ModelSpec::Mlp { classes, .. }
            | ModelSpec::Cnn { classes, .. } => classes,
        }
    }

    /// Instantiate the model with weights drawn from `seed`.
    #[must_use]
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            ModelSpec::Logistic { input, classes } => {
                Sequential::new(vec![Box::new(Dense::new(input, classes, &mut rng))])
            }
            ModelSpec::Mlp {
                input,
                hidden,
                classes,
            } => Sequential::new(vec![
                Box::new(Dense::new(input, hidden, &mut rng)),
                Box::new(Relu::new(hidden)),
                Box::new(Dense::new(hidden, classes, &mut rng)),
            ]),
            ModelSpec::Cnn {
                side,
                channels,
                hidden,
                classes,
            } => {
                let in_shape = Shape3 {
                    c: 1,
                    h: side,
                    w: side,
                };
                let conv1 = Conv2d::new(in_shape, channels.0, 3, &mut rng);
                let s1 = conv1.out_shape();
                let conv2 = Conv2d::new(s1, channels.1, 3, &mut rng);
                let s2 = conv2.out_shape();
                let pool = MaxPool2d::new(s2);
                let sp = pool.out_shape();
                let flat = sp.len();
                // Dropout RNGs are derived from the model seed so two
                // builds of the same spec+seed behave identically.
                let d1 = Dropout::new(0.25, flat, StdRng::seed_from_u64(split_seed(seed, 101)));
                let d2 = Dropout::new(0.5, hidden, StdRng::seed_from_u64(split_seed(seed, 102)));
                Sequential::new(vec![
                    Box::new(conv1),
                    Box::new(Relu::new(s1.len())),
                    Box::new(conv2),
                    Box::new(Relu::new(s2.len())),
                    Box::new(pool),
                    Box::new(d1),
                    Box::new(Dense::new(flat, hidden, &mut rng)),
                    Box::new(Relu::new(hidden)),
                    Box::new(d2),
                    Box::new(Dense::new(hidden, classes, &mut rng)),
                ])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifl_tensor::Matrix;

    #[test]
    fn logistic_shape() {
        let spec = ModelSpec::Logistic {
            input: 64,
            classes: 10,
        };
        let m = spec.build(0);
        assert_eq!(m.param_count(), 64 * 10 + 10);
    }

    #[test]
    fn mlp_forward_shape() {
        let spec = ModelSpec::Mlp {
            input: 64,
            hidden: 32,
            classes: 10,
        };
        let mut m = spec.build(0);
        let y = m.forward(Matrix::zeros(5, 64), false);
        assert_eq!(y.shape(), (5, 10));
    }

    #[test]
    fn cnn_forward_shape() {
        let spec = ModelSpec::Cnn {
            side: 8,
            channels: (4, 8),
            hidden: 32,
            classes: 10,
        };
        let mut m = spec.build(0);
        let y = m.forward(Matrix::zeros(3, 64), false);
        assert_eq!(y.shape(), (3, 10));
    }

    #[test]
    fn same_seed_same_model() {
        let spec = ModelSpec::Mlp {
            input: 16,
            hidden: 8,
            classes: 4,
        };
        assert_eq!(spec.build(42).params(), spec.build(42).params());
    }

    #[test]
    fn different_seed_different_model() {
        let spec = ModelSpec::Mlp {
            input: 16,
            hidden: 8,
            classes: 4,
        };
        assert_ne!(spec.build(1).params(), spec.build(2).params());
    }

    #[test]
    fn spec_metadata_consistent() {
        let spec = ModelSpec::Cnn {
            side: 8,
            channels: (4, 8),
            hidden: 32,
            classes: 62,
        };
        assert_eq!(spec.input_features(), 64);
        assert_eq!(spec.classes(), 62);
    }
}
