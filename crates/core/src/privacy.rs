//! Differential-privacy compatibility accounting (§4.6).
//!
//! Each client runs an `(ε, δ)`-differentially-private local training
//! step. Random subsampling amplifies the guarantee: with per-round
//! sampling rate `q`, the effective per-round guarantee improves to
//! `(O(qε), qδ)`.
//!
//! * Vanilla FL samples every client with `q = |C| / |K|`.
//! * Tiered FL selects tier `j` with probability `θ_j / n_tiers`
//!   (the paper's normalisation of tier weights) and then each client of
//!   tier `j` with `|C| / |n_j|`, so
//!   `q_j = (θ_j / n_tiers) * |C| / |n_j|` and the overall guarantee is
//!   governed by `q_max = max_j q_j`.
//!
//! The module computes both and verifies the paper's claim that tiering
//! remains compatible with client-level DP (the guarantee stays of the
//! same amplified form).

use serde::{Deserialize, Serialize};

/// A client-level differential-privacy guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpGuarantee {
    /// Privacy loss bound ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
}

impl DpGuarantee {
    /// Build a guarantee.
    ///
    /// # Panics
    /// Panics on negative ε or δ outside `[0, 1]`.
    #[must_use]
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        assert!((0.0..=1.0).contains(&delta), "delta must be in [0,1]");
        Self { epsilon, delta }
    }

    /// Amplification by subsampling at rate `q`:
    /// `(ε, δ) -> (qε, qδ)` (the paper's `O(qε)` with unit constant).
    ///
    /// # Panics
    /// Panics unless `q` is in `[0, 1]`.
    #[must_use]
    pub fn amplify(&self, q: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&q),
            "sampling rate must be in [0,1], got {q}"
        );
        Self {
            epsilon: q * self.epsilon,
            delta: q * self.delta,
        }
    }

    /// True when `self` is at least as strong as `other` (both bounds
    /// no larger).
    #[must_use]
    pub fn at_least_as_strong_as(&self, other: &Self) -> bool {
        self.epsilon <= other.epsilon + 1e-15 && self.delta <= other.delta + 1e-15
    }
}

/// Per-round sampling rate of vanilla FL: `q = |C| / |K|`.
///
/// # Panics
/// Panics if `c > k` or `k == 0`.
#[must_use]
pub fn vanilla_sampling_rate(k: usize, c: usize) -> f64 {
    assert!(k > 0 && c <= k, "invalid pool sizes k={k}, c={c}");
    c as f64 / k as f64
}

/// Per-tier sampling rates `q_j = (θ_j / n_tiers) * |C| / |n_j|`.
///
/// `tier_weights[j] = θ_j` are the tier weights (a probability vector
/// multiplied by `n_tiers` in the paper's notation — pass the selection
/// probabilities `P_j` and this function applies the `1/n_tiers`
/// normalisation internally via `theta_j = P_j * n_tiers`).
///
/// # Panics
/// Panics if lengths mismatch or a tier is smaller than `|C|`.
#[must_use]
pub fn tiered_sampling_rates(tier_sizes: &[usize], tier_probs: &[f64], c: usize) -> Vec<f64> {
    assert_eq!(
        tier_sizes.len(),
        tier_probs.len(),
        "tier vector length mismatch"
    );
    tier_sizes
        .iter()
        .zip(tier_probs)
        .map(|(&n_j, &p_j)| {
            assert!(n_j >= c, "tier of size {n_j} cannot supply {c} clients");
            // P_j = θ_j / n_tiers is exactly the selection probability.
            p_j * c as f64 / n_j as f64
        })
        .collect()
}

/// `q_max = max_j q_j` — the rate governing the tiered guarantee.
///
/// # Panics
/// Panics on an empty rate vector.
#[must_use]
pub fn q_max(rates: &[f64]) -> f64 {
    assert!(!rates.is_empty(), "no tiers");
    rates.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Full §4.6 comparison for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyComparison {
    /// Base per-round guarantee of each client's local mechanism.
    pub base: DpGuarantee,
    /// Vanilla sampling rate `|C|/|K|`.
    pub q_vanilla: f64,
    /// Per-tier rates `q_j`.
    pub q_tiers: Vec<f64>,
    /// `q_max`.
    pub q_max: f64,
    /// Amplified guarantee under vanilla selection.
    pub vanilla: DpGuarantee,
    /// Amplified guarantee under tiered selection.
    pub tiered: DpGuarantee,
}

/// Compute the §4.6 comparison.
#[must_use]
pub fn compare(
    base: DpGuarantee,
    k: usize,
    c: usize,
    tier_sizes: &[usize],
    tier_probs: &[f64],
) -> PrivacyComparison {
    let q_vanilla = vanilla_sampling_rate(k, c);
    let q_tiers = tiered_sampling_rates(tier_sizes, tier_probs, c);
    let qm = q_max(&q_tiers);
    PrivacyComparison {
        base,
        q_vanilla,
        q_max: qm,
        vanilla: base.amplify(q_vanilla),
        tiered: base.amplify(qm),
        q_tiers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_improves_guarantee() {
        let base = DpGuarantee::new(1.0, 1e-5);
        let amp = base.amplify(0.1);
        assert!(amp.at_least_as_strong_as(&base));
        assert!((amp.epsilon - 0.1).abs() < 1e-12);
        assert!((amp.delta - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn vanilla_rate_is_c_over_k() {
        assert!((vanilla_sampling_rate(50, 5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn uniform_tiers_match_vanilla_rate() {
        // 5 tiers of 10, uniform probs, |C| = 5:
        // q_j = 0.2 * 5/10 = 0.1 = |C|/|K|.
        let rates = tiered_sampling_rates(&[10; 5], &[0.2; 5], 5);
        for &r in &rates {
            assert!((r - 0.1).abs() < 1e-12);
        }
        assert!((q_max(&rates) - vanilla_sampling_rate(50, 5)).abs() < 1e-12);
    }

    #[test]
    fn skewed_policy_raises_q_max() {
        // fast policy: all mass on tier 0 -> q_0 = 1.0 * 5/10 = 0.5.
        let probs = [1.0, 0.0, 0.0, 0.0, 0.0];
        let rates = tiered_sampling_rates(&[10; 5], &probs, 5);
        assert!((q_max(&rates) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compare_reports_both_guarantees() {
        let base = DpGuarantee::new(2.0, 1e-5);
        let cmp = compare(base, 50, 5, &[10; 5], &[0.2; 5]);
        assert!(cmp.vanilla.at_least_as_strong_as(&base));
        assert!(cmp.tiered.at_least_as_strong_as(&base));
        // Uniform tiering matches vanilla exactly.
        assert!((cmp.tiered.epsilon - cmp.vanilla.epsilon).abs() < 1e-12);
    }

    #[test]
    fn both_beat_full_participation() {
        // Full participation has q = 1 (no amplification); any subsampled
        // scheme must be stronger.
        let base = DpGuarantee::new(1.0, 1e-5);
        let cmp = compare(base, 50, 5, &[10; 5], &[0.7, 0.1, 0.1, 0.05, 0.05]);
        let full = base.amplify(1.0);
        assert!(cmp.vanilla.at_least_as_strong_as(&full));
        assert!(cmp.tiered.at_least_as_strong_as(&full));
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn amplify_rejects_bad_rate() {
        let _ = DpGuarantee::new(1.0, 0.0).amplify(1.5);
    }

    #[test]
    #[should_panic(expected = "cannot supply")]
    fn tiered_rates_reject_small_tier() {
        let _ = tiered_sampling_rates(&[3], &[1.0], 5);
    }
}
